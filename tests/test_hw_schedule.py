"""Tests for the DWO/SWO scheduler and DTP makespan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.schedule import pea_cycles, pea_cycles_dtp, step_cycles


class TestNoDtp:
    def test_dwo_bound(self):
        assert pea_cycles(40, 8, n_dwo=4, n_swo=8) == 10

    def test_swo_bound(self):
        assert pea_cycles(4, 80, n_dwo=4, n_swo=8) == 10

    def test_ceiling(self):
        assert pea_cycles(5, 0, n_dwo=4, n_swo=8) == 2

    def test_zero_work(self):
        assert pea_cycles(0, 0, 4, 8) == 0

    def test_rejects_zero_dwo(self):
        with pytest.raises(ValueError):
            pea_cycles(1, 1, 0, 8)


class TestDtp:
    def test_dwo_absorbs_static_overflow(self):
        """Fig. 13(b): with few SWOs, DTP lets DWOs take static work."""
        n_dwo, n_swo = 8, 4
        dyn, stat = 8, 80
        without = pea_cycles(dyn, stat, n_dwo, n_swo)     # SWO-bound: 20
        with_dtp = pea_cycles_dtp(dyn, stat, n_dwo, n_swo)  # pooled: 8
        assert without == 20
        assert with_dtp == 8

    def test_never_slower_than_split_pools(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            d = int(rng.integers(0, 200))
            s = int(rng.integers(0, 200))
            assert pea_cycles_dtp(d, s, 4, 8) <= pea_cycles(d, s, 4, 8)

    def test_swos_never_take_dynamic(self):
        """All-dynamic work is DWO-bound even with idle SWOs."""
        assert pea_cycles_dtp(100, 0, 4, 8) == 25

    def test_array_inputs(self):
        out = pea_cycles_dtp(np.array([8, 16]), np.array([80, 0]), 8, 4)
        assert list(out) == [8, 2]


class TestStepCycles:
    def test_max_over_peas(self):
        """PEAs run in lockstep: the slowest one sets the step cost."""
        dyn = np.array([[4, 40, 4, 4]])
        stat = np.zeros((1, 4))
        assert step_cycles(dyn, stat, 4, 8, dtp=False)[0] == 10

    def test_balanced_is_faster_than_imbalanced(self):
        total = 64.0
        balanced = np.full((1, 4), total / 4)
        imbalanced = np.array([[total, 0.0, 0.0, 0.0]])
        stat = np.zeros((1, 4))
        fast = step_cycles(balanced, stat, 4, 8, dtp=False)[0]
        slow = step_cycles(imbalanced, stat, 4, 8, dtp=False)[0]
        assert fast < slow

    def test_dtp_flag_switches_model(self):
        dyn = np.array([[8.0]])
        stat = np.array([[80.0]])
        assert (step_cycles(dyn, stat, 8, 4, dtp=True)[0]
                < step_cycles(dyn, stat, 8, 4, dtp=False)[0])


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 500), st.integers(0, 500), st.integers(1, 16),
       st.integers(1, 16))
def test_property_dtp_bounds(dyn, stat, n_dwo, n_swo):
    """DTP makespan is sandwiched between the perfect pool and the split
    pools: ceil((D+S)/(d+s)) <= T_dtp <= T_split."""
    t_dtp = float(pea_cycles_dtp(dyn, stat, n_dwo, n_swo))
    t_split = float(pea_cycles(dyn, stat, n_dwo, n_swo))
    t_pool = np.ceil((dyn + stat) / (n_dwo + n_swo))
    assert t_pool <= t_dtp <= t_split


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 300), st.integers(0, 300), st.integers(1, 8),
       st.integers(1, 8))
def test_property_monotone_in_work(dyn, stat, n_dwo, n_swo):
    assert (pea_cycles(dyn + 1, stat, n_dwo, n_swo)
            >= pea_cycles(dyn, stat, n_dwo, n_swo))
    assert (pea_cycles_dtp(dyn, stat + 1, n_dwo, n_swo)
            >= pea_cycles_dtp(dyn, stat, n_dwo, n_swo))
