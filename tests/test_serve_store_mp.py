"""PlanStore under concurrent multi-process readers (the .npz contract).

The process backend rehydrates every worker's session from the same
``.npz`` plan store — simultaneous read-only loads of one file must be
safe, must work from a read-only deployment directory, and a corrupt
store must surface :class:`PlanStoreError` *in the child* and propagate
through the parent-side future (the error class is a ``ValueError``
subclass precisely so it pickles across the boundary).

Helpers the workers execute live at module level (spawn pickles them by
reference).
"""

import os
import shutil

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import build_proxy, proxy_batches
from repro.serve import PlanStore, PlanStoreError, ProcessWorkerPool

MODEL = "bert_base"


def _saved_store(path, seed=0):
    model, _ = build_proxy(MODEL, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + 1))
    PlanStore(path).save(session, model_name=MODEL, seed=seed)
    return session


def _load_and_run(path):
    """Child-side: rehydrate from the store, serve one fixed request.

    Returns the output array — the strongest possible digest: any
    corruption or cross-process nondeterminism in the load shows up as a
    bit difference against the parent's serial run.
    """
    session = PlanStore(path).load()
    return session.run(proxy_batches(MODEL, 2, 1, seed=99)[0])


def test_concurrent_loads_of_one_store_are_identical(tmp_path):
    path = tmp_path / "bert.plans.npz"
    session = _saved_store(path)
    expected = session.run(proxy_batches(MODEL, 2, 1, seed=99)[0])
    with ProcessWorkerPool(2, blas_threads=1) as pool:
        # Several simultaneous loads per worker of the same file: numpy's
        # npz reader opens read-only, so readers never see each other.
        futures = [pool.submit(_load_and_run, os.fspath(path))
                   for _ in range(6)]
        outputs = [f.result(timeout=120) for f in futures]
    for out in outputs:
        assert np.array_equal(out, expected)


def test_load_from_read_only_directory(tmp_path):
    store_dir = tmp_path / "deploy"
    store_dir.mkdir()
    path = store_dir / "bert.plans.npz"
    session = _saved_store(path)
    expected = session.run(proxy_batches(MODEL, 2, 1, seed=99)[0])
    os.chmod(store_dir, 0o555)
    os.chmod(path, 0o444)
    try:
        with ProcessWorkerPool(1, blas_threads=1) as pool:
            out = pool.submit(_load_and_run,
                              os.fspath(path)).result(timeout=120)
    finally:
        os.chmod(store_dir, 0o755)  # let tmp_path cleanup remove it
        os.chmod(path, 0o644)
    assert np.array_equal(out, expected)


def test_truncated_store_raises_planstoreerror_in_child(tmp_path):
    path = tmp_path / "bert.plans.npz"
    _saved_store(path)
    broken = tmp_path / "broken.plans.npz"
    shutil.copyfile(path, broken)
    with open(broken, "r+b") as fh:
        fh.truncate(os.path.getsize(path) // 2)
    with ProcessWorkerPool(1, blas_threads=1) as pool:
        # Through a generic task: the child's PlanStoreError pickles back
        # and re-raises from the parent-side future as the typed error.
        with pytest.raises(PlanStoreError):
            pool.submit(_load_and_run, os.fspath(broken)).result(timeout=120)
        # Through the deployment path: load_deployment re-raises the
        # first worker failure, and the failed load must not poison the
        # pool — a good store still deploys afterwards.
        with pytest.raises(PlanStoreError):
            pool.load_deployment("broken", broken)
        pool.load_deployment("bert", path)
        outputs, metas = pool.serve(
            "bert", [proxy_batches(MODEL, 2, 1, seed=99)[0]])
        assert len(outputs) == 1 and len(metas) == 1
