"""Tests for per-tensor / per-channel / group-wise quantization."""

import numpy as np
import pytest

from repro.quant.granularity import (
    dequantize_grouped,
    group_wise_symmetric,
    per_channel_symmetric,
    per_tensor_symmetric,
    quantize_weight,
)


class TestPerTensor:
    def test_single_scale(self):
        p = per_tensor_symmetric(np.array([[1.0, -4.0]]), 8)
        assert p.scale.ndim == 0 or p.scale.size == 1

    def test_quantize_weight_round_trip(self):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.1, (16, 32))
        q, p = quantize_weight(w, 7)
        err = np.abs(q * float(p.scale) - w)
        assert err.max() <= float(p.scale)


class TestPerChannel:
    def test_scale_per_row(self):
        w = np.array([[0.1, -0.1], [10.0, -10.0]])
        p = per_channel_symmetric(w, 8, axis=0)
        assert p.scale.shape == (2, 1)
        ratio = float(p.scale[1, 0] / p.scale[0, 0])
        assert ratio == pytest.approx(100.0)

    def test_better_than_per_tensor_for_imbalanced(self):
        rng = np.random.default_rng(1)
        w = np.vstack([rng.normal(0, 0.01, (8, 64)),
                       rng.normal(0, 1.0, (8, 64))])
        from repro.quant.uniform import fake_quantize

        pt_err = np.abs(fake_quantize(w, per_tensor_symmetric(w, 7)) - w).mean()
        pc_err = np.abs(fake_quantize(w, per_channel_symmetric(w, 7)) - w).mean()
        assert pc_err < pt_err


class TestGroupWise:
    def test_shapes(self):
        w = np.random.default_rng(2).normal(0, 1, (8, 130))
        q, params = group_wise_symmetric(w, 4, group_size=64)
        assert q.shape == w.shape
        assert params.n_groups == 3  # 64 + 64 + 2

    def test_codes_in_range(self):
        w = np.random.default_rng(3).normal(0, 1, (8, 128))
        q, _ = group_wise_symmetric(w, 4, group_size=64)
        assert q.min() >= -8 and q.max() <= 7

    def test_dequantize_bounded_error(self):
        rng = np.random.default_rng(4)
        w = rng.normal(0, 1, (8, 128))
        q, params = group_wise_symmetric(w, 4, group_size=64)
        recon = dequantize_grouped(q, params)
        assert np.abs(recon - w).max() <= params.scales.max()

    def test_group64_beats_per_tensor_at_4bit(self):
        """The paper's '64 channel-wise quantization' rationale for Llama."""
        rng = np.random.default_rng(5)
        w = rng.standard_t(3, (16, 256)) * 0.05
        w[:, 7] *= 30.0  # outlier column, like Llama weights
        q, params = group_wise_symmetric(w, 4, group_size=64)
        group_err = np.abs(dequantize_grouped(q, params) - w).mean()

        from repro.quant.uniform import fake_quantize, symmetric_params

        pt_err = np.abs(fake_quantize(w, symmetric_params(w, 4)) - w).mean()
        assert group_err < pt_err

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            group_wise_symmetric(np.zeros((2, 2, 2)), 4)
