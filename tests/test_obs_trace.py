"""Tracing primitives and the thread-backend end-to-end span tree.

Covers the :mod:`repro.obs` trace layer on its own (span lifecycle, tree
validation, id parsing, buffer bounds) and wired into :class:`ModelServer`:
a served request must come back with the canonical
``request -> queue_wait / batch_release / engine_execute`` tree, sampling
must be honored per server and per deployment, and failures must close the
root with ``error`` status rather than leaking open spans.
"""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.obs import (Span, Trace, TraceBuffer, format_trace_id, new_id,
                       parse_trace_id)
from repro.serve import BatchPolicy, ModelServer


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


def _session(seed=0):
    return PanaceaSession(TinyNet(seed), PtqConfig(scheme="aqs"),
                         calibration=_batches(seed=seed))


class TestSpan:
    def test_end_is_idempotent_first_close_wins(self):
        span = Span("s")
        span.end(status="ok", end_s=span.start_s + 1.0)
        first_end = span.end_s
        span.end(status="error", end_s=span.start_s + 99.0)
        assert span.end_s == first_end
        assert span.status == "ok"
        assert span.duration_s == pytest.approx(1.0)

    def test_child_registers_into_owning_trace(self):
        trace = Trace("req")
        parent = trace.span("engine_execute")
        child = parent.child("stage[0]")
        assert child.parent_id == parent.span_id
        assert child.trace_id == trace.trace_id
        assert child in trace.spans

    def test_attrs_stay_mutable_after_close(self):
        span = Span("stage[1]")
        span.end()
        span.attrs["worker_exec_s"] = 0.004
        assert span.to_dict()["attrs"] == {"worker_exec_s": 0.004}


class TestTraceValidate:
    def test_well_formed_tree_is_clean(self):
        trace = Trace("req")
        t0 = trace.root.start_s
        a = trace.span("queue_wait", start_s=t0)
        a.end(end_s=t0 + 0.1)
        b = trace.span("engine_execute", start_s=t0 + 0.1)
        child = trace.span("stage[0]", parent=b, start_s=t0 + 0.1)
        child.end(end_s=t0 + 0.2)
        b.end(end_s=t0 + 0.3)
        trace.root.end(end_s=t0 + 0.4)
        assert trace.validate() == []
        assert trace.status == "ok"
        assert trace.complete

    def test_unclosed_span_reported(self):
        trace = Trace("req")
        trace.span("queue_wait")
        trace.root.end()
        assert any("never closed" in p for p in trace.validate())
        assert trace.status == "open"

    def test_child_escaping_parent_reported(self):
        trace = Trace("req")
        t0 = trace.root.start_s
        parent = trace.span("engine_execute", start_s=t0)
        child = trace.span("stage[0]", parent=parent, start_s=t0)
        child.end(end_s=t0 + 2.0)
        parent.end(end_s=t0 + 1.0)   # child outlives parent
        trace.root.end(end_s=t0 + 3.0)
        assert any("escapes parent" in p for p in trace.validate())

    def test_overlapping_siblings_reported(self):
        trace = Trace("req")
        t0 = trace.root.start_s
        a = trace.span("queue_wait", start_s=t0)
        a.end(end_s=t0 + 1.0)
        b = trace.span("batch_release", start_s=t0 + 0.5)
        b.end(end_s=t0 + 1.5)
        trace.root.end(end_s=t0 + 2.0)
        assert any("overlap" in p for p in trace.validate())

    def test_unknown_parent_reported(self):
        trace = Trace("req")
        orphan = Span("stray", parent_id=new_id())
        trace.spans  # snapshot API stays usable mid-build
        trace._register(orphan)
        orphan.end()
        trace.root.end()
        assert any("unknown parent" in p for p in trace.validate())


class TestIds:
    def test_format_parse_round_trip(self):
        tid = new_id()
        assert parse_trace_id(format_trace_id(tid)) == tid
        assert len(format_trace_id(tid)) == 16

    def test_parse_accepts_int(self):
        assert parse_trace_id(42) == 42

    def test_parse_rejects_bool_and_junk(self):
        with pytest.raises(ValueError):
            parse_trace_id(True)
        with pytest.raises(ValueError):
            parse_trace_id("not-hex")
        with pytest.raises(ValueError):
            parse_trace_id(3.14)

    def test_new_id_nonzero(self):
        assert all(new_id() != 0 for _ in range(64))


class TestTraceBuffer:
    def test_eviction_is_fifo_and_counted(self):
        buf = TraceBuffer(2)
        traces = [buf.add(Trace(f"r{i}")) for i in range(3)]
        assert len(buf) == 2
        assert buf.get(traces[0].trace_id) is None
        assert buf.get(traces[2].trace_id) is traces[2]
        stats = buf.stats()
        assert (stats["n_added"], stats["n_evicted"]) == (3, 1)
        assert stats["size"] <= stats["capacity"]

    def test_get_accepts_hex(self):
        buf = TraceBuffer(4)
        trace = buf.add(Trace("r"))
        assert buf.get(format_trace_id(trace.trace_id)) is trace

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(0)


class TestServerTracing:
    def test_submit_builds_canonical_span_tree(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        ticket = server.submit("tiny", _batches(1, seed=5)[0])
        out = ticket.result()
        assert out.shape == (4, 8)
        trace = ticket.trace
        assert trace is not None
        assert server.get_trace(trace.trace_id) is trace
        assert server.get_trace(format_trace_id(trace.trace_id)) is trace
        names = sorted(s.name for s in trace.spans)
        assert names == ["batch_release", "engine_execute", "queue_wait",
                         "tiny"]
        assert trace.validate() == []
        assert trace.status == "ok"
        # Children all hang off the root; engine_execute knows its batch.
        root_id = trace.root.span_id
        assert all(s.parent_id == root_id for s in trace.spans
                   if s is not trace.root)
        release_span, = trace.find("batch_release")
        assert release_span.attrs["batch_size"] == 1
        server.close()

    def test_sample_zero_disables_tracing(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0),
                             trace_sample=0.0)
        server.register("tiny", _session())
        ticket = server.submit("tiny", _batches(1, seed=6)[0])
        ticket.result()
        assert ticket.trace is None
        assert server.traces.stats()["n_added"] == 0
        server.close()

    def test_per_deployment_sample_overrides_server(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0),
                             trace_sample=1.0)
        server.register("silent", _session(), trace_sample=0.0)
        server.register("loud", _session(seed=1))
        t_silent = server.submit("silent", _batches(1, seed=7)[0])
        t_loud = server.submit("loud", _batches(1, seed=7)[0])
        t_silent.result(), t_loud.result()
        assert t_silent.trace is None
        assert t_loud.trace is not None
        server.close()

    def test_sample_range_validated(self):
        with pytest.raises(ValueError, match="trace_sample"):
            ModelServer(trace_sample=1.5)
        server = ModelServer()
        with pytest.raises(ValueError, match="trace_sample"):
            server.register("tiny", _session(), trace_sample=-0.1)
        server.close()

    def test_cache_hit_trace_completes_without_queue_span(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0,
                                         cache_bytes=1 << 20))
        server.register("tiny", _session())
        x = _batches(1, seed=8)[0]
        server.submit("tiny", x).result()
        hit = server.submit("tiny", x)
        assert hit.cached
        trace = hit.trace
        assert trace is not None
        assert trace.root.attrs["cached"] is True
        assert trace.find("queue_wait") == []
        assert trace.complete and trace.status == "ok"
        server.close()

    def test_failed_batch_closes_root_with_error(self):
        # Deep batch + long delay: submit only enqueues, so the engine
        # failure surfaces from result() rather than inline at submit().
        server = ModelServer(BatchPolicy(max_batch=8, max_delay_s=60.0))
        server.register("tiny", _session())
        bad = np.zeros((4, 7))   # wrong feature width: the engine raises
        ticket = server.submit("tiny", bad)
        with pytest.raises(ValueError, match="shape mismatch"):
            ticket.result()
        trace = ticket.trace
        assert trace is not None
        assert trace.status == "error"
        assert trace.root.closed and trace.root.status == "error"
        assert all(s.closed for s in trace.spans)
        server.close()

    def test_root_autoclose_off_leaves_root_to_the_caller(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        trace = server.start_trace("tiny")
        trace.root_autoclose = False
        ticket = server._get("tiny").batcher.submit(
            _batches(1, seed=9)[0], trace=trace)
        ticket.result()
        assert not trace.root.closed
        trace.root.end()
        assert trace.validate() == []
        server.close()

    def test_async_submit_traced_through_pool(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0),
                             workers=2)
        server.register("tiny", _session())
        futures = [server.submit_async("tiny", b)
                   for b in _batches(4, seed=10)]
        for fut in futures:
            fut.result(timeout=10.0)
        traced = [server.get_trace(tid) for tid in server.traces.ids()]
        assert len(traced) == 4
        for trace in traced:
            assert trace.complete and trace.status == "ok"
            assert trace.validate() == []
            assert trace.find("engine_execute")
        server.close()

    def test_jsonl_export_one_object_per_span(self):
        import json
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        ticket = server.submit("tiny", _batches(1, seed=11)[0])
        ticket.result()
        lines = ticket.trace.to_jsonl().splitlines()
        rows = [json.loads(line) for line in lines]
        assert len(rows) == len(ticket.trace.spans)
        assert {row["trace_id"] for row in rows} == \
            {format_trace_id(ticket.trace.trace_id)}
        assert all(row["status"] == "ok" for row in rows)
        server.close()
