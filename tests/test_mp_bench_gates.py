"""Collects the process-serving benchmark's gates into the tier-1 run.

``benchmarks/bench_mp_serving.py`` defines pytest-style gates (both
backends bit-exact vs a serial replay, the process-backend >= 1.8x
criterion), but the file name does not match pytest's ``test_*.py``
pattern, so on its own it is never collected — a regression that lets the
process boundary flip a bit would ship green.  This wrapper imports the
bench module and re-exports its gates so plain ``pytest`` (local and CI)
runs them.

The speedup gate skips *explicitly* below its 4-core floor, naming the
host's core count (``benchmarks._util.throughput_gate_or_skip``), so a
few-core lane reports why the gate could not bind instead of a hollow
pass; the bit-exactness gates run everywhere, unconditionally.
"""

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_mp_serving  # noqa: E402  (needs the path shim above)

test_process_backend_bit_exact = \
    bench_mp_serving.test_process_backend_bit_exact
test_mmap_plans_share_memory = \
    bench_mp_serving.test_mmap_plans_share_memory
test_process_backend_speedup = \
    bench_mp_serving.test_process_backend_speedup
