"""Tests for distribution-based bit-slicing (paper Figs. 9/10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbs import (
    DBS_LO_BITS,
    DbsType,
    classify_distribution,
    dbs_calibrate,
)
from repro.quant.uniform import QuantParams, asymmetric_params


class TestTypeTable:
    def test_lo_bits_per_type(self):
        assert DBS_LO_BITS == {1: 4, 2: 5, 3: 6}

    def test_skip_width_doubles_per_type(self):
        widths = [DbsType(t, DBS_LO_BITS[t]).skip_width for t in (1, 2, 3)]
        assert widths == [16, 32, 64]

    def test_dropped_lsbs(self):
        assert DbsType(1, 4).dropped_lsbs == 0
        assert DbsType(2, 5).dropped_lsbs == 1
        assert DbsType(3, 6).dropped_lsbs == 2


class TestClassification:
    def test_narrow_is_type1(self):
        assert classify_distribution(std=2.0, z=2.0).type_id == 1

    def test_boundary_type1(self):
        """std*z == 8 still fits the l=4 half-range."""
        assert classify_distribution(std=4.0, z=2.0).type_id == 1

    def test_medium_is_type2(self):
        assert classify_distribution(std=6.0, z=2.0).type_id == 2

    def test_wide_is_type3(self):
        assert classify_distribution(std=20.0, z=2.0).type_id == 3

    def test_very_wide_stays_type3(self):
        assert classify_distribution(std=200.0, z=2.0).type_id == 3

    def test_z_scales_threshold(self):
        assert classify_distribution(std=5.0, z=1.0).type_id == 1
        assert classify_distribution(std=5.0, z=3.0).type_id == 2

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            classify_distribution(std=-1.0)


class TestCalibrate:
    def _params(self, zp):
        return QuantParams(scale=0.1, zero_point=zp, bits=8, signed=False)

    def test_type_based_zpm(self):
        """zp'' is centred in the *type's* bucket (paper: 'type-based ZPM')."""
        decision = dbs_calibrate(self._params(161), std=6.0, z=2.0)
        assert decision.dbs_type.type_id == 2
        assert decision.zp % 32 == 16
        assert decision.r == decision.zp >> 5

    def test_zpm_disabled_keeps_zp(self):
        decision = dbs_calibrate(self._params(161), std=2.0, z=2.0,
                                 enable_zpm=False)
        assert decision.zp == 161
        assert decision.r == 161 >> 4

    def test_type1_keeps_l4(self):
        decision = dbs_calibrate(self._params(100), std=1.0)
        assert decision.lo_bits == 4

    def test_symmetric_params_use_midpoint(self):
        p = QuantParams(scale=0.1, zero_point=0, bits=8, signed=True)
        decision = dbs_calibrate(p, std=2.0)
        assert decision.zp == 136  # ZPM(128) = 16*8 + 8

    def test_wider_skip_raises_sparsity(self):
        """The DBS mechanism: widening the skip range must increase the
        fraction of codes whose HO slice equals r for a wide distribution."""
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 1.0, 50_000)
        params = asymmetric_params(x, 8)
        from repro.quant.uniform import quantize

        codes = quantize(x, params)
        zp = int(params.zero_point)
        fractions = {}
        for lo_bits in (4, 5, 6):
            from repro.core.zpm import manipulate_zero_point

            zp_l = manipulate_zero_point(zp, lo_bits)
            shifted = np.clip(codes + (zp_l - zp), 0, 255)
            r = zp_l >> lo_bits
            fractions[lo_bits] = float(np.mean((shifted >> lo_bits) == r))
        assert fractions[5] >= fractions[4]
        assert fractions[6] >= fractions[5]


@settings(max_examples=100, deadline=None)
@given(st.floats(0.0, 100.0), st.floats(0.5, 4.0))
def test_property_type_monotone_in_width(std, z):
    """Wider distributions never get a *narrower* skip range."""
    t = classify_distribution(std, z)
    t_wider = classify_distribution(std * 1.5 + 0.1, z)
    assert t_wider.type_id >= t.type_id


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 255), st.floats(0.0, 50.0))
def test_property_r_consistent_with_zp(zp, std):
    p = QuantParams(scale=0.1, zero_point=zp, bits=8, signed=False)
    decision = dbs_calibrate(p, std)
    assert decision.r == decision.zp >> decision.lo_bits
