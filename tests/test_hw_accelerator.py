"""Tests for the shared accelerator framework (configs, perf aggregation)."""

import numpy as np
import pytest

from repro.hw.accelerator import HwConfig, LayerPerf, ModelPerf
from repro.hw.energy import EnergyBreakdown


def _layer(name="l", m=64, k=64, n=64, compute=1000.0, dram=500.0,
           energy=1e6):
    return LayerPerf(name=name, m=m, k=k, n=n, compute_cycles=compute,
                     dram_cycles=dram,
                     energy=EnergyBreakdown(mac=energy),
                     ema_bytes=1024.0, sram_bytes=2048.0)


class TestHwConfig:
    def test_defaults_match_paper_budget(self):
        hw = HwConfig()
        assert hw.n_mul4 == 3072
        assert hw.mem.total_sram_kb == 192
        assert hw.mem.dram_bits_per_cycle == 256

    def test_cycle_time(self):
        assert HwConfig(freq_mhz=500).cycle_ns == pytest.approx(2.0)


class TestLayerPerf:
    def test_cycles_is_max_of_compute_and_dram(self):
        assert _layer(compute=100, dram=300).cycles == 300
        assert _layer(compute=300, dram=100).cycles == 300

    def test_effective_macs(self):
        assert _layer(m=2, k=3, n=4).effective_macs == 24


class TestModelPerf:
    def _perf(self, layers=None):
        return ModelPerf(accelerator="x", model="toy",
                         layers=layers or [_layer(), _layer(name="l2")],
                         freq_mhz=500.0)

    def test_totals(self):
        perf = self._perf()
        assert perf.total_cycles == 2000
        assert perf.total_energy_pj == 2e6
        assert perf.effective_macs == 2 * 64 ** 3

    def test_latency(self):
        perf = self._perf()
        assert perf.latency_s == pytest.approx(2000 / (500e6))

    def test_tops_definition(self):
        """TOPS counts 2 effective ops per MAC over end-to-end latency."""
        perf = self._perf()
        expected = 2.0 * perf.effective_macs / perf.latency_s / 1e12
        assert perf.tops == pytest.approx(expected)

    def test_tops_per_watt_is_latency_free(self):
        """TOPS/W = ops/energy: doubling latency at fixed energy must not
        change it."""
        a = self._perf()
        slow_layers = [_layer(compute=10000), _layer(name="l2",
                                                     compute=10000)]
        b = self._perf(slow_layers)
        assert a.tops_per_watt == pytest.approx(b.tops_per_watt)

    def test_energy_breakdown_merge(self):
        perf = self._perf()
        assert perf.energy_breakdown().mac == 2e6

    def test_empty_model(self):
        perf = ModelPerf(accelerator="x", model="empty", layers=[],
                         freq_mhz=500.0)
        assert perf.tops == 0.0
        assert perf.tops_per_watt == 0.0


class TestSimulateModelPlumbing:
    def test_seeded_reproducibility(self):
        from repro.hw.panacea import PanaceaModel
        from repro.models.workloads import synthetic_profile

        prof = synthetic_profile(256, 256, 256, 0.5, 0.8, seed=3)
        a = PanaceaModel().simulate_model([prof], "toy", seed=11)
        b = PanaceaModel().simulate_model([prof], "toy", seed=11)
        assert a.total_cycles == b.total_cycles
        assert a.total_energy_pj == b.total_energy_pj

    def test_sampling_noise_is_small(self):
        from repro.hw.panacea import PanaceaModel
        from repro.models.workloads import synthetic_profile

        prof = synthetic_profile(512, 512, 512, 0.4, 0.9, seed=5)
        cycles = [PanaceaModel().simulate_model([prof], "toy", seed=s)
                  .total_cycles for s in range(4)]
        assert np.std(cycles) / np.mean(cycles) < 0.03
