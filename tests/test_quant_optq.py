"""Tests for the OPTQ (GPTQ) weight quantizer."""

import numpy as np
import pytest

from repro.quant.optq import hessian_from_activations, optq_quantize


def _naive_rtn_error(w, x, bits, group=None):
    """Round-to-nearest baseline reconstruction error."""
    qmax = (1 << (bits - 1)) - 1
    group = group or w.shape[1]
    recon = np.zeros_like(w)
    for g in range(0, w.shape[1], group):
        block = w[:, g:g + group]
        s = 2 * np.maximum(np.abs(block).max(axis=1, keepdims=True), 1e-12) / (
            (1 << bits) - 1)
        recon[:, g:g + group] = np.clip(np.rint(block / s), -qmax - 1, qmax) * s
    return float(np.mean(((w - recon) @ x) ** 2))


class TestHessian:
    def test_symmetric_positive_definite(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (32, 128))
        h = hessian_from_activations(x)
        assert np.allclose(h, h.T)
        assert np.all(np.linalg.eigvalsh(h) > 0)

    def test_damping_applied(self):
        x = np.zeros((8, 4))
        h = hessian_from_activations(x)
        assert np.all(np.diag(h) > 0)


class TestOptq:
    def test_codes_in_range(self):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.1, (16, 64))
        x = rng.normal(0, 1, (64, 128))
        res = optq_quantize(w, x, bits=4)
        assert res.w_q.min() >= -8 and res.w_q.max() <= 7

    def test_beats_round_to_nearest(self):
        """The whole point of OPTQ: error compensation beats naive RTN on
        the calibration objective."""
        rng = np.random.default_rng(2)
        w = rng.standard_t(4, (32, 96)) * 0.05
        x = rng.standard_t(4, (96, 256))
        res = optq_quantize(w, x, bits=4, group_size=None)
        assert res.reconstruction_error < _naive_rtn_error(w, x, 4)

    def test_grouping_helps_with_outlier_columns(self):
        rng = np.random.default_rng(3)
        w = rng.normal(0, 0.05, (16, 128))
        w[:, 5] *= 25.0
        x = rng.normal(0, 1, (128, 128))
        grouped = optq_quantize(w, x, bits=4, group_size=64)
        whole = optq_quantize(w, x, bits=4, group_size=None)
        assert grouped.reconstruction_error <= whole.reconstruction_error

    def test_higher_bits_lower_error(self):
        rng = np.random.default_rng(4)
        w = rng.normal(0, 0.1, (8, 64))
        x = rng.normal(0, 1, (64, 64))
        e4 = optq_quantize(w, x, bits=4).reconstruction_error
        e7 = optq_quantize(w, x, bits=7).reconstruction_error
        assert e7 < e4

    def test_dequantize_shape(self):
        rng = np.random.default_rng(5)
        w = rng.normal(0, 0.1, (8, 100))
        x = rng.normal(0, 1, (100, 32))
        res = optq_quantize(w, x, bits=4, group_size=64)
        assert res.dequantize().shape == w.shape

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            optq_quantize(np.zeros((4, 8)), np.zeros((9, 2)), bits=4)

    def test_sbr_compatible_codes(self):
        """4-bit OPTQ output must feed the AQS-GEMM directly (Fig. 19)."""
        rng = np.random.default_rng(6)
        w = rng.normal(0, 0.1, (8, 32))
        x = rng.normal(0, 1, (32, 64))
        res = optq_quantize(w, x, bits=4)
        from repro.core.aqs_gemm import AqsGemmConfig, aqs_gemm

        xq = np.clip(np.rint(rng.normal(100, 5, (32, 8))), 0,
                     255).astype(np.int64)
        out = aqs_gemm(res.w_q, xq, 100, AqsGemmConfig(w_bits=4))
        assert np.array_equal(out.acc, res.w_q.astype(np.int64) @ xq)
