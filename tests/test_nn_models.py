"""Tests for attention, transformer blocks and model skeletons."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention
from repro.nn.resnet import BasicBlock, ResNet
from repro.nn.transformer import (
    CausalLM,
    DecoderBlock,
    EncoderBlock,
    LlamaBlock,
    OutlierChannelScaler,
    TransformerClassifier,
)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(32, 4)
        assert attn(np.zeros((2, 5, 32))).shape == (2, 5, 32)

    def test_causal_mask_blocks_future(self):
        """Changing a future token must not change earlier outputs."""
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention(16, 2, causal=True, rng=rng)
        x = rng.normal(size=(1, 6, 16))
        base = attn(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        out = attn(x2)
        assert np.allclose(base[0, :5], out[0, :5])

    def test_bidirectional_sees_future(self):
        rng = np.random.default_rng(1)
        attn = MultiHeadAttention(16, 2, causal=False, rng=rng)
        x = rng.normal(size=(1, 6, 16))
        base = attn(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        assert not np.allclose(base[0, 0], attn(x2)[0, 0])

    def test_gqa_shapes(self):
        attn = MultiHeadAttention(32, 8, n_kv_heads=2, causal=True)
        assert attn(np.zeros((1, 4, 32))).shape == (1, 4, 32)
        assert attn.k_proj.out_features == 2 * 4  # kv heads * head_dim

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(30, 4)
        with pytest.raises(ValueError):
            MultiHeadAttention(32, 8, n_kv_heads=3)


class TestBlocks:
    def test_encoder_block(self):
        block = EncoderBlock(32, 4, 64)
        assert block(np.zeros((2, 5, 32))).shape == (2, 5, 32)

    def test_decoder_block(self):
        block = DecoderBlock(32, 4, 64)
        assert block(np.zeros((2, 5, 32))).shape == (2, 5, 32)

    def test_llama_block(self):
        block = LlamaBlock(32, 4, 2, 64)
        assert block(np.zeros((2, 5, 32))).shape == (2, 5, 32)

    def test_outlier_scaler(self):
        rng = np.random.default_rng(2)
        scaler = OutlierChannelScaler(64, n_outliers=4, scale=20.0, rng=rng)
        x = np.ones((2, 64))
        out = scaler(x)
        assert np.sum(out == 20.0) == 2 * 4
        assert np.sum(out == 1.0) == 2 * 60


class TestModels:
    def test_causal_lm_logits(self):
        lm = CausalLM(vocab=64, dim=32, n_layers=2, n_heads=4, mlp_hidden=64)
        ids = np.zeros((2, 7), dtype=int)
        assert lm(ids).shape == (2, 7, 64)

    def test_llama_lm(self):
        lm = CausalLM(vocab=64, dim=32, n_layers=2, n_heads=4, mlp_hidden=64,
                      block="llama", n_kv_heads=2)
        assert lm(np.zeros((1, 5), dtype=int)).shape == (1, 5, 64)

    def test_classifier(self):
        clf = TransformerClassifier(dim=32, n_layers=2, n_heads=4,
                                    mlp_hidden=64, n_classes=7)
        assert clf(np.zeros((3, 9, 32))).shape == (3, 7)

    def test_deterministic_given_seed(self):
        a = CausalLM(32, 16, 1, 2, 32, seed=5)
        b = CausalLM(32, 16, 1, 2, 32, seed=5)
        ids = np.arange(6).reshape(1, 6) % 32
        assert np.allclose(a(ids), b(ids))

    def test_gemm_layers_discoverable(self):
        """PTQ needs to find every Linear by dotted name."""
        lm = CausalLM(32, 16, 2, 2, 32)
        from repro.nn.layers import Linear

        linears = [n for n, m in lm.named_modules() if isinstance(m, Linear)]
        # 2 blocks x (q,k,v,out,fc1,fc2) + lm_head
        assert len(linears) == 2 * 6 + 1


class TestResNet:
    def test_basic_block_shapes(self):
        block = BasicBlock(8, 16, stride=2)
        assert block(np.zeros((1, 8, 8, 8))).shape == (1, 16, 4, 4)

    def test_resnet_forward(self):
        net = ResNet(n_classes=10, width=8)
        out = net(np.random.default_rng(0).normal(size=(1, 3, 32, 32)))
        assert out.shape == (1, 10)

    def test_resnet18_conv_count(self):
        net = ResNet(n_classes=10, width=8)
        from repro.nn.layers import Conv2d

        convs = [n for n, m in net.named_modules() if isinstance(m, Conv2d)]
        # stem + 4 stages x (2 blocks x 2 convs) + 3 downsamples
        assert len(convs) == 1 + 16 + 3
