"""Tests for plan serialization: per-engine round-trips and the PlanStore."""

import json

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import (
    EngineConfig,
    PanaceaSession,
    available_engines,
    get_engine,
    plan_from_state,
)
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.quant.uniform import quantize, symmetric_params
from repro.serve import PlanStore, PlanStoreError
from repro.serve.store import STORE_FORMAT, STORE_VERSION


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


def _weights(granularity, m=16, k=32, bits=7, seed=0):
    """Quantized weights at per-tensor or per-channel granularity."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(0, 1, (m, k)) * rng.uniform(0.1, 4.0, (m, 1))
    axis = 0 if granularity == "per_channel" else None
    return quantize(weight, symmetric_params(weight, bits, axis=axis))


def _activation(engine_name, k=32, n=8, seed=1):
    rng = np.random.default_rng(seed)
    if engine_name == "aqs":
        return np.clip(np.rint(rng.normal(168, 10, (k, n))), 0,
                       255).astype(np.int64)
    if engine_name == "sibia":
        return rng.integers(-64, 64, (k, n))
    if engine_name == "fp32":
        return rng.normal(0, 1, (k, n))
    return rng.integers(0, 256, (k, n))


class TestPerEnginePlanRoundtrip:
    """state_dict -> plan_from_state is bit-exact for every registered
    engine, at both weight granularities and on both exec paths."""

    @pytest.mark.parametrize("engine_name",
                             ["fp32", "int8_dense", "sibia", "aqs"])
    @pytest.mark.parametrize("granularity", ["per_tensor", "per_channel"])
    @pytest.mark.parametrize("exec_path", ["fast", "sliced"])
    def test_roundtrip_bit_exact(self, engine_name, granularity, exec_path):
        engine = get_engine(engine_name)
        w_q = _weights(granularity)
        x_q = _activation(engine_name)
        zp = 168 if engine.uses_zero_point else 0
        config = EngineConfig(x_bits=7 if engine_name == "sibia" else 8,
                              exec_path=exec_path)
        plan = engine.prepare(w_q, zp, config)
        restored = plan_from_state(plan.state_dict())
        assert type(restored) is type(plan)
        a = engine.execute(plan, x_q)
        b = engine.execute(restored, x_q)
        assert np.array_equal(a.acc, b.acc)
        assert a.ops.mul4 == b.ops.mul4
        assert a.ops.ema_nibbles == b.ops.ema_nibbles
        assert a.ops.rle_index_bits == b.ops.rle_index_bits

    def test_every_registered_engine_is_covered(self):
        """The grid above must cover the whole registry."""
        assert set(available_engines()) == {"fp32", "int8_dense", "sibia",
                                            "aqs"}


class TestPlanStoreRoundtrip:
    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7),
                                               ("int8_dense", 8),
                                               ("fp32", 8)])
    def test_session_roundtrip_bit_exact(self, tmp_path, scheme, x_bits):
        config = PtqConfig(scheme=scheme, x_bits=x_bits)
        session = PanaceaSession(TinyNet(), config, calibration=_batches())
        store = PlanStore(tmp_path / f"{scheme}.npz")
        store.save(session)
        restored = store.load(model=TinyNet())
        assert restored.prepared
        batch = _batches(1, seed=9)[0]
        assert np.array_equal(session.run(batch), restored.run(batch))

    def test_per_channel_roundtrip(self, tmp_path):
        config = PtqConfig(scheme="aqs", w_granularity="per_channel")
        session = PanaceaSession(TinyNet(), config, calibration=_batches())
        store = PlanStore(tmp_path / "pc.npz")
        store.save(session)
        restored = store.load(model=TinyNet())
        batch = _batches(1, seed=10)[0]
        assert np.array_equal(session.run(batch), restored.run(batch))
        assert restored.config.w_granularity == "per_channel"

    def test_load_runs_zero_prepares(self, tmp_path):
        """The acceptance criterion: rehydration does no weight-side work."""
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "zero.npz")
        store.save(session)

        calls = {"n": 0}
        originals = {}
        for name, cls in available_engines().items():
            originals[name] = cls.prepare

            def counting(self, w_q, zp, config=None, _real=cls.prepare):
                calls["n"] += 1
                return _real(self, w_q, zp, config)

            cls.prepare = counting
        try:
            restored = store.load(model=TinyNet())
            out = restored.run(_batches(1, seed=11)[0])
        finally:
            for name, cls in available_engines().items():
                cls.prepare = originals[name]
        assert calls["n"] == 0
        assert out.shape == (4, 8)

    def test_roundtrip_preserves_ops_and_traces(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "ops.npz")
        store.save(session)
        restored = store.load(model=TinyNet())
        batch = _batches(1, seed=12)[0]
        session.run(batch)
        restored.run(batch)
        assert session.total_ops().mul4 == restored.total_ops().mul4
        assert (session.requests[-1].total_ops().ema_nibbles
                == restored.requests[-1].total_ops().ema_nibbles)

    def test_save_requires_prepared_session(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        with pytest.raises(RuntimeError, match="prepared"):
            PlanStore(tmp_path / "x.npz").save(session)

    def test_describe(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "d.npz")
        store.save(session, model_name="tiny-custom", seed=7)
        info = store.describe()
        assert info["format"] == STORE_FORMAT
        assert info["version"] == STORE_VERSION
        assert info["scheme"] == "aqs"
        assert info["layers"] == ["fc1", "fc2"]
        assert info["model_name"] == "tiny-custom"
        assert info["seed"] == 7

    def test_load_without_model_reference_raises(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "nomodel.npz")
        store.save(session)  # no model_name
        with pytest.raises(ValueError, match="float model"):
            store.load()


class TestStoreHeaderValidation:
    def _saved(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "h.npz")
        store.save(session)
        return store

    def _rewrite_meta(self, store, mutate):
        with np.load(store.path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        meta = json.loads(str(payload["__meta__"][()]))
        mutate(meta)
        payload["__meta__"] = np.array(json.dumps(meta))
        with open(store.path, "wb") as fh:
            np.savez(fh, **payload)

    def test_foreign_format_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        self._rewrite_meta(
            store, lambda m: m["header"].__setitem__("format", "other"))
        with pytest.raises(ValueError, match="not a plan store"):
            store.load(model=TinyNet())

    def test_future_version_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        self._rewrite_meta(
            store,
            lambda m: m["header"].__setitem__("version", STORE_VERSION + 1))
        with pytest.raises(ValueError, match="newer store version"):
            store.load(model=TinyNet())

    def test_non_store_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="missing manifest"):
            PlanStore(path).describe()


class TestStoreFailurePaths:
    """A store that fails validation raises PlanStoreError — it must never
    rehydrate garbage plans into a serving session."""

    def _saved(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "f.npz")
        store.save(session)
        return store

    def test_truncated_file_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        blob = store.path.read_bytes()
        for keep in (len(blob) // 3, len(blob) - 16):
            store.path.write_bytes(blob[:keep])
            with pytest.raises(PlanStoreError):
                store.load(model=TinyNet())
            with pytest.raises(PlanStoreError):
                store.describe()

    def test_corrupt_garbage_bytes_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00definitely not a zip archive\xff" * 64)
        with pytest.raises(PlanStoreError):
            PlanStore(path).load(model=TinyNet())
        with pytest.raises(PlanStoreError):
            PlanStore(path).describe()

    def test_version_mismatch_is_typed(self, tmp_path):
        store = self._saved(tmp_path)
        with np.load(store.path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        meta = json.loads(str(payload["__meta__"][()]))
        meta["header"]["version"] = STORE_VERSION + 5
        payload["__meta__"] = np.array(json.dumps(meta))
        with open(store.path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(PlanStoreError, match="newer store version"):
            store.load(model=TinyNet())

    def test_missing_layer_plan_rejected(self, tmp_path):
        """A manifest whose plans do not cover its calibration records must
        raise, not silently re-prepare (which would mask the corruption)."""
        store = self._saved(tmp_path)
        with np.load(store.path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        meta = json.loads(str(payload["__meta__"][()]))
        plans = meta["payload"]["items"]["plans"]["items"]
        assert plans, "saved store must have plans to drop"
        plans.pop(sorted(plans)[0])
        payload["__meta__"] = np.array(json.dumps(meta))
        with open(store.path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(PlanStoreError, match="missing layer plans"):
            store.load(model=TinyNet())

    def test_corrupt_manifest_json_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        with np.load(store.path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        payload["__meta__"] = np.array("{not json at all")
        with open(store.path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(PlanStoreError, match="corrupt manifest"):
            store.describe()

    def test_missing_file_keeps_file_not_found(self, tmp_path):
        """A path that simply does not exist is not a corrupt store."""
        with pytest.raises(FileNotFoundError):
            PlanStore(tmp_path / "nope.npz").describe()

    def test_error_type_is_a_value_error(self):
        """Compatibility: pre-PR-4 callers caught ValueError."""
        assert issubclass(PlanStoreError, ValueError)


class TestAtomicSave:
    """save() is temp-file + os.replace: a write that dies partway leaves
    the previous store byte-identical and no temp litter behind."""

    def _saved(self, tmp_path):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "atomic.npz")
        store.save(session)
        return store, session

    def test_interrupted_save_keeps_previous_store(self, tmp_path,
                                                   monkeypatch):
        store, session = self._saved(tmp_path)
        before = store.path.read_bytes()

        def dying_savez(fh, **arrays):
            # Simulate a crash mid-write: some bytes land, then the
            # process "dies" before the file is complete.
            fh.write(b"PK\x03\x04 partial garbage")
            raise RuntimeError("killed mid-save")

        monkeypatch.setattr(np, "savez_compressed", dying_savez)
        with pytest.raises(RuntimeError, match="mid-save"):
            store.save(session)
        # The visible store never saw the partial bytes ...
        assert store.path.read_bytes() == before
        restored = store.load(model=TinyNet())
        batch = _batches(1, seed=13)[0]
        assert np.array_equal(session.run(batch), restored.run(batch))
        # ... and the temp file did not leak.
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_interrupted_first_save_leaves_no_store(self, tmp_path,
                                                    monkeypatch):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        store = PlanStore(tmp_path / "fresh.npz")

        def dying_savez(fh, **arrays):
            fh.write(b"partial")
            raise RuntimeError("killed mid-save")

        monkeypatch.setattr(np, "savez_compressed", dying_savez)
        with pytest.raises(RuntimeError, match="mid-save"):
            store.save(session)
        assert not store.path.exists()
        assert list(tmp_path.iterdir()) == []


class TestMmapLoad:
    """load(mmap=True): plan arrays come up as read-only views over the
    extracted blob sidecar — bit-exact vs the eager inflation, rebuilt
    only when the store itself changed."""

    def _saved(self, tmp_path, seed=0):
        session = PanaceaSession(TinyNet(seed=seed),
                                 PtqConfig(scheme="aqs"),
                                 calibration=_batches(seed=seed))
        store = PlanStore(tmp_path / "mm.npz")
        store.save(session)
        return store, session

    def test_mmap_load_bit_exact_vs_eager(self, tmp_path):
        store, session = self._saved(tmp_path)
        eager = store.load(model=TinyNet())
        mapped = store.load(model=TinyNet(), mmap=True)
        assert store.blob_path.exists()
        for batch in _batches(3, seed=21):
            expect = session.run(batch)
            assert np.array_equal(eager.run(batch), expect)
            assert np.array_equal(mapped.run(batch), expect)

    def test_blob_reused_until_store_changes(self, tmp_path):
        store, _ = self._saved(tmp_path)
        first = store.ensure_blob()
        stat_first = first.stat()
        # A second load maps the existing sidecar instead of rebuilding.
        assert store.ensure_blob() == first
        assert first.stat().st_mtime_ns == stat_first.st_mtime_ns
        # Re-saving the store invalidates the sidecar's source signature.
        session = PanaceaSession(TinyNet(seed=3), PtqConfig(scheme="aqs"),
                                 calibration=_batches(seed=3))
        store.save(session)
        rebuilt = store.load(model=TinyNet(seed=3), mmap=True)
        batch = _batches(1, seed=22)[0]
        assert np.array_equal(rebuilt.run(batch), session.run(batch))

    def test_mmap_plan_arrays_are_read_only_views(self, tmp_path):
        store, _ = self._saved(tmp_path)
        mapped = store.load(model=TinyNet(), mmap=True)
        arrays = [plan.w_q for plan in mapped.plans.values()
                  if getattr(plan, "w_q", None) is not None]
        assert arrays, "expected at least one plan weight array"
        for arr in arrays:
            assert not arr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                arr[...] = 0

    def test_blob_preserves_alignment_multiple_tails(self, tmp_path):
        """Every raw member survives the blob round trip byte for byte —
        including arrays whose nbytes is an exact multiple of the 64-byte
        alignment.  Such an array has *no* tail padding in its blob
        region, and the old size-backfill write (a ``\\0`` at
        ``total - 1``) zeroed the final byte of the last array whenever it
        ended flush with the file — flipping one weight's top byte."""
        store, _ = self._saved(tmp_path)
        _, eager_arrays = store._read()
        _, mapped_arrays = store._read_mmap()
        assert set(eager_arrays) == set(mapped_arrays)
        aligned_tail = [k for k, a in eager_arrays.items()
                        if a.nbytes and a.nbytes % 64 == 0]
        assert aligned_tail, (
            "fixture must include at least one alignment-multiple array "
            "or the regression corner is untested")
        for key, expect in eager_arrays.items():
            got = np.asarray(mapped_arrays[key])
            assert got.dtype == expect.dtype and got.shape == expect.shape
            assert np.array_equal(got, expect), (
                f"blob member {key} differs from the archive "
                f"({expect.dtype}, {expect.nbytes} bytes)")
        # Adversarial tail: one member, 64 bytes of 0xFF, ending flush
        # with the file — the exact shape the backfill bug corrupted.
        store.blob_path.unlink()
        tail = np.full(8, -1, dtype=np.int64)
        store._read = lambda: ({}, {"a0": tail})
        _, crafted = store._read_mmap()
        assert np.array_equal(np.asarray(crafted["a0"]), tail), (
            "final byte of an alignment-multiple last member was clobbered")

    def test_mmap_load_without_blob_builds_it(self, tmp_path):
        store, session = self._saved(tmp_path)
        if store.blob_path.exists():
            store.blob_path.unlink()
        mapped = store.load(model=TinyNet(), mmap=True)
        assert store.blob_path.exists()
        batch = _batches(1, seed=23)[0]
        assert np.array_equal(mapped.run(batch), session.run(batch))
