"""Tracing-overhead gate: full sampling must cost <= 5% throughput.

The observability layer's core bargain is that ``sample=1.0`` is cheap
enough to leave on: spans are a handful of ``perf_counter`` reads and
list appends per request, and the metrics registry only reads state at
scrape time.  This gate measures steady-state submit/serve throughput
with tracing fully on vs fully off and fails if the traced run is more
than 5% slower.

Wall-clock, so it follows the repo's gate discipline: opt-in via
``REPRO_RUN_THROUGHPUT_GATE=1`` and skipped explicitly below the core
floor (``benchmarks._util.throughput_gate_or_skip``).
"""

import pathlib
import sys
import time

import numpy as np

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import BatchPolicy, ModelServer

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

from _util import throughput_gate_or_skip  # noqa: E402

DIM = 32
N_REQUESTS = 600
MAX_OVERHEAD = 0.05


class _GateNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(DIM, DIM, rng=rng)
        self.fc2 = Linear(DIM, DIM, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _session(seed=0):
    rng = np.random.default_rng(seed + 9)
    return PanaceaSession(_GateNet(seed), PtqConfig.for_scheme("aqs"),
                         calibration=[rng.normal(0, 1, (4, DIM))
                                      for _ in range(2)])


def _run_once(trace_sample: float, stream) -> float:
    """Requests/s for one steady-state submit+flush run."""
    server = ModelServer(BatchPolicy(max_batch=8, max_delay_s=0.0),
                         trace_sample=trace_sample,
                         trace_buffer=N_REQUESTS + 8)
    server.register("gate", _session())
    # Warmup outside the timed window (first batch pays plan setup).
    for x in stream[:16]:
        server.submit("gate", x)
    server.flush("gate")
    t0 = time.perf_counter()
    tickets = [server.submit("gate", x) for x in stream[16:]]
    server.flush("gate")
    for ticket in tickets:
        ticket.result()
    elapsed = time.perf_counter() - t0
    server.close()
    return len(tickets) / elapsed


def test_tracing_overhead_within_five_percent():
    throughput_gate_or_skip(min_cores=4,
                            purpose="a stable tracing-overhead ratio")
    rng = np.random.default_rng(17)
    stream = [rng.normal(0, 1, (2, DIM)) for _ in range(N_REQUESTS + 16)]
    # Interleave repetitions so machine drift hits both variants equally;
    # keep the best of each (the least-perturbed measurement).
    traced, untraced = [], []
    for _ in range(3):
        untraced.append(_run_once(0.0, stream))
        traced.append(_run_once(1.0, stream))
    best_traced, best_untraced = max(traced), max(untraced)
    overhead = 1.0 - best_traced / best_untraced
    assert overhead <= MAX_OVERHEAD, (
        f"tracing at sample=1.0 costs {overhead:.1%} throughput "
        f"(traced {best_traced:.0f} req/s vs untraced "
        f"{best_untraced:.0f} req/s); the gate allows "
        f"{MAX_OVERHEAD:.0%}")
