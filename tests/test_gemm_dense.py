"""Tests for the dense integer GEMM reference (paper Eq. 3)."""

import numpy as np
import pytest

from repro.gemm.dense import dense_gemm_reference, fold_bias, integer_gemm
from repro.quant.uniform import (
    asymmetric_params,
    quantize,
    symmetric_params,
)


class TestFoldBias:
    def test_formula(self):
        """b_hat = b_int - zp * W @ 1."""
        w = np.array([[1, 2], [3, 4]])
        b = np.array([10, 20])
        out = fold_bias(w, b, zp_x=5)
        assert list(out) == [10 - 5 * 3, 20 - 5 * 7]

    def test_no_bias(self):
        w = np.array([[1, -1]])
        assert fold_bias(w, None, zp_x=3)[0] == 0

    def test_zero_zp_keeps_bias(self):
        w = np.array([[1, 2]])
        assert fold_bias(w, np.array([7]), 0)[0] == 7


class TestIntegerGemm:
    def test_plain(self):
        w = np.array([[1, 2]])
        x = np.array([[3], [4]])
        assert integer_gemm(w, x)[0, 0] == 11

    def test_with_bhat(self):
        w = np.array([[1, 2]])
        x = np.array([[3], [4]])
        assert integer_gemm(w, x, np.array([-11]))[0, 0] == 0


class TestEq3EndToEnd:
    def test_reconstructs_float_gemm(self):
        """The whole point of Eq. 3: int GEMM + folded zp == float GEMM up to
        quantization error, with asymmetric activations and no extra ops."""
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.1, (16, 64))
        x = rng.normal(1.0, 0.5, (64, 8))  # asymmetric range
        bias = rng.normal(0, 0.1, 16)

        w_params = symmetric_params(w, 7)
        x_params = asymmetric_params(x, 8)
        w_q = quantize(w, w_params)
        x_q = quantize(x, x_params)
        res = dense_gemm_reference(w_q, x_q, w_params, x_params, bias=bias)
        ref = w @ x + bias[:, None]
        rel = np.abs(res.output - ref) / (np.abs(ref).mean() + 1e-9)
        assert rel.mean() < 0.05

    def test_zero_point_correction_matters(self):
        """Dropping the zp fold produces a systematically wrong result."""
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.1, (8, 32))
        x = rng.normal(2.0, 1.5, (32, 4))  # asymmetric with negative tail
        w_params = symmetric_params(w, 7)
        x_params = asymmetric_params(x, 8)
        w_q = quantize(w, w_params)
        x_q = quantize(x, x_params)
        res = dense_gemm_reference(w_q, x_q, w_params, x_params)
        wrong = (w_q.astype(np.int64) @ x_q).astype(np.float64) * float(
            w_params.scale) * float(x_params.scale)
        ref = w @ x
        err_right = np.abs(res.output - ref).mean()
        err_wrong = np.abs(wrong - ref).mean()
        assert err_right < err_wrong / 5

    def test_op_counts_dense(self):
        w_q = np.zeros((8, 16), dtype=int)
        x_q = np.zeros((16, 4), dtype=int)
        w_params = symmetric_params(np.ones((8, 16)), 8)
        x_params = asymmetric_params(np.ones((16, 4)) + np.arange(4), 8)
        res = dense_gemm_reference(w_q, x_q, w_params, x_params)
        assert res.ops.mul4 == 4 * 8 * 16 * 4
        assert res.ops.add == 8 * 16 * 4
        assert res.ops.ema_nibbles == 8 * 16 * 2 + 16 * 4 * 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dense_gemm_reference(
                np.zeros((4, 8), dtype=int), np.zeros((9, 2), dtype=int),
                symmetric_params(np.ones((4, 8)), 8),
                asymmetric_params(np.arange(18.0).reshape(9, 2), 8))
