"""Tests for ModelServer: multi-model hosting, routing, stats, store loads."""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import BatchPolicy, ModelServer, PlanStore


class TinyNet(Module):
    def __init__(self, seed=0, out_features=8):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, out_features, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


def _session(seed=0, out_features=8, scheme="aqs"):
    return PanaceaSession(
        TinyNet(seed, out_features),
        PtqConfig(scheme=scheme, x_bits=7 if scheme == "sibia" else 8),
        calibration=_batches(seed=seed))


class TestRegistration:
    def test_register_and_submit(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("tiny", _session())
        ticket = server.submit("tiny", _batches(1, seed=5)[0])
        server.flush()
        assert ticket.result().shape == (4, 8)
        assert "tiny" in server
        assert server.models() == ["tiny"]

    def test_duplicate_name_rejected(self):
        server = ModelServer()
        server.register("tiny", _session())
        with pytest.raises(ValueError, match="already registered"):
            server.register("tiny", _session(seed=1))

    def test_unprepared_session_rejected(self):
        server = ModelServer()
        bare = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        with pytest.raises(ValueError, match="not calibrated"):
            server.register("tiny", bare)

    def test_auto_calibrate_session_allowed(self):
        server = ModelServer(BatchPolicy(max_batch=1))
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 auto_calibrate=True)
        server.register("tiny", session)
        ticket = server.submit("tiny", _batches(1, seed=6)[0])
        assert ticket.result().shape == (4, 8)

    def test_unknown_model_rejected(self):
        server = ModelServer()
        with pytest.raises(KeyError, match="unknown model"):
            server.submit("ghost", np.zeros((1, 16)))

    def test_unregister_drains_queue(self):
        server = ModelServer(BatchPolicy(max_batch=8, max_delay_s=60.0))
        server.register("tiny", _session())
        ticket = server.submit("tiny", _batches(1, seed=7)[0])
        server.unregister("tiny")
        assert ticket.done
        assert "tiny" not in server


class TestMultiModelRouting:
    def test_two_deployments_route_independently(self):
        """Same scheme, different variants — one submit API, per-model
        sessions (the scheme x exec_path x variant hosting matrix)."""
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("a", _session(seed=1, out_features=8))
        server.register("b", _session(seed=2, out_features=5))
        batch = _batches(1, seed=8)[0]
        ta = server.submit("a", batch)
        tb = server.submit("b", batch)
        server.flush()
        assert ta.result().shape == (4, 8)
        assert tb.result().shape == (4, 5)

    def test_mixed_schemes(self):
        server = ModelServer(BatchPolicy(max_batch=1))
        server.register("aqs", _session(seed=3, scheme="aqs"))
        server.register("sibia", _session(seed=3, scheme="sibia"))
        batch = _batches(1, seed=9)[0]
        out_a = server.submit("aqs", batch).result()
        out_s = server.submit("sibia", batch).result()
        assert out_a.shape == out_s.shape == (4, 8)
        stats = server.stats()
        assert stats["aqs"]["session"]["scheme"] == "aqs"
        assert stats["sibia"]["session"]["scheme"] == "sibia"

    def test_submit_is_bit_exact_vs_solo_session(self):
        reqs = _batches(4, seed=10)
        solo = _session(seed=4)
        expected = [solo.run(r) for r in reqs]
        server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0))
        server.register("tiny", _session(seed=4))
        tickets = server.submit_many("tiny", reqs)
        server.flush("tiny")
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)

    def test_pump_runs_all_deployments(self):
        server = ModelServer(BatchPolicy(max_batch=8, max_delay_s=0.0))
        server.register("a", _session(seed=5))
        server.register("b", _session(seed=6))
        server.submit("a", _batches(1, seed=11)[0])
        server.submit("b", _batches(1, seed=12)[0])
        assert server.pump() == 2


class TestDeployAndLoad:
    def test_deploy_proxy_lm_gets_pad_axis(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        entry = server.deploy_proxy("gpt", "gpt2", seed=0)
        assert entry.policy.pad_axis == 1
        rng = np.random.default_rng(13)
        tickets = [server.submit("gpt", rng.integers(0, 512, (1, length)))
                   for length in (10, 7)]
        server.flush()
        assert tickets[0].result().shape[1] == 10
        assert tickets[1].result().shape[1] == 7

    def test_deploy_proxy_classifier_has_no_pad_axis(self):
        server = ModelServer()
        entry = server.deploy_proxy("bert", "bert_base", seed=0)
        assert entry.policy.pad_axis is None

    def test_deploy_unknown_proxy_rejected(self):
        with pytest.raises(KeyError, match="no runnable proxy"):
            ModelServer().deploy_proxy("x", "not_a_model")

    def test_load_restores_proxy_pad_axis(self, tmp_path):
        """A causal-LM deployment restored from a store must keep the
        ragged-sequence coalescing a deploy_proxy deployment gets."""
        from repro.core.pipeline import PtqConfig
        from repro.models.zoo import build_proxy, proxy_batches

        model, _ = build_proxy("gpt2", seed=0)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        session.calibrate(proxy_batches("gpt2", 2, 2, seed=1))
        PlanStore(tmp_path / "gpt2.npz").save(session, model_name="gpt2")

        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        entry = server.load("lm", tmp_path / "gpt2.npz")
        assert entry.policy.pad_axis == 1
        rng = np.random.default_rng(20)
        tickets = [server.submit("lm", rng.integers(0, 512, (1, length)))
                   for length in (8, 12)]
        server.flush()
        assert tickets[0].result().shape[1] == 8
        assert tickets[1].result().shape[1] == 12

    def test_load_from_plan_store(self, tmp_path):
        session = _session(seed=7)
        PlanStore(tmp_path / "tiny.npz").save(session)
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.load("tiny", tmp_path / "tiny.npz", model=TinyNet(seed=7))
        batch = _batches(1, seed=14)[0]
        ticket = server.submit("tiny", batch)
        server.flush()
        assert np.array_equal(ticket.result(), session.run(batch))


class TestServerObservability:
    def test_stats_shape(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("tiny", _session(seed=8))
        server.submit_many("tiny", _batches(4, seed=15))
        server.flush()
        stats = server.stats("tiny")
        assert stats["name"] == "tiny"
        assert stats["session"]["n_requests"] == 4
        assert stats["scheduler"]["n_batches"] == 2
        assert stats["scheduler"]["mean_batch_size"] == 2.0
        assert stats["session"]["n_engine_batches"] == 2
        assert stats["session"]["exec_s"] > 0

    def test_queue_wait_rollup(self):
        server = ModelServer(BatchPolicy(max_batch=1))
        server.register("a", _session(seed=9))
        server.register("b", _session(seed=10))
        server.submit("a", _batches(1, seed=16)[0])
        server.submit("b", _batches(1, seed=17)[0])
        rollup = server.queue_wait_rollup()
        assert rollup.count == 2

    def test_metrics_snapshot_totals(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0),
                             cache_bytes=1 << 20)
        server.register("a", _session(seed=11))
        server.register("b", _session(seed=12))
        reqs = _batches(4, seed=18)
        for ticket in server.submit_many("a", reqs):
            ticket.result()
        for ticket in server.submit_many("a", reqs):   # replay: cache hits
            ticket.result()
        for ticket in server.submit_many("b", reqs[:2]):
            ticket.result()
        metrics = server.metrics()
        assert metrics.n_deployments == 2
        assert metrics.n_requests + metrics.n_cache_hits == 10
        assert metrics.n_cache_hits == 4
        assert metrics.cache_hit_rate == pytest.approx(4 / 10)
        assert metrics.workers is None                 # inline server
        assert metrics.cache["hits"] == 4
        summary = metrics.summary()
        assert summary["n_deployments"] == 2
        assert "a" in summary["deployments"]

    def test_server_cache_bytes_applies_to_deployments(self):
        server = ModelServer(BatchPolicy(max_batch=1),
                             cache_bytes=1 << 16)
        entry = server.register("tiny", _session(seed=13))
        assert entry.cache is not None
        assert entry.policy.cache_bytes == 1 << 16
        batch = _batches(1, seed=19)[0]
        first = server.submit("tiny", batch).result()
        repeat_ticket = server.submit("tiny", batch)
        assert repeat_ticket.cached
        assert np.array_equal(repeat_ticket.result(), first)

    def test_policy_cache_budget_wins_over_server_default(self):
        server = ModelServer(cache_bytes=1 << 16)
        entry = server.register(
            "tiny", _session(seed=14),
            policy=BatchPolicy(max_batch=1, cache_bytes=1 << 10))
        assert entry.cache.max_bytes == 1 << 10

    def test_caching_off_by_default(self):
        server = ModelServer()
        entry = server.register("tiny", _session(seed=15))
        assert entry.cache is None
        assert server.metrics().cache is None
