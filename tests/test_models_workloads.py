"""Tests for layer profiling and the quantization policies."""

import dataclasses

import numpy as np
import pytest

from repro.models.configs import get_config
from repro.models.workloads import (
    QuantPolicy,
    policy_for_model,
    profile_model,
    synthetic_profile,
)


def _small_config(name="bert_base", n_layers=2):
    cfg = get_config(name)
    per_block = 6
    return dataclasses.replace(cfg,
                               layers=tuple(cfg.layers[:n_layers * per_block]))


class TestPolicies:
    def test_gpt2_mlp_weights_promoted(self):
        """Footnote 1: GPT-2 MLP weights use 10-bit SBR."""
        cfg = get_config("gpt2")
        pol = policy_for_model(cfg, "aqs")
        fc1 = cfg.layer("block0.mlp.fc1")
        qkv = cfg.layer("block0.attn.q_proj")
        assert pol.weight_bits(fc1) == 10
        assert pol.weight_bits(qkv) == 7

    def test_llama_sensitive_inputs_promoted(self):
        cfg = get_config("llama32_1b")
        assert policy_for_model(cfg, "aqs").activation_bits(
            cfg.layer("block0.mlp.down_proj")) == 12
        assert policy_for_model(cfg, "sibia").activation_bits(
            cfg.layer("block0.mlp.down_proj")) == 10

    def test_sibia_default_7bit_activations(self):
        cfg = get_config("bert_base")
        pol = policy_for_model(cfg, "sibia")
        assert pol.x_bits == 7


class TestProfileModel:
    def test_one_profile_per_layer(self):
        cfg = _small_config()
        profiles = profile_model(cfg, n_sample=64, m_cap=256)
        assert len(profiles) == len(cfg.layers)

    def test_sparsities_in_range(self):
        cfg = _small_config()
        for p in profile_model(cfg, n_sample=64, m_cap=256):
            assert 0.0 <= p.rho_w <= 1.0
            assert 0.0 <= p.rho_x <= 1.0

    def test_aqs_comparable_to_sibia_sparsity(self):
        """Fig. 14(b): the AQS-GEMM achieves *comparable* activation vector
        sparsity to symmetric Sibia and outperforms it in several layers
        (that is the paper's exact claim — symmetric quantization of near-
        symmetric data legitimately produces many zero HO slices)."""
        cfg = _small_config(n_layers=3)
        aqs = profile_model(cfg, policy_for_model(cfg, "aqs"),
                            n_sample=64, m_cap=256)
        sib = profile_model(cfg, policy_for_model(cfg, "sibia"),
                            n_sample=64, m_cap=256)
        mean_aqs = np.mean([p.rho_x for p in aqs])
        mean_sib = np.mean([p.rho_x for p in sib])
        assert mean_aqs >= mean_sib - 0.08
        wins = sum(1 for a, s in zip(aqs, sib) if a.rho_x > s.rho_x)
        assert wins >= 3

    def test_zpm_never_hurts_on_average(self):
        cfg = _small_config(n_layers=3)
        base = profile_model(cfg, QuantPolicy(enable_zpm=False,
                                              enable_dbs=False),
                             n_sample=64, m_cap=256)
        zpm = profile_model(cfg, QuantPolicy(enable_zpm=True,
                                             enable_dbs=False),
                            n_sample=64, m_cap=256)
        assert (np.mean([p.rho_x for p in zpm])
                >= np.mean([p.rho_x for p in base]) - 0.01)

    def test_dbs_raises_sparsity(self):
        """DBS exists to lift wide layers' sparsity (paper: +20% average)."""
        cfg = _small_config("deit_base", n_layers=3)
        no_dbs = profile_model(cfg, QuantPolicy(enable_dbs=False),
                               n_sample=64, m_cap=256)
        dbs = profile_model(cfg, QuantPolicy(enable_dbs=True),
                            n_sample=64, m_cap=256)
        assert (np.mean([p.rho_x for p in dbs])
                >= np.mean([p.rho_x for p in no_dbs]))

    def test_dense_policy_reports_zero_sparsity(self):
        cfg = _small_config()
        for p in profile_model(cfg, QuantPolicy(scheme="dense"),
                               n_sample=32, m_cap=128):
            assert p.rho_w == 0.0 and p.rho_x == 0.0

    def test_masks_match_capped_shapes(self):
        cfg = _small_config()
        p = profile_model(cfg, n_sample=64, m_cap=256)[0]
        assert p.uw_mask.shape[0] == min(p.layer.m, 256) // 4
        assert p.ux_mask.shape == (p.layer.k, 64 // 4)

    def test_slice_counts(self):
        cfg = get_config("gpt2")
        pol = policy_for_model(cfg, "aqs")
        profiles = profile_model(
            dataclasses.replace(cfg, layers=tuple(cfg.layers[:6])),
            pol, n_sample=32, m_cap=128)
        by_name = {p.name: p for p in profiles}
        assert by_name["block0.mlp.fc1"].n_w_slices == 3   # 10-bit
        assert by_name["block0.attn.q_proj"].n_w_slices == 2


class TestSyntheticProfile:
    def test_requested_sparsity_approximate(self):
        p = synthetic_profile(256, 512, 256, rho_w=0.7, rho_x=0.9, seed=1)
        assert p.rho_w == pytest.approx(0.7, abs=0.05)
        assert float((~p.ux_mask).mean()) == pytest.approx(0.9, abs=0.05)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            synthetic_profile(64, 64, 64, rho_w=1.5, rho_x=0.0)

    def test_4bit_weights_dense(self):
        p = synthetic_profile(64, 64, 64, rho_w=0.9, rho_x=0.5, w_bits=4)
        assert p.rho_w == 0.0
        assert p.uw_mask.all()
