"""Tests for the Sibia baseline bit-slice GEMM (paper Section II-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.sibia_gemm import sibia_gemm
from repro.gemm.workload import table1_sibia


def _symmetric_case(rng, m=16, k=64, n=16, std=5.0, bits=7):
    lim = (1 << (bits - 1)) - 1
    w = np.clip(np.rint(rng.standard_t(4, (m, k)) * 4), -lim - 1, lim).astype(int)
    x = np.clip(np.rint(rng.normal(0, std, (k, n))), -lim - 1, lim).astype(int)
    return w, x


class TestExactness:
    def test_matches_integer_gemm(self):
        rng = np.random.default_rng(0)
        for trial in range(6):
            w, x = _symmetric_case(rng)
            res = sibia_gemm(w, x)
            assert np.array_equal(res.acc, w.astype(np.int64) @ x), trial

    def test_tracked_weight_exact(self):
        rng = np.random.default_rng(1)
        w, x = _symmetric_case(rng)
        res = sibia_gemm(w, x, tracked="weight")
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_tracked_activation_exact(self):
        rng = np.random.default_rng(2)
        w, x = _symmetric_case(rng)
        res = sibia_gemm(w, x, tracked="activation")
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_10bit_weights(self):
        rng = np.random.default_rng(3)
        w = rng.integers(-512, 512, (8, 32))
        x = np.clip(np.rint(rng.normal(0, 5, (32, 8))), -64, 63).astype(int)
        res = sibia_gemm(w, x, w_bits=10)
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_4bit_weights_no_ho(self):
        """Single-slice weights: no HO plane, sparsity unexploitable."""
        rng = np.random.default_rng(4)
        w = rng.integers(-8, 8, (8, 32))
        x = np.clip(np.rint(rng.normal(0, 5, (32, 8))), -64, 63).astype(int)
        res = sibia_gemm(w, x, w_bits=4)
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)
        assert res.rho_w == 0.0
        assert res.tracked == "activation"

    def test_auto_picks_sparser_side(self):
        rng = np.random.default_rng(5)
        w = rng.choice([-60, 60], (16, 64))            # dense HO
        x = np.clip(np.rint(rng.normal(0, 2, (64, 16))), -64, 63).astype(int)
        res = sibia_gemm(w, x, tracked="auto")
        assert res.tracked == "activation"

    def test_invalid_tracked_raises(self):
        with pytest.raises(ValueError):
            sibia_gemm(np.zeros((4, 8), dtype=int), np.zeros((8, 4), dtype=int),
                       tracked="both")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sibia_gemm(np.zeros((4, 8), dtype=int), np.zeros((7, 4), dtype=int))


class TestOpCounts:
    def test_matches_table1(self):
        """Ops follow 32K(2 - max(rho_w, rho_x)); EMA is dense 14K."""
        rng = np.random.default_rng(6)
        k = 512
        w, x = _symmetric_case(rng, m=4, k=k, n=4, std=3.0)
        res = sibia_gemm(w, x)
        rho = max(res.rho_w, res.rho_x)
        expected = table1_sibia(k, res.rho_w, res.rho_x)
        # measured uses the tracked side's exact mask; at 4x4 it matches the
        # analytic expectation up to the rho granularity
        assert res.ops.mul4 == pytest.approx(expected.mul4, rel=0.02)
        assert res.ops.ema_nibbles == expected.ema_nibbles
        assert rho > 0.0

    def test_dense_case(self):
        rng = np.random.default_rng(7)
        k = 64
        w = rng.choice([-60, 60], (4, k))
        x = rng.choice([-60, 60], (k, 4))
        res = sibia_gemm(w, x)
        expected = table1_sibia(k, 0.0, 0.0)
        assert res.ops.mul4 == expected.mul4
        assert res.ops.ema_nibbles == expected.ema_nibbles

    def test_cannot_exploit_asymmetric_distributions(self):
        """The paper's motivation: symmetric quantization of an activation
        centred far from zero yields no zero HO slices to skip."""
        rng = np.random.default_rng(8)
        # an asymmetric distribution quantized *symmetrically*: values sit
        # around +30 in int7 code space -> HO slices are nonzero
        x = np.clip(np.rint(rng.normal(30, 3, (64, 16))), -64, 63).astype(int)
        w, _ = _symmetric_case(rng, k=64)
        res = sibia_gemm(w, x, tracked="activation")
        assert res.rho_x == 0.0


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.sampled_from(["auto", "weight",
                                                     "activation"]))
def test_property_sibia_exact(seed, tracked):
    rng = np.random.default_rng(seed)
    w = np.clip(np.rint(rng.standard_t(3, (8, 16)) * 5), -64, 63).astype(int)
    x = np.clip(np.rint(rng.normal(0, 8, (16, 8))), -64, 63).astype(int)
    res = sibia_gemm(w, x, tracked=tracked)
    assert np.array_equal(res.acc, w.astype(np.int64) @ x)
