"""Tests for the AQS-GEMM core: exactness (Eqs. 5/6) and Table I op counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice.slicing import dbs_reconstruct_codes
from repro.core.aqs_gemm import (
    AqsGemmConfig,
    aqs_gemm,
    compensation_bias,
    frequent_ho_slice,
)
from repro.gemm.workload import table1_panacea


def _random_case(rng, m=16, k=64, n=16, zp=None, std=8.0, w_bits=7):
    w_max = (1 << (w_bits - 1)) - 1
    w = rng.integers(-w_max - 1, w_max + 1, (m, k))
    zp = int(rng.integers(1, 255)) if zp is None else zp
    x = np.clip(np.rint(rng.normal(zp, std, (k, n))), 0, 255).astype(np.int64)
    return w, x, zp


class TestFrequentHoSlice:
    def test_paper_example(self):
        """zp = 161 -> r = 1010b = 10 (paper Fig. 8a)."""
        assert frequent_ho_slice(161, 4) == 10

    def test_zpm_adjusted(self):
        """zp' = 168 (after ZPM) -> same bucket centre -> r = 10."""
        assert frequent_ho_slice(168, 4) == 10

    def test_dbs_l5(self):
        assert frequent_ho_slice(168, 5) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            frequent_ho_slice(-1)


class TestExactness:
    def test_matches_integer_gemm(self):
        rng = np.random.default_rng(0)
        for trial in range(8):
            w, x, zp = _random_case(rng)
            res = aqs_gemm(w, x, zp)
            assert np.array_equal(res.acc, w.astype(np.int64) @ x), trial

    def test_exact_at_full_sparsity(self):
        """All activation vectors compressible: result still exact."""
        rng = np.random.default_rng(1)
        w = rng.integers(-64, 64, (8, 32))
        zp = 168
        x = np.full((32, 8), zp, dtype=np.int64)
        res = aqs_gemm(w, x, zp)
        assert res.rho_x == 1.0
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_exact_at_zero_sparsity(self):
        rng = np.random.default_rng(2)
        w = rng.integers(-64, 64, (8, 32))
        x = rng.integers(0, 256, (32, 8))
        res = aqs_gemm(w, x, 128)
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_symmetric_mode_zp_128(self):
        """Fig. 18(a): symmetric support by setting every zero-point to 128."""
        rng = np.random.default_rng(3)
        w, x, _ = _random_case(rng, zp=128)
        res = aqs_gemm(w, x, 128)
        assert res.r == 8
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_dbs_l5_exact_vs_truncated_codes(self):
        rng = np.random.default_rng(4)
        w, x, zp = _random_case(rng, std=20.0)
        res = aqs_gemm(w, x, zp, AqsGemmConfig(lo_bits=5))
        ref = w.astype(np.int64) @ dbs_reconstruct_codes(x, 5)
        assert np.array_equal(res.acc, ref)

    def test_dbs_l6_exact_vs_truncated_codes(self):
        rng = np.random.default_rng(5)
        w, x, zp = _random_case(rng, std=40.0)
        res = aqs_gemm(w, x, zp, AqsGemmConfig(lo_bits=6))
        ref = w.astype(np.int64) @ dbs_reconstruct_codes(x, 6)
        assert np.array_equal(res.acc, ref)

    def test_10bit_weights(self):
        """GPT-2 MLP layers use 10-bit SBR weights (three slices)."""
        rng = np.random.default_rng(6)
        w, x, zp = _random_case(rng, w_bits=10)
        res = aqs_gemm(w, x, zp, AqsGemmConfig(w_bits=10))
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_4bit_weights(self):
        """Fig. 19: n = 0 (single 4-bit weight slice) still exact."""
        rng = np.random.default_rng(7)
        w, x, zp = _random_case(rng, w_bits=4)
        res = aqs_gemm(w, x, zp, AqsGemmConfig(w_bits=4))
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)
        assert res.rho_w == 0.0

    def test_12bit_activations(self):
        """Llama sensitive layers: three activation slices."""
        rng = np.random.default_rng(8)
        w = rng.integers(-64, 64, (8, 32))
        zp = 2000
        x = np.clip(np.rint(rng.normal(zp, 30, (32, 8))), 0,
                    4095).astype(np.int64)
        res = aqs_gemm(w, x, zp, AqsGemmConfig(x_bits=12))
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            aqs_gemm(np.zeros((4, 8), dtype=int), np.zeros((9, 4), dtype=int),
                     100)


class TestCompensation:
    def test_bias_formula(self):
        """b' = r * 2^l * rowsum(W), broadcast over columns."""
        w = np.array([[1, 2], [3, -4]])
        b = compensation_bias(w, r=10, ho_shift=4, n=3)
        assert b.shape == (2, 3)
        assert b[0, 0] == 10 * 16 * 3
        assert b[1, 2] == 10 * 16 * -1

    def test_compensation_counted_separately(self):
        rng = np.random.default_rng(9)
        w, x, zp = _random_case(rng)
        res = aqs_gemm(w, x, zp)
        assert res.ops.comp_mul4 > 0
        assert res.ops.comp_add >= 0
        assert res.ops.comp_mul4 <= res.ops.mul4

    def test_r_zero_needs_no_compensation_effect(self):
        """With zp < 16 (r = 0) the compensation term is identically zero."""
        rng = np.random.default_rng(10)
        w = rng.integers(-64, 64, (8, 32))
        x = np.clip(np.rint(np.abs(rng.normal(0, 4, (32, 8)))), 0,
                    255).astype(np.int64)
        res = aqs_gemm(w, x, 5)
        assert res.r == 0
        assert np.array_equal(res.acc, w.astype(np.int64) @ x)


class TestOpCounts:
    def test_matches_table1_expectation(self):
        """Measured ops track 16K(2-rx)(2-rw)+comp within sampling noise."""
        rng = np.random.default_rng(11)
        k = 512
        w = rng.integers(-64, 64, (4, k))
        # weights from a heavy-tailed distribution to get weight sparsity
        w = np.clip(np.rint(rng.standard_t(4, (4, k)) * 4), -64, 63).astype(int)
        zp = 168
        x = np.clip(np.rint(rng.normal(zp, 5, (k, 4))), 0, 255).astype(np.int64)
        res = aqs_gemm(w, x, zp)
        expected = table1_panacea(k, res.rho_w, res.rho_x)
        assert res.ops.mul4 == pytest.approx(expected.mul4, rel=0.06)
        assert res.ops.add == pytest.approx(expected.add, rel=0.06)
        assert res.ops.ema_nibbles == pytest.approx(expected.ema_nibbles,
                                                    rel=0.06)

    def test_dense_case_matches_table1(self):
        """rho = 0 exactly: 16K*4 + 16 mults, EMA 16K nibbles."""
        rng = np.random.default_rng(12)
        k = 64
        w = rng.choice([-60, 60], (4, k))      # no zero HO vectors
        x = rng.choice([10, 240], (k, 4))      # no r vectors (zp=128 -> r=8)
        res = aqs_gemm(w, x, 128)
        assert res.rho_w == 0.0 and res.rho_x == 0.0
        expected = table1_panacea(k, 0.0, 0.0)
        assert res.ops.mul4 == expected.mul4
        assert res.ops.add == expected.add
        assert res.ops.ema_nibbles == expected.ema_nibbles

    def test_mac_reduction_vs_dense(self):
        """Headline claim: AQS-GEMM cuts MACs by ~61% vs dense GEMM at
        realistic sparsities (here we just require a substantial cut)."""
        rng = np.random.default_rng(13)
        k = 1024
        w = np.clip(np.rint(rng.standard_t(4, (64, k)) * 3), -64, 63).astype(int)
        zp = 168
        x = np.clip(np.rint(rng.normal(zp, 4, (k, 64))), 0, 255).astype(np.int64)
        res = aqs_gemm(w, x, zp)
        dense_mul4 = 4 * 64 * k * 64
        assert res.ops.mul4 < 0.55 * dense_mul4

    def test_notes_record_product_split(self):
        rng = np.random.default_rng(14)
        w, x, zp = _random_case(rng)
        res = aqs_gemm(w, x, zp)
        notes = res.ops.notes
        assert notes["static_products"] == 64 * (16 // 4) * (16 // 4)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 255), st.integers(1, 30), st.integers(0, 2 ** 31 - 1))
def test_property_aqs_exact_any_zp(zp, std, seed):
    rng = np.random.default_rng(seed)
    w = rng.integers(-64, 64, (8, 16))
    x = np.clip(np.rint(rng.normal(zp, std, (16, 8))), 0, 255).astype(np.int64)
    res = aqs_gemm(w, x, zp)
    assert np.array_equal(res.acc, w.astype(np.int64) @ x)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from([4, 5, 6]), st.integers(0, 2 ** 31 - 1))
def test_property_dbs_exact_vs_truncated(lo_bits, seed):
    rng = np.random.default_rng(seed)
    w = rng.integers(-64, 64, (8, 16))
    zp = int(rng.integers(0, 255))
    x = np.clip(np.rint(rng.normal(zp, 25, (16, 8))), 0, 255).astype(np.int64)
    res = aqs_gemm(w, x, zp, AqsGemmConfig(lo_bits=lo_bits))
    ref = w.astype(np.int64) @ dbs_reconstruct_codes(x, lo_bits)
    assert np.array_equal(res.acc, ref)
