"""Tests for the two-phase engine layer: registry, prepare/execute, plans."""

import numpy as np
import pytest

from repro.core.aqs_gemm import (
    AqsGemmConfig,
    AqsLayerPlan,
    aqs_gemm,
    execute_aqs,
    prepare_aqs,
)
from repro.engine import (
    Engine,
    EngineConfig,
    GemmResult,
    available_engines,
    engine_names,
    get_engine,
    plan_from_state,
    register_engine,
)
from repro.gemm.dense import execute_int8_dense, prepare_int8_dense
from repro.gemm.sibia_gemm import execute_sibia, prepare_sibia, sibia_gemm
from repro.quant.uniform import quantize, symmetric_params


def _aqs_case(rng, m=24, k=48, n=12, zp=168, w_bits=7):
    w_max = (1 << (w_bits - 1)) - 1
    w = rng.integers(-w_max - 1, w_max + 1, (m, k))
    x = np.clip(np.rint(rng.normal(zp, 12.0, (k, n))), 0, 255).astype(np.int64)
    return w, x


def _sbr_case(rng, m=24, k=48, n=12, bits=7):
    hi = (1 << (bits - 1)) - 1
    return (rng.integers(-hi - 1, hi + 1, (m, k)),
            rng.integers(-hi - 1, hi + 1, (k, n)))


class TestRegistry:
    def test_builtin_names(self):
        assert set(engine_names()) == {"fp32", "int8_dense", "sibia", "aqs"}

    def test_registry_matches_schemes(self):
        from repro.core.pipeline import SCHEMES

        assert set(SCHEMES) == set(engine_names())

    def test_instances_are_cached(self):
        assert get_engine("aqs") is get_engine("aqs")

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            get_engine("fp8")

    def test_duplicate_registration_rejected(self):
        class Impostor(Engine):
            name = "aqs"

            def prepare(self, w_q, zp, config=None):
                raise NotImplementedError

            def execute(self, plan, x_q):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_engine(Impostor)

    def test_replace_allows_override(self):
        original = available_engines()["aqs"]

        class Instrumented(original):
            pass

        Instrumented.name = "aqs"
        try:
            register_engine(Instrumented, replace=True)
            assert isinstance(get_engine("aqs"), Instrumented)
        finally:
            register_engine(original, replace=True)

    def test_nameless_engine_rejected(self):
        class NoName(Engine):
            def prepare(self, w_q, zp, config=None):
                raise NotImplementedError

            def execute(self, plan, x_q):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_engine(NoName)


class TestAqsPrepareExecute:
    @pytest.mark.parametrize("w_bits", [4, 7, 10])
    @pytest.mark.parametrize("lo_bits", [4, 5, 6])
    def test_bit_exact_vs_one_shot(self, w_bits, lo_bits):
        rng = np.random.default_rng(7 * w_bits + lo_bits)
        w, x = _aqs_case(rng, w_bits=w_bits)
        config = AqsGemmConfig(w_bits=w_bits, lo_bits=lo_bits)
        legacy = aqs_gemm(w, x, 168, config)
        plan = prepare_aqs(w, 168, config)
        split = execute_aqs(plan, x)
        assert np.array_equal(legacy.acc, split.acc)
        assert legacy.ops.mul4 == split.ops.mul4
        assert legacy.ops.add == split.ops.add
        assert legacy.ops.ema_nibbles == split.ops.ema_nibbles
        assert legacy.ops.rle_index_bits == split.ops.rle_index_bits
        assert legacy.rho_w == split.rho_w
        assert legacy.rho_x == split.rho_x
        assert legacy.r == split.r

    def test_engine_matches_kernel(self):
        rng = np.random.default_rng(0)
        w, x = _aqs_case(rng)
        res = get_engine("aqs").run(w, x, 168, EngineConfig())
        assert np.array_equal(res.acc, aqs_gemm(w, x, 168).acc)
        assert res.r == 10

    def test_plan_reused_across_batches(self):
        rng = np.random.default_rng(1)
        w, x1 = _aqs_case(rng)
        _, x2 = _aqs_case(rng)
        plan = prepare_aqs(w, 168)
        for x in (x1, x2):
            assert np.array_equal(execute_aqs(plan, x).acc,
                                  aqs_gemm(w, x, 168).acc)

    def test_per_channel_weights(self):
        """Per-channel (per-row) quantized weights run bit-exactly."""
        rng = np.random.default_rng(2)
        weight = rng.normal(0, 1, (16, 32)) * rng.uniform(0.1, 4.0, (16, 1))
        params = symmetric_params(weight, 7, axis=0)
        w_q = quantize(weight, params)
        x = np.clip(np.rint(rng.normal(168, 10, (32, 8))), 0,
                    255).astype(np.int64)
        plan = prepare_aqs(w_q, 168)
        res = execute_aqs(plan, x)
        assert np.array_equal(res.acc, w_q.astype(np.int64) @ x)
        assert np.array_equal(res.acc, aqs_gemm(w_q, x, 168).acc)

    def test_execute_shape_mismatch(self):
        plan = prepare_aqs(np.zeros((4, 8), dtype=int), 128)
        with pytest.raises(ValueError):
            execute_aqs(plan, np.zeros((9, 4), dtype=int))

    def test_plan_state_roundtrip(self):
        rng = np.random.default_rng(3)
        w, x = _aqs_case(rng)
        plan = prepare_aqs(w, 168, AqsGemmConfig(lo_bits=5))
        restored = AqsLayerPlan.from_state(plan.state_dict())
        a, b = execute_aqs(plan, x), execute_aqs(restored, x)
        assert np.array_equal(a.acc, b.acc)
        assert a.ops.rle_index_bits == b.ops.rle_index_bits

    def test_plan_from_state_dispatches_on_engine(self):
        rng = np.random.default_rng(4)
        w, x = _aqs_case(rng)
        plan = prepare_aqs(w, 168)
        restored = plan_from_state(plan.state_dict())
        assert isinstance(restored, AqsLayerPlan)
        assert np.array_equal(execute_aqs(restored, x).acc,
                              aqs_gemm(w, x, 168).acc)


class TestSibiaPrepareExecute:
    @pytest.mark.parametrize("w_bits", [4, 7, 10])
    @pytest.mark.parametrize("tracked", ["auto", "weight", "activation"])
    def test_bit_exact_vs_one_shot(self, w_bits, tracked):
        if w_bits == 4 and tracked == "weight":
            tracked = "auto"  # single-slice weights force activation tracking
        rng = np.random.default_rng(w_bits)
        w, x = _sbr_case(rng, bits=min(w_bits, 7))
        legacy = sibia_gemm(w, x, w_bits=w_bits, tracked=tracked)
        plan = prepare_sibia(w, w_bits=w_bits, tracked=tracked)
        split = execute_sibia(plan, x)
        assert np.array_equal(legacy.acc, split.acc)
        assert legacy.ops.mul4 == split.ops.mul4
        assert legacy.ops.ema_nibbles == split.ops.ema_nibbles
        assert legacy.tracked == split.tracked
        assert legacy.rho_w == split.rho_w

    def test_engine_matches_kernel(self):
        rng = np.random.default_rng(5)
        w, x = _sbr_case(rng)
        res = get_engine("sibia").run(w, x, 0, EngineConfig(x_bits=7))
        assert np.array_equal(res.acc, sibia_gemm(w, x).acc)
        assert res.tracked in ("weight", "activation")

    def test_plan_state_roundtrip(self):
        rng = np.random.default_rng(6)
        w, x = _sbr_case(rng)
        plan = prepare_sibia(w)
        restored = plan_from_state(plan.state_dict())
        assert np.array_equal(execute_sibia(restored, x).acc,
                              execute_sibia(plan, x).acc)

    def test_bad_tracked_rejected(self):
        plan = prepare_sibia(np.zeros((4, 8), dtype=int), tracked="bogus")
        with pytest.raises(ValueError):
            execute_sibia(plan, np.zeros((8, 4), dtype=int))


class TestDenseAndFp32:
    def test_int8_dense_matches_integer_gemm(self):
        rng = np.random.default_rng(8)
        w = rng.integers(-128, 128, (16, 32))
        x = rng.integers(0, 256, (32, 8))
        plan = prepare_int8_dense(w)
        acc, ops = execute_int8_dense(plan, x)
        assert np.array_equal(acc, w.astype(np.int64) @ x)
        assert ops.mul4 == 4 * 16 * 32 * 8
        res = get_engine("int8_dense").run(w, x, 0, EngineConfig(w_bits=8))
        assert np.array_equal(res.acc, acc)

    def test_int8_dense_count_ops_off(self):
        plan = prepare_int8_dense(np.ones((4, 4), dtype=int), count_ops=False)
        _, ops = execute_int8_dense(plan, np.ones((4, 4), dtype=int))
        assert ops.mul4 == 0

    def test_dense_plan_roundtrip(self):
        rng = np.random.default_rng(9)
        w = rng.integers(-128, 128, (8, 8))
        x = rng.integers(0, 256, (8, 4))
        plan = prepare_int8_dense(w)
        restored = plan_from_state(plan.state_dict())
        assert np.array_equal(execute_int8_dense(restored, x)[0],
                              execute_int8_dense(plan, x)[0])

    def test_fp32_is_plain_matmul(self):
        rng = np.random.default_rng(10)
        w = rng.normal(0, 1, (8, 16))
        x = rng.normal(0, 1, (16, 4))
        res = get_engine("fp32").run(w, x, 0)
        assert np.allclose(res.acc, w @ x)
        assert res.ops.mul4 == 0

    def test_fp32_shape_mismatch(self):
        engine = get_engine("fp32")
        plan = engine.prepare(np.zeros((4, 8)), 0)
        with pytest.raises(ValueError):
            engine.execute(plan, np.zeros((9, 2)))


class TestGemmResultTyping:
    def test_masks_default_none(self):
        from repro.core.aqs_gemm import AqsGemmResult
        from repro.gemm.workload import OpCounts

        res = GemmResult(acc=np.zeros((1, 1)), ops=OpCounts())
        assert res.uw_mask is None and res.ux_mask is None
        kernel_res = AqsGemmResult(acc=np.zeros((1, 1)), ops=OpCounts(),
                                   rho_w=0.0, rho_x=0.0, r=0)
        assert kernel_res.uw_mask is None and kernel_res.ux_mask is None

    def test_engine_result_carries_masks(self):
        rng = np.random.default_rng(11)
        w, x = _aqs_case(rng)
        res = get_engine("aqs").run(w, x, 168)
        assert res.uw_mask is not None and res.uw_mask.dtype == bool
        assert res.ux_mask is not None and res.ux_mask.dtype == bool
