"""Tests for the full-shape model configs and distribution samplers."""

import numpy as np
import pytest

from repro.models.configs import MODEL_CONFIGS, get_config
from repro.models.distributions import (
    ActivationSpec,
    sample_activation,
    sample_weight,
)


class TestConfigs:
    def test_all_expected_models_present(self):
        expected = {"deit_base", "bert_base", "gpt2", "opt_350m", "opt_1p3b",
                    "opt_2p7b", "llama32_1b", "llama32_3b", "resnet18"}
        assert expected == set(MODEL_CONFIGS)

    def test_get_config_unknown(self):
        with pytest.raises(KeyError):
            get_config("gpt5")

    def test_deit_base_shapes(self):
        cfg = get_config("deit_base")
        fc1 = cfg.layer("block0.mlp.fc1")
        assert (fc1.m, fc1.k, fc1.n) == (3072, 768, 197)
        assert len([l for l in cfg.layers if l.block_index == 0]) == 6

    def test_gpt2_sequence_length(self):
        cfg = get_config("gpt2")
        assert all(l.n == 1024 for l in cfg.layers)

    def test_opt_2p7b_dims(self):
        cfg = get_config("opt_2p7b")
        fc2 = cfg.layer("block0.mlp.fc2")
        assert (fc2.m, fc2.k) == (2560, 10240)
        assert len(cfg.layers) == 32 * 6

    def test_llama_gqa_kv_dims(self):
        cfg = get_config("llama32_1b")
        k_proj = cfg.layer("block0.attn.k_proj")
        assert k_proj.m == 512  # 8 kv heads x 64 head dim
        assert cfg.layer("block0.attn.q_proj").m == 2048

    def test_llama_swiglu_layers(self):
        cfg = get_config("llama32_1b")
        names = {l.name for l in cfg.layers if l.block_index == 0}
        assert "block0.mlp.gate_proj" in names
        assert "block0.mlp.down_proj" in names
        assert cfg.sensitive_layers[0] == "block0.mlp.down_proj"

    def test_resnet_stem_im2col(self):
        cfg = get_config("resnet18")
        stem = cfg.layer("stem")
        assert (stem.m, stem.k, stem.n) == (64, 3 * 49, 112 * 112)

    def test_fc2_layers_marked_gelu(self):
        cfg = get_config("bert_base")
        assert cfg.layer("block0.mlp.fc2").act.family == "gelu"

    def test_total_macs_positive_and_ordered(self):
        small = get_config("opt_350m").total_macs
        big = get_config("opt_2p7b").total_macs
        assert 0 < small < big

    def test_spread_grows_with_depth(self):
        cfg = get_config("bert_base")
        early = cfg.layer("block0.attn.q_proj").act.spread
        late = cfg.layer("block11.attn.q_proj").act.spread
        assert late > early


class TestDistributions:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            ActivationSpec("bimodal")

    @pytest.mark.parametrize("family", ["layernorm", "gelu", "swiglu",
                                        "relu", "softmax",
                                        "residual_outlier", "image"])
    def test_families_sample_finite(self, family):
        rng = np.random.default_rng(0)
        x = sample_activation(ActivationSpec(family), 64, 32, rng)
        assert x.shape == (64, 32)
        assert np.all(np.isfinite(x))

    def test_gelu_is_asymmetric(self):
        rng = np.random.default_rng(1)
        x = sample_activation(ActivationSpec("gelu"), 256, 128, rng)
        assert x.min() > -0.5
        assert x.max() > 1.0

    def test_relu_nonnegative(self):
        rng = np.random.default_rng(2)
        x = sample_activation(ActivationSpec("relu"), 64, 64, rng)
        assert x.min() >= 0.0

    def test_outlier_channels_applied(self):
        rng = np.random.default_rng(3)
        spec = ActivationSpec("layernorm", outlier_channels=4,
                              outlier_scale=50.0)
        x = sample_activation(spec, 128, 64, rng)
        ch_amp = np.abs(x).max(axis=1)
        assert (ch_amp > 10 * np.median(ch_amp)).sum() >= 3

    def test_spread_widens_coded_bulk(self):
        """Higher spread must increase the coded std (DBS trigger)."""
        from repro.quant.observers import HistogramObserver

        rng = np.random.default_rng(4)
        stds = []
        for spread in (1.0, 2.5):
            x = sample_activation(ActivationSpec("layernorm", spread=spread),
                                  256, 128, np.random.default_rng(4))
            obs = HistogramObserver(bits=8)
            obs.observe(x)
            stds.append(obs.quantized_std())
        assert stds[1] > stds[0]

    def test_weight_tail_df_controls_sparsity(self):
        """Heavier tails (lower df) -> more SBR HO-slice sparsity."""
        from repro.bitslice.sparsity import weight_sparsity_report
        from repro.quant.uniform import quantize, symmetric_params

        def rho(df):
            rng = np.random.default_rng(5)
            w = sample_weight(256, 256, rng, tail_df=df)
            q = quantize(w, symmetric_params(w, 7))
            return weight_sparsity_report(q, 7).vector_sparsity

        assert rho(4.0) > rho(12.0)
