"""Tests for ShardPlan, the partition DP and the auto-partitioner."""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import build_proxy, proxy_batches
from repro.shard import (ShardError, ShardPlan, StageSpec, auto_partition,
                         model_segments, modeled_layer_costs,
                         partition_costs)


def _session(name="bert_base", scheme="aqs", seed=0):
    model, _ = build_proxy(name, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme(scheme))
    session.calibrate(proxy_batches(name, 2, 2, seed=seed + 1))
    return session


def _max_stage(costs, starts):
    bounds = list(starts) + [len(costs)]
    return max(sum(costs[bounds[i]:bounds[i + 1]])
               for i in range(len(starts)))


class TestPartitionCosts:
    def test_single_stage_takes_everything(self):
        assert partition_costs([3.0, 1.0, 2.0], 1) == [0]

    def test_stages_equal_segments_is_identity(self):
        assert partition_costs([5.0, 1.0, 9.0], 3) == [0, 1, 2]

    def test_balanced_split_of_uniform_costs(self):
        starts = partition_costs([1.0] * 8, 4)
        assert starts == [0, 2, 4, 6]

    def test_minimizes_max_stage_against_brute_force(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(3, 9))
            k = int(rng.integers(1, n + 1))
            costs = rng.uniform(0.1, 10.0, n).tolist()
            got = _max_stage(costs, partition_costs(costs, k))
            # brute force over all contiguous partitions
            import itertools
            best = min(
                _max_stage(costs, [0] + list(cuts))
                for cuts in itertools.combinations(range(1, n), k - 1))
            assert got == pytest.approx(best)

    def test_too_many_stages_raises(self):
        with pytest.raises(ShardError, match="cannot split"):
            partition_costs([1.0, 2.0], 3)
        with pytest.raises(ShardError, match=">= 1"):
            partition_costs([1.0], 0)


class TestShardPlan:
    def _plan(self):
        return ShardPlan(stages=(
            StageSpec(("a", "b"), ("a.fc",), 2.0),
            StageSpec(("c",), ("c.fc",), 1.5)), source="manual")

    def test_state_round_trip(self):
        plan = self._plan()
        assert ShardPlan.from_state(plan.state_dict()) == plan

    def test_validation_rejects_empty(self):
        with pytest.raises(ShardError):
            ShardPlan(stages=())
        with pytest.raises(ShardError):
            ShardPlan(stages=(StageSpec((), (), 0.0),))

    def test_balance_and_summary(self):
        plan = self._plan()
        assert plan.n_stages == 2
        assert plan.balance == pytest.approx(2.0 / 1.75)
        rows = plan.summary()
        assert [r["stage"] for r in rows] == [0, 1]
        assert sum(r["cost_share"] for r in rows) == pytest.approx(1.0)

    def test_validate_against_wrong_chain_raises(self):
        session = _session()
        segments = model_segments(session.model)
        with pytest.raises(ShardError, match="does not match"):
            self._plan().validate_against(segments)

    def test_stage_slices_cover_chain_contiguously(self):
        session = _session()
        segments = model_segments(session.model)
        plan = auto_partition(session, 3)
        slices = plan.stage_slices(segments)
        flat = [segment.name for group in slices for segment in group]
        assert flat == [segment.name for segment in segments]


class TestAutoPartition:
    def test_modeled_costs_cover_all_gemm_layers(self):
        session = _session()
        costs = modeled_layer_costs(session.model)
        assert set(costs) == set(session.plans)
        assert all(c > 0 for c in costs.values())

    def test_modeled_costs_work_on_float_models(self):
        model, _ = build_proxy("bert_base", seed=0)
        costs = modeled_layer_costs(model)
        assert costs and all(c > 0 for c in costs.values())

    def test_measured_partition_uses_profile(self):
        session = _session()
        sample = proxy_batches("bert_base", 2, 1, seed=5)[0]
        plan = auto_partition(session, 3, sample=sample)
        assert plan.source == "measured"
        assert plan.n_stages == 3
        # every GEMM layer lands in exactly one stage
        seen = [layer for stage in plan.stages for layer in stage.layers]
        assert sorted(seen) == sorted(session.plans)

    def test_modeled_fallback_without_sample(self):
        plan = auto_partition(_session(), 4)
        assert plan.source == "modeled"
        assert plan.n_stages == 4
        assert all(stage.cost > 0 for stage in plan.stages)

    def test_fp32_profile_falls_back_to_modeled(self):
        """The fp32 reference scheme traces no GEMM records, so a measured
        partition silently degrades to the modeled cost path."""
        session = _session(scheme="fp32")
        sample = proxy_batches("bert_base", 2, 1, seed=5)[0]
        plan = auto_partition(session, 2, sample=sample)
        assert plan.source == "modeled"

    def test_partition_is_reasonably_balanced(self):
        plan = auto_partition(_session(), 3)
        # bert proxy: 4 uniform blocks + light head/adapter; the DP must
        # not produce a stage holding everything
        assert plan.balance < 2.0
