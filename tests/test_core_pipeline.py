"""Tests for the end-to-end PTQ pipeline (paper Fig. 6)."""

import numpy as np
import pytest

from repro.core.pipeline import (
    ExecutionTrace,
    PtqConfig,
    PtqPipeline,
    QuantizedConv2d,
    QuantizedLinear,
)
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.resnet import ResNet
from repro.nn.transformer import CausalLM


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        h = np.maximum(self.fc1(x), 0.0)
        return self.fc2(h)


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


class TestConfig:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            PtqConfig(scheme="fp8")

    def test_rejects_non_sbr_sibia_bits(self):
        with pytest.raises(ValueError):
            PtqConfig(scheme="sibia", x_bits=8)

    def test_rejects_non_sbr_weights(self):
        with pytest.raises(ValueError):
            PtqConfig(scheme="aqs", w_bits=8)

    def test_per_layer_overrides(self):
        cfg = PtqConfig(per_layer_w_bits={"fc1": 10})
        assert cfg.weight_bits_for("fc1") == 10
        assert cfg.weight_bits_for("fc2") == 7


class TestCalibration:
    def test_records_every_gemm_layer(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        records = pipe.calibrate(_batches())
        assert set(records) == {"fc1", "fc2"}

    def test_records_contain_dbs_decision(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        records = pipe.calibrate(_batches())
        assert all(r.dbs is not None for r in records.values())

    def test_zpm_centres_zero_points(self):
        """Zero-points land at (or within the rescaling wobble of) the
        bucket centre after the clip-free ZPM."""
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs",
                                                enable_dbs=False))
        records = pipe.calibrate(_batches())
        for r in records.values():
            if r.zp > 0:
                assert abs((r.zp % 16) - 8) <= 3

    def test_sibia_uses_symmetric_activations(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="sibia", x_bits=7))
        records = pipe.calibrate(_batches())
        assert all(r.x_params.is_symmetric for r in records.values())

    def test_convert_before_calibrate_raises(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        with pytest.raises(RuntimeError):
            pipe.convert()


class TestConversion:
    def test_linears_replaced(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        model = pipe.convert()
        assert isinstance(model.fc1, QuantizedLinear)
        assert isinstance(model.fc2, QuantizedLinear)

    def test_fp32_scheme_is_identity(self):
        net = TinyNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="fp32"))
        assert pipe.convert() is net

    def test_quantized_output_close_to_fp(self):
        net = TinyNet()
        fp_out = [net(b) for b in _batches()]
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        qnet = pipe.convert()
        q_out = [qnet(b) for b in _batches()]
        for a, b in zip(fp_out, q_out):
            rel = np.abs(a - b).mean() / (np.abs(a).mean() + 1e-9)
            assert rel < 0.1

    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7),
                                               ("int8_dense", 8)])
    def test_all_schemes_run(self, scheme, x_bits):
        net = TinyNet()
        pipe = PtqPipeline(net, PtqConfig(scheme=scheme, x_bits=x_bits))
        pipe.calibrate(_batches())
        out = pipe.convert()(np.zeros((2, 16)))
        assert out.shape == (2, 8)
        assert np.all(np.isfinite(out))

    def test_conv_model(self):
        net = ResNet(n_classes=4, width=8)
        imgs = [np.random.default_rng(i).normal(size=(1, 3, 16, 16))
                for i in range(2)]
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs"))
        pipe.calibrate(imgs)
        qnet = pipe.convert()
        assert isinstance(qnet.stem, QuantizedConv2d)
        assert qnet(imgs[0]).shape == (1, 4)

    def test_lm_model(self):
        lm = CausalLM(vocab=32, dim=16, n_layers=1, n_heads=2, mlp_hidden=32)
        ids = [np.arange(8).reshape(1, 8) % 32 for _ in range(2)]
        pipe = PtqPipeline(lm, PtqConfig(scheme="aqs"))
        pipe.calibrate(ids)
        qlm = pipe.convert()
        assert qlm(ids[0]).shape == (1, 8, 32)


class TestTrace:
    def test_trace_collects_executions(self):
        net = TinyNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        trace = ExecutionTrace()
        qnet = pipe.convert(trace=trace, count_ops=True)
        qnet(np.zeros((4, 16)))
        assert len(trace.records) == 2
        rec = trace.records[0]
        assert rec.name == "fc1"
        assert (rec.m, rec.k, rec.n) == (32, 16, 4)
        assert rec.ops.mul4 > 0

    def test_trace_totals(self):
        net = TinyNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        trace = ExecutionTrace()
        qnet = pipe.convert(trace=trace, count_ops=True)
        qnet(np.zeros((4, 16)))
        total = trace.total_ops()
        assert total.mul4 == sum(r.ops.mul4 for r in trace.records)

    def test_trace_by_layer(self):
        net = TinyNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        trace = ExecutionTrace()
        qnet = pipe.convert(trace=trace)
        qnet(np.zeros((2, 16)))
        qnet(np.zeros((2, 16)))
        grouped = trace.by_layer()
        assert len(grouped["fc1"]) == 2


class _BiasedNet(Module):
    """One Linear with wildly imbalanced per-channel scales and a real bias."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(21)
        self.fc = Linear(16, 8, rng=rng)
        # Rows 0-3 tiny, rows 4-7 large: per-channel scales differ ~100x.
        self.fc.weight[:4] *= 0.01
        self.fc.bias[:] = np.linspace(-4.0, 4.0, 8)

    def forward(self, x):
        return self.fc(x)


class TestPerChannelBiasFold:
    def test_bias_survives_per_channel_dequant(self):
        """Regression: the bias must be folded with each channel's own scale.

        At ``x = 0`` the layer output is exactly the bias.  Folding with the
        max scale (the old behaviour) shrinks the bias of every small-scale
        channel by scale_ch/scale_max — here ~100x.
        """
        net = _BiasedNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="int8_dense",
                                          w_granularity="per_channel"))
        pipe.calibrate(_batches())
        out = pipe.convert()(np.zeros((1, 16)))[0]
        expected = np.linspace(-4.0, 4.0, 8)
        # Error budget: one rounding step of the per-channel combined scale.
        assert np.max(np.abs(out - expected)) < 0.05
        # The small-scale channels are the regression's victims.
        assert abs(out[0] - expected[0]) < 0.05

    def test_per_tensor_fold_unchanged(self):
        net = _BiasedNet()
        pipe = PtqPipeline(net, PtqConfig(scheme="int8_dense",
                                          w_granularity="per_tensor"))
        pipe.calibrate(_batches())
        out = pipe.convert()(np.zeros((1, 16)))[0]
        expected = np.linspace(-4.0, 4.0, 8)
        assert np.max(np.abs(out - expected)) < 0.2

    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7)])
    def test_bitslice_schemes_keep_bias(self, scheme, x_bits):
        net = _BiasedNet()
        pipe = PtqPipeline(net, PtqConfig(scheme=scheme, x_bits=x_bits,
                                          w_granularity="per_channel"))
        pipe.calibrate(_batches())
        out = pipe.convert()(np.zeros((1, 16)))[0]
        expected = np.linspace(-4.0, 4.0, 8)
        assert np.max(np.abs(out - expected)) < 0.3


class TestConfigThreading:
    """PtqConfig knobs must reach the engine configs, not silently default."""

    def test_index_bits_reaches_aqs_plan(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs", index_bits=8))
        pipe.calibrate(_batches())
        pipe.convert()
        for plan in pipe.plans().values():
            assert plan.config.index_bits == 8

    def test_tracked_reaches_sibia_plan(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="sibia", x_bits=7,
                                                tracked="activation"))
        pipe.calibrate(_batches())
        pipe.convert()
        for plan in pipe.plans().values():
            assert plan.tracked == "activation"

    def test_exec_path_reaches_plans(self):
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs",
                                                exec_path="sliced"))
        pipe.calibrate(_batches())
        pipe.convert()
        for plan in pipe.plans().values():
            assert plan.config.exec_path == "sliced"

    def test_index_bits_changes_rle_accounting(self):
        """Wider indices mean fewer continuation tokens but more bits per
        token; either way the ledger must reflect the configured width."""
        outs = {}
        for index_bits in (2, 4):
            trace = ExecutionTrace()
            pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs",
                                                    index_bits=index_bits))
            pipe.calibrate(_batches())
            model = pipe.convert(trace=trace, count_ops=True)
            model(_batches(1, seed=5)[0])
            outs[index_bits] = trace.total_ops().rle_index_bits
        assert outs[2] != outs[4]

    def test_rejects_bad_tracked(self):
        with pytest.raises(ValueError):
            PtqConfig(tracked="both")


class TestDbsBiasCorrection:
    def test_truncation_bias_removed(self):
        """With DBS type-3 forced, outputs must stay centred on FP outputs
        (the offline truncation-bias fold)."""
        rng = np.random.default_rng(7)
        net = TinyNet()
        batches = [rng.normal(0, 1, (8, 16)) for _ in range(3)]
        fp = np.concatenate([net(b) for b in batches])
        pipe = PtqPipeline(net, PtqConfig(scheme="aqs", z=50.0))  # force wide
        pipe.calibrate(batches)
        qnet = pipe.convert()
        q = np.concatenate([qnet(b) for b in batches])
        bias = float((q - fp).mean())
        spread = float(np.abs(fp).mean())
        assert abs(bias) < 0.05 * spread
