"""Tests for the compressed wire format and its size accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice.formats import (
    compress_activation_slices,
    compress_weight_slices,
    decompress_activation_ho,
    decompress_weight_ho,
    dense_storage_bits,
)
from repro.bitslice.slicing import slice_sbr, slice_unsigned


def _weight_stack(rng, m=32, k=24, scale=4.0):
    w = np.clip(np.rint(rng.standard_t(4, (m, k)) * scale), -64,
                63).astype(int)
    return slice_sbr(w, 7)


def _act_stack(rng, k=24, n=20, zp=168, std=6.0):
    x = np.clip(np.rint(rng.normal(zp, std, (k, n))), 0, 255).astype(int)
    return slice_unsigned(x, 8)


class TestWeightFormat:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        stack = _weight_stack(rng)
        compressed = compress_weight_slices(stack)
        assert np.array_equal(decompress_weight_ho(compressed), stack.ho)

    def test_payload_count_matches_mask(self):
        rng = np.random.default_rng(1)
        compressed = compress_weight_slices(_weight_stack(rng))
        assert (compressed.ho_payloads.shape[0]
                == compressed.n_payload_vectors)

    def test_sparser_weights_smaller(self):
        rng = np.random.default_rng(2)
        dense = compress_weight_slices(_weight_stack(rng, scale=30.0))
        sparse = compress_weight_slices(_weight_stack(rng, scale=2.0))
        assert sparse.total_bits < dense.total_bits

    def test_lo_planes_travel_dense(self):
        rng = np.random.default_rng(3)
        stack = _weight_stack(rng)
        compressed = compress_weight_slices(stack)
        assert compressed.lo_bits_total == stack.lo.size * 4

    def test_ragged_m(self):
        rng = np.random.default_rng(4)
        stack = _weight_stack(rng, m=30)  # not a multiple of v=4
        compressed = compress_weight_slices(stack)
        assert np.array_equal(decompress_weight_ho(compressed), stack.ho)


class TestActivationFormat:
    def test_round_trip(self):
        rng = np.random.default_rng(5)
        stack = _act_stack(rng)
        compressed = compress_activation_slices(stack, r=10)
        assert np.array_equal(decompress_activation_ho(compressed), stack.ho)

    def test_round_trip_ragged_n(self):
        rng = np.random.default_rng(6)
        stack = _act_stack(rng, n=18)
        compressed = compress_activation_slices(stack, r=10)
        assert np.array_equal(decompress_activation_ho(compressed), stack.ho)

    def test_wrong_r_keeps_everything(self):
        """Compressing against the wrong r finds nothing to drop."""
        rng = np.random.default_rng(7)
        stack = _act_stack(rng, std=3.0)
        right = compress_activation_slices(stack, r=10)
        wrong = compress_activation_slices(stack, r=3)
        assert wrong.n_payload_vectors >= right.n_payload_vectors

    def test_compression_ratio_below_one_when_sparse(self):
        rng = np.random.default_rng(8)
        stack = _act_stack(rng, std=3.0)
        compressed = compress_activation_slices(stack, r=10)
        dense = dense_storage_bits(stack.shape, 8)
        assert compressed.compression_ratio(dense) < 1.0

    def test_ema_claim_regime(self):
        """At OPT-like sparsity the wire format saves ~30-60% of bytes,
        the regime behind the paper's 46.8-60.5% EMA reduction."""
        rng = np.random.default_rng(9)
        stack = _act_stack(rng, k=512, n=128, std=4.0)
        compressed = compress_activation_slices(stack, r=10)
        ratio = compressed.compression_ratio(
            dense_storage_bits(stack.shape, 8))
        assert 0.4 < ratio < 0.75


class TestDenseStorage:
    def test_bits(self):
        assert dense_storage_bits((4, 8), 7) == 224


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.integers(5, 40), st.integers(5, 40))
def test_property_activation_codec_round_trip(seed, k, n):
    rng = np.random.default_rng(seed)
    zp = int(rng.integers(0, 255))
    x = np.clip(np.rint(rng.normal(zp, rng.uniform(1, 40), (k, n))), 0,
                255).astype(int)
    stack = slice_unsigned(x, 8)
    compressed = compress_activation_slices(stack, r=zp >> 4)
    assert np.array_equal(decompress_activation_ho(compressed), stack.ho)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.integers(5, 40), st.integers(5, 40))
def test_property_weight_codec_round_trip(seed, m, k):
    rng = np.random.default_rng(seed)
    w = np.clip(np.rint(rng.standard_t(3, (m, k)) * 6), -64, 63).astype(int)
    stack = slice_sbr(w, 7)
    compressed = compress_weight_slices(stack)
    assert np.array_equal(decompress_weight_ho(compressed), stack.ho)
