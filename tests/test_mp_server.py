"""ModelServer(backend="process"): routing, exactness, crash recovery.

The crash tests use a module-level model whose forward hard-exits the
process on a magic batch row count — a deterministic stand-in for a
segfault/OOM-kill that always strikes *mid-batch*, inside the worker's
engine execution.  Everything that crosses the spawn boundary (the model
factory) lives at module level so the child can re-import it.
"""

import os

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import build_proxy, proxy_batches
from repro.serve import (BackendCapabilityError, BatchPolicy, ModelServer,
                         PlanStore, WorkerCrashError)
from repro.nn.layers import Linear
from repro.nn.module import Module

MODEL = "bert_base"
DIM = 8
MAGIC_ROWS = 7  # a forward seeing this many rows kills its process


class _CrashyMLP(Module):
    """One quantizable Linear plus a deterministic kill switch."""

    def __init__(self) -> None:
        super().__init__()
        self.fc = Linear(DIM, DIM, rng=np.random.default_rng(11))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[0] == MAGIC_ROWS:
            os._exit(3)
        return self.fc(x)


def _build_crashy():
    return _CrashyMLP()


def _crashy_batches(rows, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, DIM)) for _ in range(n)]


def _prepared_session(seed=0):
    model, _ = build_proxy(MODEL, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + 1))
    return session


def _crashy_session():
    session = PanaceaSession(_build_crashy(), PtqConfig.for_scheme("aqs"))
    session.calibrate(_crashy_batches(3, 2, seed=1))
    return session


def test_process_backend_bit_exact_vs_serial():
    reference_session = _prepared_session(seed=0)
    stream = proxy_batches(MODEL, 2, 5, seed=30)
    expected = [reference_session.run(x) for x in stream]
    policy = BatchPolicy(max_batch=3, max_delay_s=0.0)
    with ModelServer(policy, workers=2, backend="process") as server:
        server.deploy_proxy("bert", MODEL, scheme="aqs", seed=0)
        tickets = server.submit_many("bert", stream)
        server.flush("bert")
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)
        stats = server.stats("bert")
        assert stats["session"]["n_requests"] == len(stream)
        assert stats["scheduler"]["n_batches"] >= 2  # coalescing happened
        metrics = server.metrics()
        assert metrics.process_workers["backend"] == "process"
        assert metrics.process_workers["n_crashes"] == 0
        assert "process_workers" in metrics.summary()


def test_load_from_store_serves_in_workers(tmp_path):
    session = _prepared_session(seed=3)
    path = tmp_path / "bert.plans.npz"
    PlanStore(path).save(session, model_name=MODEL, seed=3)
    stream = proxy_batches(MODEL, 2, 3, seed=31)
    expected = [_prepared_session(seed=3).run(x) for x in stream]
    with ModelServer(workers=1, backend="process") as server:
        server.load("bert", path)
        outputs = [f.result() for f
                   in server.submit_many_async("bert", stream)]
    for got, expect in zip(outputs, expected):
        assert np.array_equal(got, expect)


def test_mid_batch_crash_fails_only_that_batch_then_recovers():
    policy = BatchPolicy(max_batch=1, max_delay_s=0.0)
    reference = _crashy_session()
    good = _crashy_batches(3, 4, seed=5)
    expected = [reference.run(x) for x in good]
    poison = _crashy_batches(MAGIC_ROWS, 1, seed=6)[0]
    with ModelServer(policy, workers=2, backend="process") as server:
        server.register("crashy", _crashy_session(),
                        model_factory=_build_crashy)
        before = [server.submit_async("crashy", x) for x in good[:2]]
        for future, expect in zip(before, expected[:2]):
            assert np.array_equal(future.result(timeout=60), expect)

        # The poison batch kills its worker mid-forward: only this batch
        # fails, and it fails typed.
        with pytest.raises(WorkerCrashError):
            server.submit_async("crashy", poison).result(timeout=60)

        # The pool respawned the worker and replayed the deployment spec:
        # requests after the crash serve bit-exact on a full complement.
        after = [server.submit_async("crashy", x) for x in good[2:]]
        for future, expect in zip(after, expected[2:]):
            assert np.array_equal(future.result(timeout=60), expect)

        metrics = server.metrics()
        assert metrics.n_failed == 1
        assert metrics.n_requests == 4  # the four good ones; poison failed
        assert metrics.process_workers["n_crashes"] >= 1
        assert metrics.process_workers["n_respawns"] >= 1
        pool = server.process_pool
        assert len([p for p in pool.pids if p is not None]) == 2


def test_unregister_unloads_from_workers():
    with ModelServer(workers=1, backend="process") as server:
        server.deploy_proxy("bert", MODEL, scheme="aqs", seed=0)
        assert "bert" in server
        server.unregister("bert")
        assert "bert" not in server
        # The workers dropped the deployment too: serving it now fails in
        # the child with an unknown-deployment error, not stale state.
        with pytest.raises(Exception, match="bert"):
            server.process_pool.serve(
                "bert", [proxy_batches(MODEL, 1, 1, seed=0)[0]])


def test_process_backend_shards_deployments():
    """shards=N on backend='process' deploys process-per-stage, bit-exact."""
    reference_session = _prepared_session(seed=0)
    stream = proxy_batches(MODEL, 2, 4, seed=33)
    expected = [reference_session.run(x) for x in stream]
    with ModelServer(workers=2, backend="process") as server:
        entry = server.register("bert", _prepared_session(seed=0), shards=2,
                                model_name=MODEL)
        assert entry.sharded and not entry.remote
        tickets = server.submit_many("bert", stream)
        server.flush("bert")
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)
        pipe = server.stats("bert")["pipeline"]
        assert pipe["n_stages"] == 2
        # Stage activations crossed real process boundaries over the
        # per-edge rings (no pipe fallback for these small batches).
        edges = pipe["stage_edges"]
        assert len(edges) == 2
        assert all(e["n_frames"] >= len(stream) for e in edges)
        assert {e["worker"] for e in edges} == {0, 1}
        server.unregister("bert")
        assert server.process_pool.stage_edge_stats() == {}


def test_process_backend_rejects_auto_calibrate_sessions():
    model, _ = build_proxy(MODEL, seed=0)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"),
                             auto_calibrate=True)
    with ModelServer(workers=1, backend="process") as server:
        # The one typed refusal for capability gaps — still a ValueError
        # subclass for historical handlers.
        with pytest.raises(BackendCapabilityError, match="prepared"):
            server.register("bert", session, model_name=MODEL)


def test_process_backend_needs_model_reference():
    with ModelServer(workers=1, backend="process") as server:
        with pytest.raises(ValueError, match="model_name"):
            server.register("anon", _crashy_session())


def test_process_backend_needs_workers():
    with pytest.raises(ValueError, match="workers"):
        ModelServer(backend="process")
    with pytest.raises(ValueError, match="backend"):
        ModelServer(workers=1, backend="gpu")


def test_sharded_session_on_process_pool_needs_store(tmp_path):
    """A cross-process pool is accepted — but only with a plan store."""
    from repro.serve import ProcessWorkerPool
    from repro.shard import ShardedSession, auto_partition

    session = _prepared_session(seed=0)
    plan = auto_partition(session, 2)
    with ProcessWorkerPool(1, blas_threads=1) as pool:
        # The refusal is the typed capability error and stays catchable as
        # the historical TypeError.
        with pytest.raises(BackendCapabilityError, match="store_path"):
            ShardedSession(session, plan, pool=pool)
        with pytest.raises(TypeError):
            ShardedSession(session, plan, pool=pool)
        path = tmp_path / "bert.plans.npz"
        PlanStore(path).save(session, model_name=MODEL, seed=0)
        sharded = ShardedSession(session, plan, pool=pool, store_path=path)
        x = proxy_batches(MODEL, 2, 1, seed=40)[0]
        assert np.array_equal(sharded.run(x), _prepared_session(seed=0).run(x))
        sharded.close()


def test_sharded_session_workers_override():
    """workers= sizes the owned stage pool; rejected with a shared pool."""
    from repro.serve import WorkerPool
    from repro.shard import ShardedSession, auto_partition

    session = _prepared_session(seed=0)
    plan = auto_partition(session, 2)
    sharded = ShardedSession(session, plan, workers=1)
    assert sharded.pool.workers == 1
    x = proxy_batches(MODEL, 2, 1, seed=41)[0]
    assert np.array_equal(sharded.run(x), _prepared_session(seed=0).run(x))
    sharded.close()
    with pytest.raises(ValueError, match="workers"):
        ShardedSession(session, plan, workers=0)
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="shared pool"):
            ShardedSession(session, plan, pool=pool, workers=3)


def test_server_stage_workers_threads_through():
    session = _prepared_session(seed=0)
    with ModelServer() as server:
        entry = server.register("bert", session, shards=2, stage_workers=1)
        assert entry.session.pool.workers == 1
        x = proxy_batches(MODEL, 2, 1, seed=42)[0]
        ticket = server.submit("bert", x)
        server.flush("bert")
        assert np.array_equal(ticket.result(),
                              _prepared_session(seed=0).run(x))
