"""Tests for the post-processing unit (paper Fig. 11 PPU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppu import (
    PWL_FUNCTIONS,
    PiecewiseLinear,
    PostProcessingUnit,
    PpuConfig,
)
from repro.nn import functional as F
from repro.quant.uniform import asymmetric_params


class TestPiecewiseLinear:
    def test_exact_on_linear_function(self):
        pwl = PiecewiseLinear.fit(lambda x: 3 * x + 1, -4, 4, 4)
        probe = np.linspace(-4, 4, 100)
        assert np.allclose(pwl(probe), 3 * probe + 1)

    def test_gelu_error_shrinks_with_segments(self):
        coarse = PiecewiseLinear.fit(F.gelu, -8, 8, 4)
        fine = PiecewiseLinear.fit(F.gelu, -8, 8, 32)
        assert fine.max_error(F.gelu) < coarse.max_error(F.gelu)

    def test_gelu_32_segments_accurate(self):
        """A hardware-sized 32-entry table approximates GELU to ~2e-2."""
        pwl = PiecewiseLinear.fit(F.gelu, -8, 8, 32)
        assert pwl.max_error(F.gelu) < 0.03

    def test_clamps_out_of_range(self):
        pwl = PiecewiseLinear.fit(F.relu, -2, 2, 8)
        assert pwl(np.array([100.0]))[0] == pytest.approx(100.0)

    def test_breakpoint_interpolation_continuous(self):
        pwl = PiecewiseLinear.fit(F.silu, -6, 6, 12)
        eps = 1e-9
        for b in pwl.breakpoints[1:-1]:
            left = pwl(np.array([b - eps]))[0]
            right = pwl(np.array([b + eps]))[0]
            assert left == pytest.approx(right, abs=1e-6)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            PiecewiseLinear.fit(F.relu, 2, 2, 4)
        with pytest.raises(ValueError):
            PiecewiseLinear.fit(F.relu, -1, 1, 0)


class TestPpuConfig:
    def test_rejects_unknown_nonlinearity(self):
        with pytest.raises(ValueError):
            PpuConfig(nonlinearity="mish")

    def test_known_functions_cover_benchmarks(self):
        assert {"relu", "gelu", "silu"} <= set(PWL_FUNCTIONS)


class TestPostProcessingUnit:
    def _run(self, nonlinearity="gelu", lo_bits=4):
        rng = np.random.default_rng(0)
        acc = rng.integers(-20000, 20000, (16, 8))
        acc_scale = 1e-4
        reals = PWL_FUNCTIONS[nonlinearity](acc * acc_scale)
        params = asymmetric_params(reals, 8)
        zp = int(params.zero_point)
        ppu = PostProcessingUnit(PpuConfig(nonlinearity=nonlinearity,
                                           lo_bits=lo_bits,
                                           pwl_segments=32))
        return ppu.process(acc, acc_scale, params, zp), reals, params

    def test_codes_in_range(self):
        out, _, _ = self._run()
        assert out.codes.min() >= 0 and out.codes.max() <= 255

    def test_nonlinearity_approximation_close(self):
        out, reals, params = self._run("gelu")
        # PWL error + quantization step bound the deviation
        err = np.abs(out.float_values - reals)
        assert err.max() < 0.05 + float(params.scale)

    def test_identity_passthrough(self):
        out, reals, _ = self._run("identity")
        assert np.allclose(out.float_values, reals)

    def test_compressed_output_round_trips(self):
        """The wire format written to OMEM must decode to the HO plane the
        next layer expects."""
        from repro.bitslice.formats import decompress_activation_ho
        from repro.bitslice.slicing import slice_unsigned

        out, _, _ = self._run("relu")
        expected_ho = slice_unsigned(out.codes, 8).ho
        assert np.array_equal(decompress_activation_ho(out.compressed),
                              expected_ho)

    def test_dbs_slicing_respected(self):
        out, _, _ = self._run("gelu", lo_bits=5)
        # HO plane of the l=5 split has 3-bit values
        from repro.bitslice.formats import decompress_activation_ho

        ho = decompress_activation_ho(out.compressed)
        assert ho.max() <= 7

    def test_compression_beats_dense_for_sparse_output(self):
        rng = np.random.default_rng(1)
        acc = np.abs(rng.standard_t(3, (64, 64)) * 3000).astype(np.int64)
        reals = F.relu(acc * 1e-4)
        params = asymmetric_params(reals, 8)
        ppu = PostProcessingUnit(PpuConfig(nonlinearity="relu"))
        out = ppu.process(acc, 1e-4, params, int(params.zero_point))
        dense_bits = out.codes.size * 8
        assert out.compressed.total_bits < dense_bits


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(["relu", "gelu", "silu"]), st.integers(8, 64))
def test_property_pwl_bounded_error(fn_name, segments):
    fn = PWL_FUNCTIONS[fn_name]
    pwl = PiecewiseLinear.fit(fn, -8, 8, segments)
    # smooth functions interpolate quadratically in the segment width;
    # ReLU's kink caps at linear order when no breakpoint lands on it
    width = 16.0 / segments
    assert pwl.max_error(fn) <= max(0.5 * width ** 2, 0.6 * width) + 1e-9
