"""Property-style tests of hardware-model scaling laws.

These pin down the *shape* of the performance model — the monotonicities
and proportionalities every figure depends on — so constant tweaks can't
silently invert a conclusion.
"""

import numpy as np
import pytest

from repro.hw import HwConfig, MemoryConfig, PanaceaConfig, PanaceaModel
from repro.hw.panacea import compressed_layer_bytes
from repro.models.workloads import synthetic_profile


def _tops(rho_w, rho_x, m=512, k=512, n=512, seed=0, **arch_kw):
    hw = HwConfig(mem=MemoryConfig(dram_bits_per_cycle=4096))
    arch = PanaceaConfig(sample_steps=256, **arch_kw)
    prof = synthetic_profile(m, k, n, rho_w, rho_x, seed=seed)
    return PanaceaModel(hw, arch).simulate_model([prof], "t").tops


class TestThroughputShape:
    def test_monotone_in_activation_sparsity(self):
        series = [_tops(0.3, rho) for rho in (0.0, 0.4, 0.8, 0.99)]
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))

    def test_monotone_in_weight_sparsity(self):
        series = [_tops(rho, 0.8) for rho in (0.0, 0.4, 0.8)]
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))

    def test_saturates_at_static_bound_without_dtp(self):
        """Past full HO sparsity only the SWO-bound LOLO work remains, so
        throughput caps at (n_dwo+n_swo)/n_swo-independent static rate."""
        no_dtp = _tops(1.0, 1.0, dtp=False)
        almost = _tops(0.95, 0.95, dtp=False)
        assert no_dtp == pytest.approx(almost, rel=0.15)

    def test_dtp_lifts_the_saturation_ceiling(self):
        assert _tops(0.95, 0.95, dtp=True) > _tops(0.95, 0.95,
                                                   dtp=False) * 1.05

    def test_more_dwos_help_dense_workloads(self):
        dense_4 = _tops(0.0, 0.0, n_dwo=4, n_swo=8, dtp=False)
        dense_8 = _tops(0.0, 0.0, n_dwo=8, n_swo=4, dtp=False)
        assert dense_8 > dense_4


class TestCompressedBytesShape:
    def test_linear_in_n(self):
        a = compressed_layer_bytes(
            synthetic_profile(256, 256, 256, 0.5, 0.5, seed=1))[1]
        b = compressed_layer_bytes(
            synthetic_profile(256, 256, 512, 0.5, 0.5, seed=1))[1]
        assert b == pytest.approx(2 * a, rel=0.05)

    def test_weight_floor_is_dense_lo_plane(self):
        """Even at full HO sparsity the dense LO plane remains."""
        w_bytes, _ = compressed_layer_bytes(
            synthetic_profile(256, 256, 256, 1.0, 0.5, seed=2))
        assert w_bytes >= 256 * 256 * 0.5  # one 4-bit plane

    def test_rle_overhead_bounded(self):
        """Index overhead never exceeds the dense HO plane it replaces."""
        for rho in (0.1, 0.5, 0.9):
            prof = synthetic_profile(256, 256, 256, 0.0, rho, seed=3)
            _, x_bytes = compressed_layer_bytes(prof)
            dense = 256 * 256 * 1.0  # two 4-bit planes
            assert x_bytes <= dense * 1.1


class TestMemoryBoundTransition:
    def test_narrow_dram_makes_layers_dram_bound(self):
        from repro.hw.analysis import analyze

        prof = synthetic_profile(512, 512, 512, 0.5, 0.9, seed=4)
        narrow = HwConfig(mem=MemoryConfig(dram_bits_per_cycle=64))
        wide = HwConfig(mem=MemoryConfig(dram_bits_per_cycle=8192))
        p_narrow = PanaceaModel(narrow).simulate_model([prof], "t")
        p_wide = PanaceaModel(wide).simulate_model([prof], "t")
        assert analyze(p_narrow, narrow).dram_bound_fraction == 1.0
        assert analyze(p_wide, wide).dram_bound_fraction == 0.0
        assert p_wide.tops > p_narrow.tops

    def test_compression_helps_more_when_dram_bound(self):
        narrow = HwConfig(mem=MemoryConfig(dram_bits_per_cycle=64))
        dense_prof = synthetic_profile(512, 512, 512, 0.0, 0.0, seed=5)
        sparse_prof = synthetic_profile(512, 512, 512, 0.9, 0.9, seed=5)
        t_dense = PanaceaModel(narrow).simulate_model([dense_prof], "t").tops
        t_sparse = PanaceaModel(narrow).simulate_model([sparse_prof],
                                                       "t").tops
        # under a starved DRAM the gain comes from compressed EMA
        assert t_sparse / t_dense > 1.3
