"""Randomized exactness suite: fast == sliced == coalesced == concurrent.

Concurrency and fast-path collapsing are exactly where bit-exactness
guarantees silently rot, so this suite fuzzes the whole grid with seeded
randomness instead of hand-picked shapes:

* **kernel level** — random GEMM shapes across the ``lo_bits`` × ``w_bits``
  grid (AQS) and ``w_bits`` × ``tracked`` grid (Sibia): the fast path must
  equal the sliced reference, a fused execute must equal per-block
  executes (the coalescing identity), and threads sharing one plan must
  reproduce serial outputs bit for bit;
* **session level** — random tiny models for all four registered engines ×
  per-tensor/per-channel weights: solo ``run``, the sliced exec path,
  ``run_coalesced`` and a concurrent worker-pool server must all emit
  identical bits;
* **shard level** — the same engine × granularity × exec-path grid run
  through two-stage :class:`~repro.shard.session.ShardedSession` pipelines
  (solo and pipelined) and a sharded ``ModelServer`` deployment: stage
  scheduling must never change a bit, fp32 included (each pipelined
  request keeps its own engine batch, so no float reassociation applies).

The base seed comes from ``REPRO_CONFORMANCE_SEED`` (CI rotates it through
a matrix) so every run fuzzes a fresh corner while staying reproducible:
a failure report names the seed that found it.
"""

import os
import threading

import numpy as np
import pytest

from repro.core.aqs_gemm import AqsGemmConfig, execute_aqs, prepare_aqs
from repro.core.pipeline import PtqConfig
from repro.engine import (
    EngineConfig,
    PanaceaSession,
    available_engines,
    get_engine,
)
from repro.gemm.sibia_gemm import execute_sibia, prepare_sibia
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import BatchPolicy, Gateway, ModelServer

BASE_SEED = int(os.environ.get("REPRO_CONFORMANCE_SEED", "0"))

ENGINES = ("fp32", "int8_dense", "sibia", "aqs")
GRANULARITIES = ("per_tensor", "per_channel")
AQS_GRID = [(w_bits, lo_bits) for w_bits in (4, 7, 10)
            for lo_bits in (4, 5, 6)]
SIBIA_GRID = [(w_bits, tracked) for w_bits in (4, 7, 10)
              for tracked in ("auto", "weight", "activation")]


def _rng(*stream) -> np.random.Generator:
    """Independent deterministic stream per test case, offset by BASE_SEED."""
    return np.random.default_rng([BASE_SEED, *stream])


def _random_shape(rng, lo=4, hi=48):
    m, k, n = (int(rng.integers(lo, hi)) for _ in range(3))
    return m, k, n


def _random_aqs_operands(rng, m, k, n, w_bits, x_bits=8):
    w_max = (1 << (w_bits - 1)) - 1
    w = rng.integers(-w_max - 1, w_max + 1, (m, k))
    x = rng.integers(0, 1 << x_bits, (k, n))
    zp = int(rng.integers(1, 1 << x_bits))
    return w, x, zp


def _random_sbr_operands(rng, m, k, n, w_bits, x_bits=7):
    w_hi = (1 << (w_bits - 1)) - 1
    x_hi = (1 << (x_bits - 1)) - 1
    return (rng.integers(-w_hi - 1, w_hi + 1, (m, k)),
            rng.integers(-x_hi - 1, x_hi + 1, (k, n)))


def _assert_results_equal(a, b, label):
    assert np.array_equal(a.acc, b.acc), f"{label}: acc differs"
    assert a.ops.mul4 == b.ops.mul4, f"{label}: mul4 ledger differs"
    assert a.ops.ema_nibbles == b.ops.ema_nibbles, f"{label}: ema differs"


class TestKernelFuzzAqs:
    @pytest.mark.parametrize("w_bits,lo_bits", AQS_GRID)
    def test_fast_equals_sliced_random_shapes(self, w_bits, lo_bits):
        rng = _rng(1, w_bits, lo_bits)
        for case in range(3):
            m, k, n = _random_shape(rng)
            w, x, zp = _random_aqs_operands(rng, m, k, n, w_bits)
            fast = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
                w_bits=w_bits, lo_bits=lo_bits, exec_path="fast")), x)
            sliced = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
                w_bits=w_bits, lo_bits=lo_bits, exec_path="sliced")), x)
            _assert_results_equal(
                fast, sliced,
                f"aqs w_bits={w_bits} lo_bits={lo_bits} case={case} "
                f"shape=({m},{k},{n}) seed={BASE_SEED}")

    @pytest.mark.parametrize("w_bits,lo_bits", AQS_GRID)
    def test_fused_equals_per_block(self, w_bits, lo_bits):
        """The coalescing identity: one fused execute over concatenated
        columns == the column-wise concatenation of per-request executes."""
        rng = _rng(2, w_bits, lo_bits)
        m, k, _ = _random_shape(rng)
        w, _, zp = _random_aqs_operands(rng, m, k, 1, w_bits)
        plan = prepare_aqs(w, zp, AqsGemmConfig(w_bits=w_bits,
                                                lo_bits=lo_bits))
        blocks = [_random_aqs_operands(rng, m, k, int(rng.integers(1, 6)),
                                       w_bits)[1] for _ in range(4)]
        solo = [execute_aqs(plan, x) for x in blocks]
        fused = execute_aqs(plan, np.concatenate(blocks, axis=1))
        assert np.array_equal(
            np.concatenate([r.acc for r in solo], axis=1), fused.acc), (
            f"aqs fused != per-block (w_bits={w_bits}, lo_bits={lo_bits}, "
            f"seed={BASE_SEED})")


class TestKernelFuzzSibia:
    @pytest.mark.parametrize("w_bits,tracked", SIBIA_GRID)
    def test_fast_equals_sliced_random_shapes(self, w_bits, tracked):
        rng = _rng(3, w_bits, hash(tracked) & 0xFFFF)
        for case in range(3):
            m, k, n = _random_shape(rng)
            w, x = _random_sbr_operands(rng, m, k, n, w_bits)
            fast = execute_sibia(prepare_sibia(
                w, w_bits=w_bits, tracked=tracked, exec_path="fast"), x)
            sliced = execute_sibia(prepare_sibia(
                w, w_bits=w_bits, tracked=tracked, exec_path="sliced"), x)
            _assert_results_equal(
                fast, sliced,
                f"sibia w_bits={w_bits} tracked={tracked} case={case} "
                f"shape=({m},{k},{n}) seed={BASE_SEED}")


class TestKernelConcurrentSharedPlan:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_threads_sharing_one_plan_match_serial(self, engine_name):
        """Plans are read-only at execute time: eight threads hammering one
        plan must reproduce the serial results bit for bit."""
        rng = _rng(4, hash(engine_name) & 0xFFFF)
        engine = get_engine(engine_name)
        m, k, _ = _random_shape(rng, lo=8, hi=40)
        x_bits = 7 if engine_name == "sibia" else 8
        if engine_name == "aqs":
            w, _, zp = _random_aqs_operands(rng, m, k, 1, 7)
        elif engine_name == "sibia":
            w, _ = _random_sbr_operands(rng, m, k, 1, 7)
            zp = 0
        elif engine_name == "int8_dense":
            w = rng.integers(-64, 64, (m, k))
            zp = int(rng.integers(1, 256))
        else:
            w = rng.normal(0, 1, (m, k))
            zp = 0
        plan = engine.prepare(w, zp, EngineConfig(x_bits=x_bits))

        def _x():
            n = int(rng.integers(1, 8))
            if engine_name == "aqs":
                return rng.integers(0, 256, (k, n))
            if engine_name == "sibia":
                return rng.integers(-64, 64, (k, n))
            if engine_name == "int8_dense":
                return rng.integers(0, 256, (k, n))
            return rng.normal(0, 1, (k, n))

        xs = [_x() for _ in range(8)]
        serial = [engine.execute(plan, x) for x in xs]
        concurrent = [None] * len(xs)
        errors = []

        def worker(i):
            try:
                concurrent[i] = engine.execute(plan, xs[i])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(xs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        for i, (a, b) in enumerate(zip(serial, concurrent)):
            _assert_results_equal(
                a, b, f"{engine_name} concurrent req {i} seed={BASE_SEED}")


class _FuzzNet(Module):
    """Two-layer MLP with randomized widths (the session-fuzz substrate).

    Implements the shard protocol so the sharded-execution leg fuzzes the
    same models: two segments whose composition is exactly ``forward``.
    """

    def __init__(self, rng, in_features, hidden, out_features):
        super().__init__()
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.fc2 = Linear(hidden, out_features, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))

    def pipeline_segments(self):
        return [
            ("fc1", ("fc1",), lambda x: np.maximum(self.fc1(x), 0.0)),
            ("fc2", ("fc2",), lambda x: self.fc2(x)),
        ]


def _session_case(engine_name, granularity, exec_path, dims, model_seed):
    """A calibrated session over a randomized model, fully deterministic."""
    in_features, hidden, out_features = dims
    model = _FuzzNet(np.random.default_rng(model_seed), in_features, hidden,
                     out_features)
    config = PtqConfig.for_scheme(engine_name, exec_path=exec_path,
                                  w_granularity=granularity)
    calib_rng = np.random.default_rng(model_seed + 1)
    calibration = [calib_rng.normal(0, 1, (4, in_features))
                   for _ in range(3)]
    return PanaceaSession(model, config, calibration=calibration)


def _assert_outputs_match(got, expect, engine_name, label):
    """Bit-exact for the quantized engines; last-ulp for the float one.

    The quantized engines accumulate in int64, so fusing requests cannot
    change a bit — the contract this suite locks down.  The fp32 reference
    engine is plain BLAS: changing the fused row count may reassociate its
    float sums, so it is held to an allclose at machine precision instead
    (see the README determinism note).
    """
    if engine_name == "fp32":
        assert np.allclose(got, expect, rtol=1e-12, atol=1e-12), label
    else:
        assert np.array_equal(got, expect), label


class TestSessionFuzz:
    """All four engines × both granularities: every serving path agrees."""

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_solo_sliced_coalesced_concurrent_identical(
            self, engine_name, granularity):
        rng = _rng(5, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 40)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (int(rng.integers(1, 5)), dims[0]))
                    for _ in range(5)]
        label = (f"{engine_name}/{granularity} dims={dims} "
                 f"seed={BASE_SEED}")

        solo = _session_case(engine_name, granularity, "fast", dims,
                             model_seed)
        expected = [solo.run(x) for x in requests]

        # 1. sliced reference path (identical solo shapes: always exact)
        sliced = _session_case(engine_name, granularity, "sliced", dims,
                               model_seed)
        for x, expect in zip(requests, expected):
            assert np.array_equal(sliced.run(x), expect), \
                f"{label}: sliced != fast"

        # 2. coalesced engine batch
        coal = _session_case(engine_name, granularity, "fast", dims,
                             model_seed)
        for got, expect in zip(coal.run_coalesced(requests), expected):
            _assert_outputs_match(got, expect, engine_name,
                                  f"{label}: coalesced != solo")

        # 3. concurrent worker-pool server (async submit, shared pool)
        concurrent = _session_case(engine_name, granularity, "fast", dims,
                                   model_seed)
        with ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0),
                         workers=2) as server:
            server.register("fuzz", concurrent)
            futures = [server.submit_async("fuzz", x) for x in requests]
            for future, expect in zip(futures, expected):
                _assert_outputs_match(future.result(), expect, engine_name,
                                      f"{label}: concurrent != serial")

    def test_grid_covers_every_registered_engine(self):
        """The fuzz grid must not silently miss a newly registered engine."""
        assert set(available_engines()) == set(ENGINES)


class TestShardFuzz:
    """Sharded execution never changes a bit: every engine x granularity
    x exec path, solo-through-stages and pipelined-through-the-pool both
    equal ``PanaceaSession.run``.

    Stronger than the coalesced leg: a pipelined request keeps its own
    engine batch (no column fusion), so even the fp32 reference engine is
    held to exact equality — same ops, same shapes, same order, just
    scheduled across threads.
    """

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_sharded_equals_run_both_exec_paths(self, engine_name,
                                                granularity):
        from repro.shard import ShardedSession

        rng = _rng(7, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 40)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (int(rng.integers(1, 5)), dims[0]))
                    for _ in range(5)]
        label = (f"{engine_name}/{granularity} dims={dims} "
                 f"seed={BASE_SEED}")

        for exec_path in ("fast", "sliced"):
            reference = _session_case(engine_name, granularity, exec_path,
                                      dims, model_seed)
            expected = [reference.run(x) for x in requests]
            session = _session_case(engine_name, granularity, exec_path,
                                    dims, model_seed)
            with ShardedSession.partition(session, 2, depth=3) as sharded:
                solo = [sharded.run(x) for x in requests]
                piped = sharded.run_pipelined(requests)
            for got, expect in zip(solo, expected):
                assert np.array_equal(got, expect), \
                    f"{label}/{exec_path}: sharded run != run"
            for got, expect in zip(piped, expected):
                assert np.array_equal(got, expect), \
                    f"{label}/{exec_path}: pipelined != run"

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_sharded_serving_matches_unsharded_server(self, engine_name):
        """A sharded deployment behind the ModelServer answers byte-for-
        byte what an unsharded deployment answers."""
        rng = _rng(8, hash(engine_name) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (2, dims[0])) for _ in range(4)]
        plain = _session_case(engine_name, "per_tensor", "fast", dims,
                              model_seed)
        sharded = _session_case(engine_name, "per_tensor", "fast", dims,
                                model_seed)
        with ModelServer(BatchPolicy(max_batch=2,
                                     max_delay_s=0.0)) as server:
            server.register("plain", plain)
            server.register("sharded", sharded, shards=2)
            a = [t.result() for t in server.submit_many("plain", requests)]
            b = [t.result() for t in server.submit_many("sharded",
                                                        requests)]
        for got, expect in zip(b, a):
            assert np.array_equal(got, expect), \
                f"{engine_name}: sharded deployment differs " \
                f"(seed={BASE_SEED})"


def _build_fuzz_net(model_seed, dims):
    """Module-level factory so spawn can rebuild the model in a worker.

    The process backend ships this (via :func:`functools.partial`, which
    pickles by reference) to every worker; the seeded rng makes the child's
    float model identical to the parent's down to the last weight bit.
    """
    return _FuzzNet(np.random.default_rng(model_seed), dims[0], dims[1],
                    dims[2])


class TestProcessBackendFuzz:
    """Process-backed serving never changes a bit: all four engines x both
    granularities x both exec paths, served through spawned workers
    (session rehydrated from a plan-store snapshot, activations over
    shared memory) vs serial ``PanaceaSession.run``.

    ``max_batch=1`` keeps every request its own engine batch, so even the
    fp32 reference engine is held to **strict** equality — same ops, same
    shapes, same order, just executed in another process.
    """

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_process_serving_equals_serial_run(self, engine_name,
                                               granularity):
        import functools

        rng = _rng(9, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (int(rng.integers(1, 5)), dims[0]))
                    for _ in range(5)]
        label = (f"{engine_name}/{granularity} dims={dims} "
                 f"seed={BASE_SEED}")
        factory = functools.partial(_build_fuzz_net, model_seed, dims)

        with ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0),
                         workers=1, backend="process") as server:
            for exec_path in ("fast", "sliced"):
                reference = _session_case(engine_name, granularity,
                                          exec_path, dims, model_seed)
                expected = [reference.run(x) for x in requests]
                session = _session_case(engine_name, granularity, exec_path,
                                        dims, model_seed)
                server.register(exec_path, session, model_factory=factory)
                futures = [server.submit_async(exec_path, x)
                           for x in requests]
                for future, expect in zip(futures, expected):
                    assert np.array_equal(future.result(timeout=120),
                                          expect), \
                        f"{label}/{exec_path}: process backend != serial"
                stats = server.stats(exec_path)
                assert stats["session"]["n_requests"] == len(requests)


class TestShardedProcessFuzz:
    """Process-per-stage sharded pipelines never change a bit: all four
    engines x both granularities x both exec paths, stages rehydrated from
    a plan store in spawned workers (activations over per-edge shm rings,
    traces folded back by state), vs serial ``PanaceaSession.run``.

    Strict equality even for fp32: each request keeps its own engine batch
    through the pipeline — stages change *where* work runs, never what.
    """

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_process_stages_equal_serial_run(self, engine_name, granularity,
                                             tmp_path):
        import functools

        from repro.serve import PlanStore, ProcessWorkerPool
        from repro.shard import ShardedSession

        rng = _rng(10, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (int(rng.integers(1, 5)), dims[0]))
                    for _ in range(5)]
        label = (f"{engine_name}/{granularity} dims={dims} "
                 f"seed={BASE_SEED}")
        factory = functools.partial(_build_fuzz_net, model_seed, dims)

        with ProcessWorkerPool(2, blas_threads=1) as pool:
            for exec_path in ("fast", "sliced"):
                reference = _session_case(engine_name, granularity,
                                          exec_path, dims, model_seed)
                expected = [reference.run(x) for x in requests]
                session = _session_case(engine_name, granularity, exec_path,
                                        dims, model_seed)
                path = tmp_path / f"{engine_name}-{exec_path}.plans.npz"
                PlanStore(path).save(session)
                with ShardedSession.partition(
                        session, 2, pool=pool, depth=3, store_path=path,
                        model_factory=factory,
                        name=f"fuzz-{exec_path}") as sharded:
                    solo = [sharded.run(x) for x in requests]
                    piped = sharded.run_pipelined(requests)
                    edges = sharded.stage_stats()["stage_edges"]
                for got, expect in zip(solo, expected):
                    assert np.array_equal(got, expect), \
                        f"{label}/{exec_path}: sharded run != run"
                for got, expect in zip(piped, expected):
                    assert np.array_equal(got, expect), \
                        f"{label}/{exec_path}: process stages != run"
                # The pipelined leg really used the shm stage transport.
                assert sum(e["n_frames"] + e["n_pipe_fallback"]
                           for e in edges) >= len(requests)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_process_sharded_server_matches_serial(self, engine_name,
                                                   tmp_path):
        """ModelServer(backend='process', shards=2) answers byte-for-byte
        what serial execution answers."""
        import functools

        rng = _rng(11, hash(engine_name) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        requests = [rng.normal(0, 1, (2, dims[0])) for _ in range(4)]
        factory = functools.partial(_build_fuzz_net, model_seed, dims)
        reference = _session_case(engine_name, "per_tensor", "fast", dims,
                                  model_seed)
        expected = [reference.run(x) for x in requests]
        session = _session_case(engine_name, "per_tensor", "fast", dims,
                                model_seed)
        with ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0),
                         workers=2, backend="process") as server:
            server.register("fuzz", session, shards=2,
                            model_factory=factory)
            tickets = server.submit_many("fuzz", requests)
            server.flush("fuzz")
            for ticket, expect in zip(tickets, expected):
                assert np.array_equal(ticket.result(), expect), \
                    f"{engine_name}: process-sharded server differs " \
                    f"(seed={BASE_SEED})"


def _decode_lm_case(engine_name, granularity, exec_path, rng):
    """A calibrated causal-LM session with randomized shape, deterministic.

    Alternates GPT and Llama (GQA) blocks so both cache layouts fuzz.
    """
    from repro.nn import CausalLM

    n_heads = int(rng.choice([2, 4]))
    dim = n_heads * int(rng.integers(4, 10))
    vocab = int(rng.integers(48, 128))
    block = "llama" if int(rng.integers(2)) else "gpt"
    model = CausalLM(vocab, dim, int(rng.integers(1, 3)), n_heads,
                     int(rng.integers(16, 48)), block=block,
                     n_kv_heads=(n_heads // 2 if block == "llama" else None),
                     seed=int(rng.integers(0, 2 ** 31)))
    config = PtqConfig.for_scheme(engine_name, exec_path=exec_path,
                                  w_granularity=granularity)
    calibration = [rng.integers(0, vocab, (2, 12)) for _ in range(2)]
    return PanaceaSession(model, config, calibration=calibration), \
        vocab, block


class TestDecodeFuzz:
    """KV-cached step decode equals the one-shot forward: all four engines
    x both granularities x both exec paths over randomized causal LMs.

    The quantized engines are held to strict bit-equality — integer-valued
    float64 accumulation plus in-order einsum reductions make the cached
    path association-proof.  The fp32 reference runs plain BLAS Linears
    whose summation tree shifts with the fused sequence length, so it gets
    the documented allclose(1e-12) carve-out.
    """

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_step_decode_equals_one_shot(self, engine_name, granularity):
        from repro.engine import DecodeSession

        rng = _rng(12, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        for exec_path in ("fast", "sliced"):
            session, vocab, block = _decode_lm_case(
                engine_name, granularity, exec_path, rng)
            decoder = DecodeSession(session)
            prompt_len = int(rng.integers(2, 8))
            prompt = rng.integers(0, vocab, prompt_len)
            step_logits = [decoder.prefill(prompt)]
            tok = decoder.sample(step_logits[-1])
            for _ in range(4):
                step_logits.append(decoder.step(tok))
                tok = decoder.sample(step_logits[-1])
            label = (f"{engine_name}/{granularity}/{exec_path} "
                     f"block={block} seed={BASE_SEED}")
            for i, got in enumerate(step_logits):
                ids = np.asarray([decoder.tokens[:prompt_len + i]],
                                 dtype=np.int64)
                expect = session.run(ids)[0, -1]
                _assert_outputs_match(got, expect, engine_name,
                                      f"{label}: step {i} != one-shot")

    @pytest.mark.parametrize("engine_name",
                             ("int8_dense", "sibia", "aqs"))
    def test_batched_decode_equals_solo(self, engine_name):
        """Continuous-batched decode emits exactly the tokens each request
        would produce decoding alone.

        Quantized engines only: ragged rows change the fp32 reference's
        fused BLAS widths (the allclose carve-out), and a 1e-12 logit
        wobble could flip an argmax tie — token equality is only a
        contract where the logits are bit-exact.
        """
        from repro.engine import DecodeSession
        from repro.serve import DecodeBatcher, DecodePolicy

        rng = _rng(13, hash(engine_name) & 0xFFFF)
        session, vocab, block = _decode_lm_case(
            engine_name, "per_tensor", "fast", rng)
        prompts = [rng.integers(0, vocab, int(rng.integers(2, 9)))
                   for _ in range(6)]
        max_new = [int(rng.integers(2, 7)) for _ in prompts]

        solo = []
        for prompt, m in zip(prompts, max_new):
            ref_session, _, _ = _decode_lm_case(
                engine_name, "per_tensor", "fast",
                _rng(13, hash(engine_name) & 0xFFFF))
            solo.append(DecodeSession(ref_session).generate(prompt, m))

        batcher = DecodeBatcher(session,
                                DecodePolicy(max_batch=3,
                                             max_new_tokens=max(max_new)))
        tickets = [batcher.submit(p, max_new_tokens=m)
                   for p, m in zip(prompts, max_new)]
        batcher.drain()
        for i, (ticket, expect) in enumerate(zip(tickets, solo)):
            assert ticket.result().tolist() == expect, (
                f"{engine_name} block={block}: batched decode of request "
                f"{i} differs from solo (seed={BASE_SEED})")


class TestCacheConformance:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_cache_hits_are_bit_exact(self, engine_name):
        """A cached replay of a random stream equals the engine outputs."""
        rng = _rng(6, hash(engine_name) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        session = _session_case(engine_name, "per_tensor", "fast", dims,
                                int(rng.integers(0, 2 ** 31)))
        requests = [rng.normal(0, 1, (2, dims[0])) for _ in range(4)]
        with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                         cache_bytes=1 << 20) as server:
            server.register("m", session)
            cold = [t.result() for t in server.submit_many("m", requests)]
            warm = [t.result() for t in server.submit_many("m", requests)]
            for a, b in zip(cold, warm):
                assert np.array_equal(a, b), f"{engine_name}: cache hit " \
                    f"differs (seed={BASE_SEED})"
            assert server.entry("m").batcher.n_cache_hits == len(requests)


def _http_post(handle, path, payload, timeout=60):
    import http.client
    import json

    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestGatewayFuzz:
    """The HTTP front end adds nothing: networked responses equal serial
    runs bit for bit across all four engines × both granularities.

    Requests travel JSON-over-HTTP through admission control, the asyncio
    loop, the executor and the micro-batcher — with concurrent tenants
    racing — and must still reproduce ``session.run`` /
    ``DecodeSession.generate`` exactly (fp32 gets the documented
    allclose(1e-12) carve-out on the coalescing path).  Dropping a client
    mid-decode-stream must cancel only that request: the surviving
    stream's tokens stay exact and the admission ledger stays conserved.
    """

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_networked_infer_matches_serial(self, engine_name, granularity):
        import base64

        rng = _rng(14, hash(engine_name) & 0xFFFF,
                   hash(granularity) & 0xFFFF)
        dims = tuple(int(rng.integers(6, 32)) for _ in range(3))
        model_seed = int(rng.integers(0, 2 ** 31))
        session = _session_case(engine_name, granularity, "fast", dims,
                                model_seed)
        reference = _session_case(engine_name, granularity, "fast", dims,
                                  model_seed)
        requests = [rng.normal(0, 1, (int(rng.integers(1, 4)), dims[0]))
                    for _ in range(6)]
        expected = [reference.run(x) for x in requests]
        server = ModelServer(BatchPolicy(max_batch=3, max_delay_s=0.002))
        server.register("fuzz", session)
        results = [None] * len(requests)

        def tenant_worker(i):
            x = np.ascontiguousarray(requests[i])
            status, body = _http_post(handle, "/v1/infer/fuzz", {
                "input_b64": base64.b64encode(x.tobytes()).decode("ascii"),
                "dtype": str(x.dtype), "shape": list(x.shape),
                "tenant": f"tenant-{i % 3}"})
            assert status == 200, body
            results[i] = np.frombuffer(
                base64.b64decode(body["output_b64"]),
                dtype=np.dtype(body["dtype"])).reshape(body["shape"])

        with Gateway.launch(server) as handle:
            threads = [threading.Thread(target=tenant_worker, args=(i,))
                       for i in range(len(requests))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = handle.stats()["admission"]
            assert stats["conserved"]
            assert stats["completed"] == len(requests)
            assert len(stats["tenants"]) == 3
        server.close()
        for i, (got, expect) in enumerate(zip(results, expected)):
            assert got is not None, f"request {i} never completed"
            _assert_outputs_match(
                got, expect, engine_name,
                f"{engine_name}/{granularity}: networked response {i} != "
                f"serial run (seed={BASE_SEED})")

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_networked_decode_matches_serial_with_cancellation(
            self, engine_name):
        """Greedy tokens over the wire equal DecodeSession.generate, while
        a second client's mid-stream disconnect cancels only itself."""
        import json
        import socket
        import time

        from repro.engine import DecodeSession

        granularity = GRANULARITIES[
            int(_rng(15, hash(engine_name) & 0xFFFF, 0).integers(2))]
        rng = _rng(15, hash(engine_name) & 0xFFFF, 1)
        ref_rng = _rng(15, hash(engine_name) & 0xFFFF, 1)
        session, vocab, block = _decode_lm_case(engine_name, granularity,
                                                "fast", rng)
        reference, _, _ = _decode_lm_case(engine_name, granularity,
                                          "fast", ref_rng)
        prompt = [int(t) for t in rng.integers(0, vocab, 5)]
        _ = ref_rng.integers(0, vocab, 5)   # keep the streams aligned
        expect = [int(t) for t in
                  DecodeSession(reference).generate(
                      np.asarray(prompt, dtype=np.int64), 5)]
        server = ModelServer()
        server.register("lm", session)
        with Gateway.launch(server) as handle:
            # The victim stream: read two chunks, then hang up.
            payload = json.dumps({"prompt": prompt, "max_new_tokens": 256,
                                  "stream": True}).encode()
            sock = socket.create_connection((handle.host, handle.port),
                                            timeout=60)
            sock.sendall(b"POST /v1/decode/lm HTTP/1.1\r\nHost: f\r\n"
                         + f"Content-Length: {len(payload)}"
                           "\r\n\r\n".encode() + payload)
            received = b""
            while received.count(b"\n") < 4:
                received += sock.recv(4096)
            sock.close()
            # The survivor, issued while the cancel is in flight.
            status, body = _http_post(handle, "/v1/decode/lm",
                                      {"prompt": prompt,
                                       "max_new_tokens": 5})
            assert status == 200
            assert body["tokens"] == expect, \
                f"{engine_name}/{granularity} block={block}: networked " \
                f"decode != DecodeSession.generate (seed={BASE_SEED})"
            deadline = time.time() + 15
            while time.time() < deadline:
                stats = handle.stats()["admission"]
                if stats["cancelled"] == 1 and stats["in_flight"] == 0:
                    break
                time.sleep(0.05)
            assert stats["cancelled"] == 1, stats
            assert stats["conserved"], stats
        server.close()
