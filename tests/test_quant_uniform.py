"""Unit + property tests for repro.quant.uniform (paper Eqs. 1/2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.uniform import (
    QuantParams,
    asymmetric_params,
    dequantize,
    fake_quantize,
    params_from_range,
    quant_range,
    quantize,
    symmetric_params,
)


class TestQuantRange:
    def test_signed_8bit(self):
        assert quant_range(8, True) == (-128, 127)

    def test_unsigned_8bit(self):
        assert quant_range(8, False) == (0, 255)

    def test_signed_7bit(self):
        assert quant_range(7, True) == (-64, 63)

    def test_signed_4bit(self):
        assert quant_range(4, True) == (-8, 7)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quant_range(0, True)


class TestQuantParams:
    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            QuantParams(scale=-1.0, zero_point=0, bits=8, signed=True)

    def test_rejects_out_of_range_zero_point(self):
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=300, bits=8, signed=False)

    def test_is_symmetric(self):
        p = QuantParams(scale=1.0, zero_point=0, bits=8, signed=True)
        assert p.is_symmetric

    def test_asymmetric_is_not_symmetric(self):
        p = QuantParams(scale=1.0, zero_point=10, bits=8, signed=False)
        assert not p.is_symmetric

    def test_with_zero_point_replaces_only_zp(self):
        p = QuantParams(scale=2.0, zero_point=10, bits=8, signed=False)
        p2 = p.with_zero_point(20)
        assert int(p2.zero_point) == 20
        assert float(p2.scale) == 2.0


class TestSymmetric:
    def test_scale_formula(self):
        """Eq. 1: s = 2*max|x| / (2^b - 1)."""
        x = np.array([-4.0, 2.0])
        p = symmetric_params(x, 8)
        assert float(p.scale) == pytest.approx(8.0 / 255.0)

    def test_zero_point_is_zero(self):
        p = symmetric_params(np.array([1.0, -3.0]), 8)
        assert int(p.zero_point) == 0

    def test_max_maps_near_top_code(self):
        x = np.array([-1.0, 1.0])
        q = quantize(x, symmetric_params(x, 8))
        assert q[1] == 128 or q[1] == 127  # 1/s = 127.5 rounds to even 128->clip
        assert q[1] <= 127

    def test_per_channel(self):
        x = np.array([[1.0, -1.0], [10.0, -10.0]])
        p = symmetric_params(x, 8, axis=0)
        assert p.scale.shape == (2, 1)
        assert float(p.scale[1, 0]) == pytest.approx(10 * float(p.scale[0, 0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            symmetric_params(np.array([]), 8)


class TestAsymmetric:
    def test_scale_formula(self):
        """Eq. 2: s' = (max - min) / (2^b - 1)."""
        x = np.array([-1.0, 3.0])
        p = asymmetric_params(x, 8)
        assert float(p.scale) == pytest.approx(4.0 / 255.0)

    def test_zero_point_formula(self):
        x = np.array([-1.0, 3.0])
        p = asymmetric_params(x, 8)
        expected = np.clip(np.rint(1.0 / (4.0 / 255.0)), 0, 255)
        assert int(p.zero_point) == int(expected)

    def test_all_positive_input_zp_zero(self):
        x = np.array([1.0, 5.0])
        p = asymmetric_params(x, 8)
        assert int(p.zero_point) == 0

    def test_min_maps_to_zero_code(self):
        x = np.linspace(-2.0, 6.0, 100)
        p = asymmetric_params(x, 8)
        q = quantize(x, p)
        assert q.min() == 0
        assert q.max() == 255

    def test_codes_unsigned(self):
        x = np.random.default_rng(0).normal(0, 1, 1000)
        q = quantize(x, asymmetric_params(x, 8))
        assert q.min() >= 0 and q.max() <= 255


class TestRoundTrip:
    def test_dequantize_inverts_scale(self):
        p = QuantParams(scale=0.5, zero_point=10, bits=8, signed=False)
        assert dequantize(np.array([12]), p) == pytest.approx(1.0)

    def test_fake_quantize_error_bounded_asym(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 4096)
        p = asymmetric_params(x, 8)
        err = np.abs(fake_quantize(x, p) - x)
        assert err.max() <= float(p.scale) / 2 + 1e-12

    def test_fake_quantize_error_bounded_sym(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 4096)
        p = symmetric_params(x, 7)
        # interior values within half a step; clipped edge within one step
        err = np.abs(fake_quantize(x, p) - x)
        assert err.max() <= float(p.scale) + 1e-12

    def test_quantize_idempotent_on_grid(self):
        p = QuantParams(scale=0.25, zero_point=100, bits=8, signed=False)
        q = np.arange(0, 256)
        x = dequantize(q, p)
        assert np.array_equal(quantize(x, p), q)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=64),
       st.integers(2, 8))
def test_property_asym_codes_in_range(values, bits):
    x = np.array(values)
    p = asymmetric_params(x, bits)
    q = quantize(x, p)
    assert q.min() >= 0
    assert q.max() <= (1 << bits) - 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=64),
       st.integers(2, 8))
def test_property_sym_codes_in_range(values, bits):
    x = np.array(values)
    p = symmetric_params(x, bits)
    q = quantize(x, p)
    lo, hi = quant_range(bits, True)
    assert q.min() >= lo and q.max() <= hi


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=4, max_size=64))
def test_property_asym_reconstruction_error(values):
    x = np.array(values)
    if np.ptp(x) < 1e-6:
        return
    p = asymmetric_params(x, 8)
    err = np.abs(fake_quantize(x, p) - x)
    assert err.max() <= float(p.scale) * 1.01


def test_params_from_range_matches_direct():
    x = np.array([-2.0, 5.0, 1.0])
    direct = asymmetric_params(x, 8)
    ranged = params_from_range(x.min(), x.max(), 8, symmetric=False)
    assert float(direct.scale) == pytest.approx(float(ranged.scale))
    assert int(direct.zero_point) == int(ranged.zero_point)
