"""Cross-process trace propagation: span-tree parity and crash closure.

Stage spans are opened and closed on the *driver's* clock; the trace id
crosses into worker processes via the task envelope and the ShmRing frame
header, and worker-measured durations ride back as span attributes.  The
contract under test: a traced request served by ``backend="process"``
with ``shards=2`` yields the *same span tree* (names and parentage) as
the thread backend, and a worker killed mid-batch leaves an error-status
span — never an unclosed leak.

Everything that crosses the spawn boundary lives at module level (same
discipline as ``test_mp_server.py``).
"""

import os

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import build_proxy, proxy_batches
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.obs import Trace
from repro.serve import BatchPolicy, ModelServer, WorkerCrashError

MODEL = "bert_base"
DIM = 8
MAGIC_ROWS = 7  # a forward seeing this many rows kills its process


class _CrashyMLP(Module):
    def __init__(self) -> None:
        super().__init__()
        self.fc = Linear(DIM, DIM, rng=np.random.default_rng(11))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[0] == MAGIC_ROWS:
            os._exit(3)
        return self.fc(x)


def _build_crashy():
    return _CrashyMLP()


def _crashy_session():
    session = PanaceaSession(_build_crashy(), PtqConfig.for_scheme("aqs"))
    rng = np.random.default_rng(1)
    session.calibrate([rng.standard_normal((3, DIM)) for _ in range(2)])
    return session


def _prepared_session(seed=0):
    model, _ = build_proxy(MODEL, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + 1))
    return session


def _tree_shape(trace):
    """(name, parent-name) edge multiset — the backend-invariant shape."""
    by_id = {s.span_id: s for s in trace.spans}
    return sorted(
        (s.name, by_id[s.parent_id].name if s.parent_id else None)
        for s in trace.spans)


def _one_traced_request(server):
    x = proxy_batches(MODEL, 2, 1, seed=44)[0]
    ticket = server.submit("bert", x)
    out = ticket.result(timeout=120)
    assert ticket.trace is not None
    return ticket.trace, out


def test_process_shards_span_tree_matches_thread_backend():
    policy = BatchPolicy(max_batch=1, max_delay_s=0.0)

    with ModelServer(policy) as server:
        server.register("bert", _prepared_session(seed=0), shards=2,
                        model_name=MODEL)
        thread_trace, thread_out = _one_traced_request(server)

    with ModelServer(policy, workers=2, backend="process") as server:
        server.register("bert", _prepared_session(seed=0), shards=2,
                        model_name=MODEL)
        proc_trace, proc_out = _one_traced_request(server)

    # Same spans, same parentage — the tree shape is backend-invariant.
    shape = _tree_shape(proc_trace)
    assert shape == _tree_shape(thread_trace)
    assert ("stage[0]", "engine_execute") in shape
    assert ("stage[1]", "engine_execute") in shape
    assert ("queue_wait", "bert") in shape
    assert ("batch_release", "bert") in shape
    for trace in (thread_trace, proc_trace):
        assert trace.validate() == []
        assert trace.status == "ok"
    # Same answer too (tracing never perturbs the data path).
    assert np.array_equal(thread_out, proc_out)
    # The process-backend stage spans crossed a real boundary: the worker's
    # own-clock execution time rode back as an attribute.
    for k in range(2):
        span, = proc_trace.find(f"stage[{k}]")
        assert span.attrs["worker_exec_s"] > 0.0


def test_traced_request_survives_untraced_neighbours():
    """sample<1 on the process backend: traced and untraced requests share
    workers and rings without contaminating each other (trace_id=0 frames
    stay untraced)."""
    policy = BatchPolicy(max_batch=1, max_delay_s=0.0)
    with ModelServer(policy, workers=2, backend="process",
                     trace_sample=0.0) as server:
        server.register("bert", _prepared_session(seed=0), shards=2,
                        model_name=MODEL)
        stream = proxy_batches(MODEL, 2, 3, seed=45)
        untraced_a = server.submit("bert", stream[0])
        traced = server._get("bert").batcher.submit(
            stream[1], trace=server.traces.add(Trace("bert")))
        untraced_b = server.submit("bert", stream[2])
        for ticket in (untraced_a, traced, untraced_b):
            ticket.result(timeout=120)
        assert untraced_a.trace is None and untraced_b.trace is None
        assert traced.trace is not None
        assert traced.trace.validate() == []
        assert len(traced.trace.find("stage[0]")) == 1


def test_worker_kill_mid_batch_leaves_error_span_not_a_leak():
    policy = BatchPolicy(max_batch=1, max_delay_s=0.0)
    with ModelServer(policy, workers=2, backend="process") as server:
        server.register("crashy", _crashy_session(),
                        model_factory=_build_crashy)
        rng = np.random.default_rng(6)
        poison = rng.standard_normal((MAGIC_ROWS, DIM))
        with pytest.raises(WorkerCrashError):
            server.submit_async("crashy", poison).result(timeout=120)

        trace_ids = server.traces.ids()
        assert len(trace_ids) == 1
        trace = server.get_trace(trace_ids[0])
        assert trace.status == "error"
        assert trace.complete           # every span closed: nothing leaked
        assert trace.root.status == "error"
        error_spans = [s for s in trace.spans if s.status == "error"]
        assert any(s.name == "engine_execute" for s in error_spans)
        exec_span, = trace.find("engine_execute")
        assert "WorkerCrashError" in exec_span.attrs["exception"]

        # The pool recovered; a traced request after the respawn completes
        # with a clean ok tree on the replacement worker.
        good = rng.standard_normal((3, DIM))
        server.submit_async("crashy", good).result(timeout=120)
        after = [server.get_trace(tid) for tid in server.traces.ids()]
        assert len(after) == 2
        assert {t.status for t in after} == {"error", "ok"}
