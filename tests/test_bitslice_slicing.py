"""Unit + property tests for bit-slice representations (paper Fig. 3/10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice.slicing import (
    SliceStack,
    dbs_reconstruct_codes,
    sbr_total_bits,
    slice_dbs,
    slice_sbr,
    slice_unsigned,
)


class TestUnsignedSlicing:
    def test_round_trip_full_8bit_range(self):
        x = np.arange(256)
        assert np.array_equal(slice_unsigned(x, 8).reconstruct(), x)

    def test_round_trip_12bit(self):
        x = np.arange(4096)
        assert np.array_equal(slice_unsigned(x, 12).reconstruct(), x)

    def test_slice_count(self):
        assert slice_unsigned(np.array([0]), 8).n_slices == 2
        assert slice_unsigned(np.array([0]), 12).n_slices == 3

    def test_planes_in_range(self):
        stack = slice_unsigned(np.arange(256), 8)
        for plane in stack.planes:
            assert plane.min() >= 0 and plane.max() <= 15

    def test_ho_lo_split_example(self):
        """0xAB -> HO = 0xA, LO = 0xB."""
        stack = slice_unsigned(np.array([0xAB]), 8)
        assert int(stack.ho[0]) == 0xA
        assert int(stack.lo[0]) == 0xB

    def test_weights_are_radix_16(self):
        stack = slice_unsigned(np.array([0]), 12)
        assert stack.weights == (1, 16, 256)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            slice_unsigned(np.array([-1]), 8)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            slice_unsigned(np.array([256]), 8)

    def test_rejects_non_multiple_bits(self):
        with pytest.raises(ValueError):
            slice_unsigned(np.array([0]), 7)


class TestSbr:
    def test_round_trip_7bit(self):
        x = np.arange(-64, 64)
        assert np.array_equal(slice_sbr(x, 7).reconstruct(), x)

    def test_round_trip_10bit(self):
        x = np.arange(-512, 512)
        assert np.array_equal(slice_sbr(x, 10).reconstruct(), x)

    def test_round_trip_4bit_single_slice(self):
        x = np.arange(-8, 8)
        stack = slice_sbr(x, 4)
        assert stack.n_slices == 1
        assert np.array_equal(stack.reconstruct(), x)

    def test_near_zero_values_have_zero_ho(self):
        """Values in [-8, 7] must produce all-zero HO slices (the SBR's
        whole point: both signs of near-zero compress)."""
        x = np.arange(-8, 8)
        assert np.all(slice_sbr(x, 7).ho == 0)

    def test_paper_fig3_example_negative(self):
        """-1 = 1111111b: straightforward HO would be 1111b; SBR gives 0."""
        stack = slice_sbr(np.array([-1]), 7)
        assert int(stack.ho[0]) == 0
        assert int(stack.lo[0]) == -1

    def test_slices_in_signed_4bit_range(self):
        stack = slice_sbr(np.arange(-512, 512), 10)
        for plane in stack.planes:
            assert plane.min() >= -8 and plane.max() <= 7

    def test_weights_are_radix_8(self):
        assert slice_sbr(np.array([0]), 10).weights == (1, 8, 64)

    def test_total_bits_formula(self):
        assert sbr_total_bits(0) == 4
        assert sbr_total_bits(1) == 7
        assert sbr_total_bits(2) == 10

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            slice_sbr(np.array([0]), 8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            slice_sbr(np.array([64]), 7)

    def test_boundary_values(self):
        for val in (-64, -9, -8, -1, 0, 7, 8, 63):
            stack = slice_sbr(np.array([val]), 7)
            assert int(stack.reconstruct()[0]) == val


class TestDbsSlicing:
    def test_l4_equals_straightforward(self):
        x = np.arange(256)
        a = slice_dbs(x, 4).reconstruct()
        b = slice_unsigned(x, 8).reconstruct()
        assert np.array_equal(a, b)

    def test_l5_drops_one_lsb(self):
        x = np.arange(256)
        err = x - slice_dbs(x, 5).reconstruct()
        assert err.min() >= 0 and err.max() <= 1

    def test_l6_drops_two_lsbs(self):
        x = np.arange(256)
        err = x - slice_dbs(x, 6).reconstruct()
        assert err.min() >= 0 and err.max() <= 3

    def test_paper_fig10b_example(self):
        """Type-2 splits 01010101b into HO 010b and LO 10101b."""
        stack = slice_dbs(np.array([0b01010101]), 5)
        assert int(stack.ho[0]) == 0b010
        # LO keeps the top 4 of 5 bits: 10101 -> 1010
        assert int(stack.lo[0]) == 0b1010

    def test_ho_range_shrinks_with_l(self):
        x = np.arange(256)
        assert slice_dbs(x, 5).ho.max() == 7
        assert slice_dbs(x, 6).ho.max() == 3

    def test_lossy_flag(self):
        assert not slice_dbs(np.array([0]), 4).lossy
        assert slice_dbs(np.array([0]), 5).lossy

    def test_rejects_bad_lo_bits(self):
        with pytest.raises(ValueError):
            slice_dbs(np.array([0]), 3)
        with pytest.raises(ValueError):
            slice_dbs(np.array([0]), 8)

    def test_reconstruct_codes_helper(self):
        x = np.array([255, 128, 7])
        assert np.array_equal(dbs_reconstruct_codes(x, 4), x)


class TestSliceStack:
    def test_shape_and_accessors(self):
        stack = slice_unsigned(np.zeros((3, 5), dtype=int), 8)
        assert stack.shape == (3, 5)
        assert stack.ho.shape == (3, 5)
        assert stack.ho_weight == 16

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            SliceStack(planes=(np.zeros(2),), weights=(1, 2), signed=False)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SliceStack(planes=(), weights=(), signed=False)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-512, 511), min_size=1, max_size=128))
def test_property_sbr_10bit_round_trip(values):
    x = np.array(values)
    assert np.array_equal(slice_sbr(x, 10).reconstruct(), x)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=128),
       st.integers(4, 6))
def test_property_dbs_truncation_bound(values, lo_bits):
    x = np.array(values)
    err = x - slice_dbs(x, lo_bits).reconstruct()
    assert np.all(err >= 0)
    assert np.all(err < (1 << (lo_bits - 4)))


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-64, 63), min_size=1, max_size=128))
def test_property_sbr_ho_zero_iff_small(values):
    x = np.array(values)
    ho = slice_sbr(x, 7).ho
    small = (x >= -8) & (x <= 7)
    assert np.array_equal(ho == 0, small)
