"""Tests for PTQ range observers."""

import numpy as np
import pytest

from repro.quant.observers import (
    EmaMinMaxObserver,
    HistogramObserver,
    MinMaxObserver,
    PercentileObserver,
    make_observer,
)


class TestMinMax:
    def test_tracks_global_extremes(self):
        obs = MinMaxObserver(bits=8)
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        assert obs.range() == (-3.0, 2.0)

    def test_params_asymmetric(self):
        obs = MinMaxObserver(bits=8, symmetric=False)
        obs.observe(np.array([-1.0, 3.0]))
        p = obs.params()
        assert not p.signed
        assert float(p.scale) == pytest.approx(4.0 / 255.0)

    def test_params_symmetric(self):
        obs = MinMaxObserver(bits=7, symmetric=True)
        obs.observe(np.array([-2.0, 1.0]))
        p = obs.params()
        assert p.signed and int(p.zero_point) == 0

    def test_no_data_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().params()

    def test_empty_batch_ignored(self):
        obs = MinMaxObserver()
        obs.observe(np.array([]))
        assert obs.batches_seen == 0


class TestEma:
    def test_first_batch_initializes(self):
        obs = EmaMinMaxObserver(momentum=0.9)
        obs.observe(np.array([0.0, 10.0]))
        assert obs.range() == (0.0, 10.0)

    def test_outlier_batch_damped(self):
        obs = EmaMinMaxObserver(momentum=0.9)
        obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([0.0, 100.0]))
        lo, hi = obs.range()
        assert hi < 15.0  # 0.9*1 + 0.1*100 = 10.9

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            EmaMinMaxObserver(momentum=1.0)


class TestPercentile:
    def test_clips_outliers(self):
        rng = np.random.default_rng(0)
        obs = PercentileObserver(percentile=99.0)
        data = rng.normal(0, 1, 10_000)
        data[0] = 1000.0
        obs.observe(data)
        lo, hi = obs.range()
        assert hi < 10.0

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=40.0)


class TestHistogram:
    def test_histogram_counts_all(self):
        obs = HistogramObserver(bits=8)
        obs.observe(np.random.default_rng(0).normal(0, 1, 5000))
        hist = obs.quantized_histogram()
        assert hist.sum() == 5000
        assert hist.size == 256

    def test_std_reflects_width(self):
        rng = np.random.default_rng(1)
        narrow = HistogramObserver(bits=8)
        wide = HistogramObserver(bits=8)
        # same range (via endpoint pins), different bulk width
        base = np.array([-10.0, 10.0])
        narrow.observe(np.concatenate([base, rng.normal(0, 0.5, 5000)]))
        wide.observe(np.concatenate([base, rng.normal(0, 5.0, 5000)]))
        assert narrow.quantized_std() < wide.quantized_std()

    def test_robust_std_ignores_outlier_mass(self):
        """A few extreme channels must not inflate the bulk width."""
        rng = np.random.default_rng(2)
        bulk = rng.normal(0, 1, 20_000)
        outliers = rng.normal(0, 40, 200)  # 1% outliers set the range
        obs = HistogramObserver(bits=8)
        obs.observe(np.concatenate([bulk, outliers]))
        assert obs.quantized_std(robust=True) < obs.quantized_std(robust=False) / 2

    def test_robust_matches_plain_for_gaussian(self):
        rng = np.random.default_rng(3)
        obs = HistogramObserver(bits=8)
        obs.observe(rng.normal(0, 1, 50_000))
        robust = obs.quantized_std(robust=True)
        plain = obs.quantized_std(robust=False)
        assert robust == pytest.approx(plain, rel=0.15)


class TestFactory:
    @pytest.mark.parametrize("kind", ["minmax", "ema", "percentile",
                                      "histogram"])
    def test_creates_each_kind(self, kind):
        obs = make_observer(kind, bits=8)
        obs.observe(np.array([1.0, -1.0]))
        assert obs.params().bits == 8

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_observer("magic")
