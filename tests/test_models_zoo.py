"""Tests for proxy models and synthetic data generators."""

import numpy as np
import pytest

from repro.models.synthetic import (
    classification_set,
    gaussian_images,
    teacher_sample,
    token_batches,
    zipf_tokens,
)
from repro.models.zoo import PROXY_SPECS, build_proxy


class TestProxies:
    def test_every_benchmark_has_a_proxy(self):
        from repro.models.configs import MODEL_CONFIGS

        assert set(PROXY_SPECS) == set(MODEL_CONFIGS)

    def test_unknown_proxy(self):
        with pytest.raises(KeyError):
            build_proxy("gpt5")

    @pytest.mark.parametrize("name", ["gpt2", "llama32_1b"])
    def test_lm_proxies_run(self, name):
        model, config = build_proxy(name, seed=0)
        spec = PROXY_SPECS[name]
        ids = np.arange(12).reshape(1, 12) % spec.vocab
        out = model(ids)
        assert out.shape == (1, 12, spec.vocab)
        assert config.name == name

    def test_classifier_proxy_runs(self):
        model, _ = build_proxy("bert_base", seed=0)
        out = model(np.zeros((2, 8, 192)))
        assert out.shape == (2, 3)

    def test_resnet_proxy_runs(self):
        model, _ = build_proxy("resnet18", seed=0)
        out = model(gaussian_images(1, 3, 32, seed=0))
        assert out.shape == (1, 16)

    def test_llama_proxy_has_swiglu(self):
        model, _ = build_proxy("llama32_1b", seed=0)
        names = [n for n, _ in model.named_modules()]
        assert any("down_proj" in n for n in names)
        assert any("gate_proj" in n for n in names)

    def test_outlier_channels_visible_in_activations(self):
        """OPT/Llama proxies must show per-channel outliers — the property
        that makes them hard to quantize."""
        from repro.nn.layers import Linear

        model, _ = build_proxy("opt_2p7b", seed=0)
        captured = []
        for name, mod in model.named_modules():
            if isinstance(mod, Linear) and name.endswith("fc1"):
                mod.register_forward_hook(
                    lambda m, a, o: captured.append(a[0]))
        model(np.arange(16).reshape(1, 16) % 512)
        x = captured[-1].reshape(-1, captured[-1].shape[-1])
        ch_amp = np.abs(x).max(axis=0)
        assert ch_amp.max() > 5 * np.median(ch_amp)


class TestSyntheticData:
    def test_zipf_distribution_skewed(self):
        tokens = zipf_tokens(256, 20000, seed=0)
        counts = np.bincount(tokens, minlength=256)
        assert counts[0] > 10 * max(counts[128], 1)

    def test_token_batches_shapes(self):
        batches = token_batches(128, 2, 16, 3, seed=0)
        assert len(batches) == 3
        assert batches[0].shape == (2, 16)

    def test_teacher_sample_low_fp_perplexity(self):
        """The FP model must predict its own samples far better than
        chance — the property that makes quantization deltas meaningful."""
        from repro.eval.accuracy import lm_perplexity
        from repro.models.zoo import build_proxy

        lm, _ = build_proxy("gpt2", seed=0)
        own = teacher_sample(lm, 512, 2, 32, seed=1)
        ppl_own = lm_perplexity(lm, own)
        assert ppl_own < 512 * 0.75  # well below uniform-vocab ppl

    def test_gaussian_images_normalized(self):
        imgs = gaussian_images(4, 3, 16, seed=0)
        assert imgs.shape == (4, 3, 16, 16)
        assert abs(float(imgs.mean())) < 0.3

    def test_classification_set(self):
        batches = classification_set(4, 8, 32, 2, seed=0)
        assert len(batches) == 2
        assert batches[0].shape == (4, 8, 32)

    def test_determinism(self):
        a = zipf_tokens(64, 100, seed=5)
        b = zipf_tokens(64, 100, seed=5)
        assert np.array_equal(a, b)
