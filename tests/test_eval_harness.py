"""Tests for the evaluation harness: metrics, tables, sparsity stats."""

import dataclasses

import numpy as np
import pytest

from repro.eval.accuracy import (
    AccuracyResult,
    classification_agreement,
    lm_perplexity,
    perplexity,
    top1_agreement,
)
from repro.eval.sparsity_stats import mean_sparsity, sparsity_by_method
from repro.eval.tables import PaperClaim, format_claims, format_table
from repro.models.configs import get_config


class TestMetrics:
    def test_top1_agreement_identical(self):
        logits = np.random.default_rng(0).normal(size=(10, 5))
        assert top1_agreement(logits, logits) == 1.0

    def test_top1_agreement_flipped(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert top1_agreement(a, b) == 0.5

    def test_top1_agreement_empty(self):
        assert top1_agreement(np.zeros((0, 3)), np.zeros((0, 3))) == 1.0

    def test_perplexity_uniform(self):
        """Uniform logits over V classes -> ppl = V."""
        logits = np.zeros((1, 4, 8))
        targets = np.zeros((1, 4), dtype=int)
        assert perplexity(logits, targets) == pytest.approx(8.0)

    def test_perplexity_confident(self):
        logits = np.full((1, 3, 4), -100.0)
        targets = np.array([[1, 2, 3]])
        for t, pos in zip([1, 2, 3], range(3)):
            logits[0, pos, t] = 100.0
        assert perplexity(logits, targets) == pytest.approx(1.0)

    def test_accuracy_result_loss_points(self):
        r = AccuracyResult(agreement=0.9, n_samples=100)
        assert r.accuracy_loss_points == pytest.approx(10.0)

    def test_classification_agreement_counts(self):
        class Fixed:
            def __init__(self, out):
                self.out = out

            def __call__(self, x):
                return self.out

        a = Fixed(np.array([[1.0, 0.0], [0.0, 1.0]]))
        b = Fixed(np.array([[1.0, 0.0], [1.0, 0.0]]))
        res = classification_agreement(a, b, [np.zeros((2, 3))])
        assert res.agreement == 0.5
        assert res.n_samples == 2

    def test_lm_perplexity_runs(self):
        from repro.models.zoo import build_proxy

        lm, _ = build_proxy("gpt2", seed=0)
        ids = np.arange(24).reshape(1, 24) % 512
        ppl = lm_perplexity(lm, ids)
        assert np.isfinite(ppl) and ppl > 1.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_paper_claim_ratio(self):
        claim = PaperClaim("thing", 2.0, 1.5)
        assert claim.ratio == pytest.approx(0.75)
        assert "measured/paper = 0.75" in claim.line()

    def test_format_claims(self):
        out = format_claims([PaperClaim("a", 1.0, 1.0)])
        assert out.splitlines()[0] == "paper vs measured:"


class TestSparsityStats:
    def _config(self):
        cfg = get_config("bert_base")
        return dataclasses.replace(cfg, layers=tuple(cfg.layers[:6]))

    def test_methods_collected(self):
        stats = sparsity_by_method(self._config(), n_sample=32, m_cap=128,
                                   methods=("sibia", "aqs_full"))
        assert set(stats) == {"sibia", "aqs_full"}
        assert len(stats["sibia"].rho_x) == 6

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            sparsity_by_method(self._config(), methods=("magic",))

    def test_mean_sparsity(self):
        stats = sparsity_by_method(self._config(), n_sample=32, m_cap=128,
                                   methods=("aqs_full",))
        means = mean_sparsity(stats)
        assert 0.0 <= means["aqs_full"] <= 1.0

    def test_full_pipeline_beats_plain(self):
        stats = sparsity_by_method(self._config(), n_sample=32, m_cap=128,
                                   methods=("aqs_plain", "aqs_full"))
        assert (stats["aqs_full"].mean_rho_x
                >= stats["aqs_plain"].mean_rho_x - 0.02)
