"""Smoke tests for every experiment driver at reduced scale.

The benches run the drivers at full scale and assert the paper's claims;
these tests only check each driver's machinery — that it runs, returns the
documented result type, and formats — so a refactor can't silently break a
figure between bench runs.
"""

import numpy as np

from repro.eval.experiments import (
    fig01_accuracy,
    fig05_motivation,
    fig08_zpm,
    fig09_dbs,
    fig13_design_space,
    fig14_sparsity,
    fig16_models,
    fig17_llms,
    fig18_decoupling,
    fig20_asic,
    table1,
)
from repro.eval.experiments.common import run_all_designs, subsample_blocks
from repro.models.configs import get_config


def test_table1_smoke():
    result = table1.run(k=128, sparsities=(0.0, 0.5))
    assert len(result.rows) == 4
    assert result.max_mul_error < 0.2
    assert "Table I" in result.format()


def test_fig01_smoke():
    result = fig01_accuracy.run(models=("bert_base",))
    assert len(result.rows) == 1
    assert 0.0 <= result.rows[0].asymmetric <= 1.0
    assert "Fig. 1" in result.format()


def test_fig05_smoke():
    result = fig05_motivation.run(model="opt_350m", n_layers=1)
    assert result.histogram_rows
    assert set(result.accuracy) == {"symmetric", "aqs"}
    assert "Fig. 5" in result.format()


def test_fig08_smoke():
    result = fig08_zpm.run(model="opt_350m", n_layers=2)
    assert result.worst_case.sparsity_after > result.worst_case.sparsity_before
    assert "ZPM" in result.format()


def test_fig09_smoke():
    result = fig09_dbs.run(model="bert_base", n_layers=2)
    assert result.rows
    assert all(1 <= r.dbs_type <= 3 for r in result.rows)
    assert "DBS" in result.format()


def test_fig13_smoke():
    result = fig13_design_space.run(sparsities=(0.0, 0.9), sizes=("small",))
    assert result.baselines["simd"] > 0
    assert len(result.points) == 2 * 2 * 2  # configs x dtp x sparsities
    assert result.format()


def test_fig14_part_a_smoke():
    rows = fig14_sparsity.run_part_a(block=0)
    assert len(rows) == 6
    assert all(0.0 <= r.aqs_full <= 1.0 for r in rows)


def test_fig14_part_b_smoke():
    out = fig14_sparsity.run_part_b(models=("bert_base",), stride=6)
    assert set(out["bert_base"]) == {"panacea", "sibia"}


def test_fig16_smoke_no_accuracy():
    result = fig16_models.run(models=("bert_base",), stride=8,
                              with_accuracy=False)
    assert result.efficiency["bert_base"]["panacea"] > 0
    assert result.format()


def test_fig17_smoke_no_ppl():
    result = fig17_llms.run(models=("opt_350m",), stride=10, with_ppl=False)
    assert result.rows[0].panacea_vs_sibia > 0
    assert result.format()


def test_fig18_smoke_no_ppl():
    result = fig18_decoupling.run(stride=16, with_ppl=False)
    assert set(result.part_a) == {"asymmetric", "symmetric"}
    assert len(result.part_b) == 2
    assert result.format()


def test_fig20_smoke():
    result = fig20_asic.run()
    designs = {r.design for r in result.rows}
    assert {"panacea", "sibia [53]", "lutein [56]"} == designs
    assert result.format()


def test_common_subsample_blocks():
    cfg = get_config("gpt2")
    sub = subsample_blocks(cfg, 4)
    blocks = {l.block_index for l in sub.layers}
    assert blocks == {0, 4, 8}
    assert subsample_blocks(get_config("resnet18"), 4) is get_config(
        "resnet18")


def test_common_run_all_designs_consistent_workload():
    res = run_all_designs(get_config("bert_base"), stride=12, n_sample=32,
                          m_cap=128)
    macs = {name: p.effective_macs for name, p in res.items()}
    assert len(set(macs.values())) == 1, "designs must see the same workload"
    assert all(np.isfinite(p.tops) and p.tops > 0 for p in res.values())
