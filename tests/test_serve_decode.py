"""Continuous-batching decode at the serve layer.

Covers :class:`~repro.serve.batching.DecodeBatcher` (admission, refill
policies, retirement compaction, failure propagation),
:class:`~repro.serve.cache.PrefixKVCache` (longest-proper-prefix lookup,
LRU byte budget, seeding counters), the :class:`ModelServer` decode routing
(lazy decoder creation, capability refusals, streaming, drain-on-flush),
and the MicroBatcher/DecodeBatcher interplay on one deployment: one-shot
and decode traffic share the session ledger without metric cross-talk, and
every sequence's tokens replay the solo decode exactly.
"""

import threading

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import DecodeSession, PanaceaSession
from repro.nn import CausalLM
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import (
    BackendCapabilityError,
    BatchPolicy,
    DecodeBatcher,
    DecodePolicy,
    ModelServer,
    PrefixKVCache,
)

VOCAB = 64


def _lm_session(scheme="aqs", seed=0):
    model = CausalLM(VOCAB, 24, 2, 4, 32, seed=seed)
    calib = [np.random.default_rng(seed + 1).integers(0, VOCAB, (2, 10))
             for _ in range(2)]
    return PanaceaSession(model, PtqConfig.for_scheme(scheme),
                          calibration=calib)


def _prompts(n, seed=0, lo=3, hi=9):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, int(rng.integers(lo, hi)))
            for _ in range(n)]


def _solo_decode(prompt, max_new, scheme="aqs", seed=0):
    """Reference: the tokens this prompt generates decoding alone."""
    return DecodeSession(_lm_session(scheme, seed)).generate(prompt, max_new)


class _ShardableMlp(Module):
    """Two-segment MLP implementing the shard protocol (no decode API)."""

    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(8, 16, rng=rng)
        self.fc2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))

    def pipeline_segments(self):
        return [
            ("fc1", ("fc1",), lambda x: np.maximum(self.fc1(x), 0.0)),
            ("fc2", ("fc2",), lambda x: self.fc2(x)),
        ]


class TestDecodePolicy:
    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="max_batch"):
            DecodePolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_new_tokens"):
            DecodePolicy(max_new_tokens=0)
        with pytest.raises(ValueError, match="refill"):
            DecodePolicy(refill="eager")
        with pytest.raises(ValueError, match="temperature"):
            DecodePolicy(temperature=-1.0)

    def test_batcher_requires_incremental_model(self):
        mlp = _ShardableMlp(np.random.default_rng(0))
        session = PanaceaSession(
            mlp, PtqConfig.for_scheme("aqs"),
            calibration=[np.random.default_rng(1).normal(0, 1, (4, 8))])
        with pytest.raises(TypeError, match="forward_step"):
            DecodeBatcher(session)


class TestDecodeBatcher:
    def test_batched_decode_replays_solo_exactly(self):
        """The core serve-layer invariant: continuous batching is invisible
        to results — every ticket's tokens equal its solo decode."""
        prompts = _prompts(6, seed=3)
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=3, max_new_tokens=5))
        tickets = [batcher.submit(p) for p in prompts]
        batcher.drain()
        for i, (ticket, prompt) in enumerate(zip(tickets, prompts)):
            assert ticket.result().tolist() == _solo_decode(prompt, 5), (
                f"request {i} differs from solo decode")

    def test_ticket_conservation(self):
        """Every submit is accounted exactly once: completed + failed."""
        prompts = _prompts(5, seed=4)
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=2, max_new_tokens=3))
        tickets = [batcher.submit(p) for p in prompts]
        batcher.drain()
        stats = batcher.stats()
        assert stats["n_requests"] == len(prompts)
        assert stats["n_failed"] == 0
        assert stats["depth"] == 0 and stats["n_active"] == 0
        assert all(t.done for t in tickets)
        # Each prefill emits a ticket's first token; steps emit the rest.
        assert stats["n_tokens"] + stats["n_prefills"] == \
            sum(len(t.tokens) for t in tickets)
        assert stats["n_prefills"] == len(prompts)

    def test_continuous_refills_mid_flight(self):
        """With a skewed mix, continuous admission overlaps short and long
        generations: peak active hits max_batch and more than one wave of
        requests shares steps."""
        session = _lm_session()
        batcher = DecodeBatcher(session, DecodePolicy(max_batch=2,
                                                      max_new_tokens=12))
        prompts = _prompts(4, seed=5)
        lengths = [12, 2, 2, 2]
        tickets = [batcher.submit(p, max_new_tokens=m)
                   for p, m in zip(prompts, lengths)]
        batcher.drain()
        stats = batcher.stats()
        assert stats["peak_active"] == 2
        # The long request rides throughout; shorts rotate through slot 2:
        # strictly fewer steps than draining 2-batches sequentially.
        assert stats["n_steps"] <= 12 + 2
        assert all(t.done for t in tickets)

    def test_drain_refill_admits_full_batches(self):
        """Static batching fills every slot when the batch comes up empty
        (a regression here collapses drain mode to batches of one)."""
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=3, max_new_tokens=4,
                                             refill="drain"))
        for p in _prompts(3, seed=6):
            batcher.submit(p)
        batcher.step()
        assert batcher.n_active == 3

    def test_max_new_tokens_cap_and_eos(self):
        prompts = _prompts(1, seed=7)
        probe = DecodeBatcher(_lm_session(),
                              DecodePolicy(max_batch=1, max_new_tokens=6))
        tokens = probe.submit(prompts[0]).result().tolist()
        assert len(tokens) == 6
        eos = tokens[2]
        stopper = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=1, max_new_tokens=6,
                                             eos_token=eos))
        assert stopper.submit(prompts[0]).result().tolist() == tokens[:3]

    def test_streaming_iter_tokens(self):
        prompt = _prompts(1, seed=8)[0]
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=1, max_new_tokens=4))
        ticket = batcher.submit(prompt)
        streamed = list(ticket.iter_tokens())
        assert streamed == ticket.tokens
        assert len(streamed) == 4

    def test_engine_failure_fails_all_riders(self):
        session = _lm_session()
        batcher = DecodeBatcher(session, DecodePolicy(max_batch=2,
                                                      max_new_tokens=8))
        tickets = [batcher.submit(p) for p in _prompts(2, seed=9)]
        batcher.step()  # admit + first step succeeds

        def boom(*a, **k):
            raise RuntimeError("engine exploded")

        session.model.forward_step = boom
        with pytest.raises(RuntimeError, match="exploded"):
            batcher.step()
        for ticket in tickets:
            assert ticket.done
            with pytest.raises(RuntimeError, match="exploded"):
                ticket.result()
        assert batcher.stats()["n_failed"] == 2

    def test_per_ticket_sampling_independent_of_batch_mix(self):
        """temperature > 0: a ticket's rng is seeded by its ticket id, so
        the same submission order replays the same tokens whatever the
        batch width."""
        prompts = _prompts(4, seed=10)

        def run(max_batch):
            batcher = DecodeBatcher(
                _lm_session(),
                DecodePolicy(max_batch=max_batch, max_new_tokens=5,
                             temperature=0.7, seed=21))
            tickets = [batcher.submit(p) for p in prompts]
            batcher.drain()
            return [t.result().tolist() for t in tickets]

        assert run(1) == run(4)


class TestPrefixKVCache:
    def _snapshot(self, tokens):
        donor = DecodeSession(_lm_session())
        donor.prefill(tokens)
        return donor.snapshot()

    def test_longest_proper_prefix_wins(self):
        cache = PrefixKVCache(64 << 20)
        stem = np.arange(6) % VOCAB
        longer = np.concatenate([stem, [7, 8]])
        cache.put(stem, self._snapshot(stem))
        cache.put(longer, self._snapshot(longer))
        query = np.concatenate([longer, [9, 10]])
        n, snap = cache.lookup(query)
        assert n == len(longer)
        assert snap[0][0].shape[1] == len(longer)

    def test_whole_prompt_match_is_rejected(self):
        """A hit must be a *proper* prefix: decode still needs at least one
        unseen position to produce the first logits."""
        cache = PrefixKVCache(64 << 20)
        stem = np.arange(5) % VOCAB
        cache.put(stem, self._snapshot(stem))
        assert cache.lookup(stem) is None

    def test_byte_budget_evicts_lru(self):
        stem = np.arange(6) % VOCAB
        snap = self._snapshot(stem)
        nbytes = sum(k.nbytes + v.nbytes for k, v in snap)
        cache = PrefixKVCache(int(nbytes * 2.5))
        keys = [np.concatenate([stem[:-1], [i]]) for i in range(3)]
        for key in keys:
            cache.put(key, self._snapshot(key))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["bytes"] <= int(nbytes * 2.5)
        # The oldest insertion went first.
        assert cache.lookup(np.concatenate([keys[0], [9]])) is None
        hit = cache.lookup(np.concatenate([keys[2], [9]]))
        assert hit is not None and hit[0] == len(stem)

    def test_put_validates_snapshot_length(self):
        cache = PrefixKVCache(1 << 20)
        stem = np.arange(5) % VOCAB
        with pytest.raises(ValueError, match="cover"):
            cache.put(stem, self._snapshot(stem[:3]))

    def test_seeded_decode_is_exact_through_batcher(self):
        """A prefix-cache-seeded decode produces the identical tokens, and
        the seeding is visible in ticket and stats counters."""
        stem = _prompts(1, seed=11, lo=8, hi=9)[0]
        followup = np.concatenate([stem, [3, 1, 4]])

        cold = DecodeBatcher(_lm_session(),
                             DecodePolicy(max_batch=2, max_new_tokens=4))
        expect = cold.submit(followup).result().tolist()

        warm = DecodeBatcher(_lm_session(),
                             DecodePolicy(max_batch=2, max_new_tokens=4,
                                          prefix_cache_bytes=64 << 20))
        warm.submit(stem).result()
        ticket = warm.submit(followup)
        assert ticket.result().tolist() == expect
        assert ticket.seeded_tokens == len(stem)
        stats = warm.stats()["prefix_cache"]
        assert stats["hits"] == 1
        assert stats["seeded_tokens"] == len(stem)


class TestServerDecode:
    def test_submit_decode_and_stream(self):
        with ModelServer() as server:
            server.register("lm", _lm_session(),
                            decode_policy=DecodePolicy(max_batch=2,
                                                       max_new_tokens=4))
            prompts = _prompts(3, seed=12)
            tickets = [server.submit_decode("lm", p) for p in prompts]
            outs = [t.result().tolist() for t in tickets]
            for out, prompt in zip(outs, prompts):
                assert out == _solo_decode(prompt, 4)
            streamed = list(server.decode_stream("lm", prompts[0]))
            assert streamed == outs[0]
            stats = server.stats("lm")["decode"]
            assert stats["n_requests"] == 4

    def test_one_shot_and_decode_share_ledger_without_crosstalk(self):
        """The interplay invariant: MicroBatcher metrics count one-shot
        requests only, DecodeBatcher metrics count decode only, and the
        session ledger accounts every model call from both."""
        session = _lm_session()
        rng = np.random.default_rng(13)
        one_shots = [rng.integers(0, VOCAB, (2, 6)) for _ in range(3)]
        prompts = _prompts(2, seed=14)
        replay = _lm_session()
        expected_oneshot = [replay.run(x) for x in one_shots]

        with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0)) as srv:
            srv.register("lm", session,
                         decode_policy=DecodePolicy(max_batch=2,
                                                    max_new_tokens=3))
            tickets = srv.submit_many("lm", one_shots)
            decodes = [srv.submit_decode("lm", p) for p in prompts]
            srv.flush("lm")
            decode_out = [t.result().tolist() for t in decodes]
            one_out = [t.result() for t in tickets]
            stats = srv.stats("lm")

        for got, expect in zip(one_out, expected_oneshot):
            assert np.array_equal(got, expect)
        for got, prompt in zip(decode_out, prompts):
            assert got == _solo_decode(prompt, 3)

        sched, dec = stats["scheduler"], stats["decode"]
        assert sched["n_requests"] == len(one_shots)
        assert dec["n_requests"] == len(prompts)
        # Ledger conservation: one-shot model calls + decode model calls
        # (prefills ride the first step's admit; each step is one call).
        sess_requests = stats["session"]["n_requests"]
        assert sess_requests == len(one_shots) + dec["n_prefills"] \
            + dec["n_steps"]

    def test_metrics_rollup_conserves_decode_and_prefix_counters(self):
        with ModelServer() as server:
            server.register(
                "lm", _lm_session(),
                decode_policy=DecodePolicy(
                    max_batch=2, max_new_tokens=3,
                    prefix_cache_bytes=64 << 20))
            stem = _prompts(1, seed=15, lo=6, hi=7)[0]
            server.submit_decode("lm", stem).result()
            server.submit_decode(
                "lm", np.concatenate([stem, [2, 5]])).result()
            metrics = server.metrics()
            per = server.stats("lm")
        assert metrics.decode is not None
        assert metrics.decode["n_requests"] == \
            per["decode"]["n_requests"] == 2
        assert metrics.prefix_cache is not None
        pc = per["decode"]["prefix_cache"]
        assert metrics.prefix_cache["hits"] == pc["hits"] == 1
        assert metrics.prefix_cache["seeded_tokens"] == \
            pc["seeded_tokens"] == len(stem)
        assert metrics.summary()["decode"] == metrics.decode

    def test_decoder_is_lazy_and_flush_drains_it(self):
        with ModelServer() as server:
            entry = server.register("lm", _lm_session())
            assert entry.decoder is None
            ticket = server.submit_decode(
                "lm", _prompts(1, seed=16)[0], max_new_tokens=3)
            assert entry.decoder is not None
            server.flush("lm")
            assert ticket.done and len(ticket.tokens) == 3

    def test_decode_refused_on_sharded_deployment(self):
        mlp = _ShardableMlp(np.random.default_rng(0))
        session = PanaceaSession(
            mlp, PtqConfig.for_scheme("aqs"),
            calibration=[np.random.default_rng(1).normal(0, 1, (4, 8))])
        with ModelServer() as server:
            server.register("mlp", session, shards=2)
            with pytest.raises(BackendCapabilityError, match="sharded"):
                server.submit_decode("mlp", np.arange(4))

    def test_decode_refused_on_process_backend(self):
        import functools

        with ModelServer(workers=1, backend="process") as server:
            server.register(
                "mlp", PanaceaSession(
                    _ShardableMlp(np.random.default_rng(0)),
                    PtqConfig.for_scheme("aqs"),
                    calibration=[np.random.default_rng(1).normal(
                        0, 1, (4, 8))]),
                model_factory=functools.partial(
                    _ShardableMlp, np.random.default_rng(0)))
            with pytest.raises(BackendCapabilityError, match="process"):
                server.submit_decode("mlp", np.arange(4))

    def test_concurrent_decode_submitters(self):
        """Tickets driven from several threads share the service lock and
        all complete with their solo-exact tokens."""
        prompts = _prompts(6, seed=17)
        results = [None] * len(prompts)
        with ModelServer() as server:
            server.register("lm", _lm_session(),
                            decode_policy=DecodePolicy(max_batch=3,
                                                       max_new_tokens=4))

            def work(i):
                ticket = server.submit_decode("lm", prompts[i])
                results[i] = ticket.result().tolist()

            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(len(prompts))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        for i, (got, prompt) in enumerate(zip(results, prompts)):
            assert got == _solo_decode(prompt, 4), f"thread {i} differs"


class TestDecodeCancel:
    """DecodeBatcher.cancel: dropped-client semantics (the gateway path)."""

    def test_cancel_queued_ticket_never_decodes(self):
        from concurrent.futures import CancelledError

        prompts = _prompts(3, seed=21)
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=2, max_new_tokens=4))
        tickets = [batcher.submit(p) for p in prompts]
        assert batcher.cancel(tickets[2])          # still queued: dequeued
        assert not batcher.cancel(tickets[2])      # already finished
        batcher.drain()
        for ticket, prompt in zip(tickets[:2], prompts[:2]):
            assert ticket.result().tolist() == _solo_decode(prompt, 4)
        with pytest.raises(CancelledError):
            tickets[2].result()
        stats = batcher.stats()
        assert stats["n_cancelled"] == 1
        assert stats["n_requests"] == 2            # only the survivors
        assert stats["n_prefills"] == 2            # never entered the batch
        assert stats["depth"] == 0 and stats["n_active"] == 0

    def test_cancel_active_slot_compacts_others_bit_exact(self):
        """Cancel a request mid-flight in the shared batch: its slot
        retires at the next step boundary and the surviving sequences
        finish with their exact solo tokens."""
        from concurrent.futures import CancelledError

        prompts = _prompts(3, seed=22, lo=4, hi=6)
        batcher = DecodeBatcher(_lm_session(),
                                DecodePolicy(max_batch=3,
                                             max_new_tokens=16))
        tickets = [batcher.submit(p) for p in prompts]
        victim = tickets[1]
        stream = iter(victim.iter_tokens())
        next(stream)                               # victim is active now
        assert batcher.cancel(victim)
        batcher.drain()
        with pytest.raises(CancelledError):
            victim.result()
        for i in (0, 2):
            assert tickets[i].result().tolist() == \
                _solo_decode(prompts[i], 16), f"survivor {i} diverged"
        stats = batcher.stats()
        assert stats["n_cancelled"] == 1
        assert stats["n_requests"] == 2

    def test_server_cancel_decode_routes_to_batcher(self):
        with ModelServer() as server:
            server.register("lm", _lm_session(),
                            decode_policy=DecodePolicy(max_batch=2,
                                                       max_new_tokens=3))
            # No decoder yet (lazy): nothing to cancel, typed False.
            assert not server.cancel_decode("lm", None)
            ticket = server.submit_decode("lm", _prompts(1, seed=23)[0])
            other = server.submit_decode("lm", _prompts(1, seed=24)[0])
            assert server.cancel_decode("lm", ticket)
            assert other.result().tolist() == \
                _solo_decode(_prompts(1, seed=24)[0], 3)
            metrics = server.metrics()
            assert metrics.decode["n_cancelled"] == 1
