"""Tests for slice-vector grouping and compressibility masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice.vectors import (
    activation_vector_mask,
    expand_activation_mask,
    expand_weight_mask,
    pad_to_multiple,
    vector_sparsity,
    weight_vector_mask,
)


class TestPad:
    def test_no_pad_needed(self):
        x = np.zeros((4, 3))
        assert pad_to_multiple(x, 4, axis=0) is x

    def test_pads_with_fill(self):
        x = np.ones((3, 2), dtype=int)
        out = pad_to_multiple(x, 4, axis=0, fill=7)
        assert out.shape == (4, 2)
        assert np.all(out[3] == 7)

    def test_pads_axis1(self):
        x = np.ones((2, 5), dtype=int)
        out = pad_to_multiple(x, 4, axis=1, fill=0)
        assert out.shape == (2, 8)


class TestWeightMask:
    def test_all_zero_compressible(self):
        ho = np.zeros((8, 3), dtype=int)
        mask = weight_vector_mask(ho, v=4)
        assert mask.shape == (2, 3)
        assert not mask.any()

    def test_single_nonzero_marks_vector(self):
        ho = np.zeros((8, 2), dtype=int)
        ho[5, 1] = 3
        mask = weight_vector_mask(ho, v=4)
        assert mask[1, 1]
        assert mask.sum() == 1

    def test_vectors_run_along_rows(self):
        """A 4x1 weight vector covers 4 consecutive output rows of one k."""
        ho = np.zeros((4, 4), dtype=int)
        ho[0, 2] = 1
        mask = weight_vector_mask(ho, v=4)
        assert mask.shape == (1, 4)
        assert list(mask[0]) == [False, False, True, False]

    def test_ragged_m_padded_with_compress_value(self):
        ho = np.ones((5, 1), dtype=int)
        mask = weight_vector_mask(ho, v=4)
        assert mask.shape == (2, 1)
        assert mask.all()


class TestActivationMask:
    def test_r_valued_compressible(self):
        ho = np.full((3, 8), 10, dtype=int)
        mask = activation_vector_mask(ho, v=4, compress_value=10)
        assert not mask.any()

    def test_vectors_run_along_columns(self):
        """A 1x4 activation vector covers 4 consecutive tokens of one k."""
        ho = np.full((2, 8), 5, dtype=int)
        ho[1, 6] = 0
        mask = activation_vector_mask(ho, v=4, compress_value=5)
        assert mask.shape == (2, 2)
        assert mask[1, 1] and mask.sum() == 1

    def test_zero_compress_value_for_symmetric(self):
        ho = np.zeros((2, 4), dtype=int)
        assert not activation_vector_mask(ho, v=4, compress_value=0).any()


class TestExpand:
    def test_weight_expand_round_trip(self):
        ho = np.random.default_rng(0).integers(0, 2, (12, 5))
        mask = weight_vector_mask(ho, v=4)
        expanded = expand_weight_mask(mask, 4, 12)
        assert expanded.shape == (12, 5)
        # every row of an uncompressed vector is marked
        assert np.array_equal(expanded[::4], mask)

    def test_activation_expand_truncates(self):
        mask = np.ones((3, 2), dtype=bool)
        expanded = expand_activation_mask(mask, 4, 7)
        assert expanded.shape == (3, 7)


class TestVectorSparsity:
    def test_empty(self):
        assert vector_sparsity(np.zeros((0, 0), dtype=bool)) == 0.0

    def test_all_compressed(self):
        assert vector_sparsity(np.zeros((4, 4), dtype=bool)) == 1.0

    def test_half(self):
        mask = np.array([[True, False], [False, True]])
        assert vector_sparsity(mask) == pytest.approx(0.5)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 40), st.integers(1, 10), st.integers(0, 15))
def test_property_vector_sparsity_lower_bounds_slice_sparsity(m, k, r):
    """Grouping can only lose sparsity: rho_vector <= rho_slice."""
    rng = np.random.default_rng(m * 1000 + k)
    ho = rng.choice([r, r + 1], size=(k, m), p=[0.8, 0.2])
    mask = activation_vector_mask(ho, v=4, compress_value=r)
    slice_sp = float(np.mean(ho == r))
    assert vector_sparsity(mask) <= slice_sp + 1e-9
