"""Collects the gateway benchmark's gate functions into the tier-1 run.

``benchmarks/bench_gateway.py`` defines pytest-style gates (networked
responses bit-exact vs serial ``session.run``, admission conservation
under shed, the deadline-beats-fixed-``max_delay`` p99 criterion), but the
file name does not match pytest's ``test_*.py`` pattern, so on its own it
is never collected — a regression that broke transport exactness or
admission accounting would ship green.  This wrapper imports the bench
module and re-exports its gates so plain ``pytest`` (local and CI) runs
them.

The wall-clock policy-comparison gate is opt-in
(``REPRO_RUN_THROUGHPUT_GATE=1``) and skips *explicitly* on hosts below
its core floor, naming the core count — via
``benchmarks._util.throughput_gate_or_skip``, the shared precondition of
every speedup gate — so a lane where the gate cannot bind shows a skip
reason, never a hollow pass.  The exactness and conservation gates run
everywhere, unconditionally.
"""

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_gateway  # noqa: E402  (needs the path shim above)

test_gateway_responses_bit_exact = \
    bench_gateway.test_gateway_responses_bit_exact
test_gateway_admission_conserved_under_shed = \
    bench_gateway.test_gateway_admission_conserved_under_shed
test_deadline_beats_fixed_delay_p99 = \
    bench_gateway.test_deadline_beats_fixed_delay_p99
