"""Tests for the baseline accelerator models and the analysis module."""

import numpy as np
import pytest

from repro.hw.accelerator import HwConfig
from repro.hw.analysis import analyze, roofline_point
from repro.hw.report import DesignComparison, compare, relative
from repro.hw.sibia import SibiaConfig, SibiaModel
from repro.hw.simd import SimdConfig, SimdModel
from repro.hw.systolic import SystolicConfig, SystolicModel
from repro.models.workloads import synthetic_profile


def _profile(rho_w=0.5, rho_x=0.9, m=512, k=512, n=512, seed=0):
    return synthetic_profile(m, k, n, rho_w, rho_x, seed=seed)


class TestSibiaModel:
    def test_budget_matches_panacea(self):
        assert SibiaConfig().n_mul4 == 3072

    def test_only_max_side_exploited(self):
        """Table I: Sibia's speedup follows max(rho_w, rho_x)."""
        model = SibiaModel()
        base = model.simulate_model([_profile(0.0, 0.0)], "a")
        only_x = model.simulate_model([_profile(0.0, 0.9)], "b")
        both = model.simulate_model([_profile(0.9, 0.9)], "c")
        sp_only = base.total_cycles / only_x.total_cycles
        sp_both = base.total_cycles / both.total_cycles
        # adding the second side's sparsity buys Sibia very little
        assert sp_only > 1.2
        assert sp_both < sp_only * 1.4

    def test_dense_ema(self):
        """Sibia ships uncompressed operands."""
        model = SibiaModel()
        rng = np.random.default_rng(0)
        sparse = model.simulate_layer(_profile(0.9, 0.9), rng)
        dense = model.simulate_layer(_profile(0.0, 0.0), rng)
        assert sparse.ema_bytes == pytest.approx(dense.ema_bytes, rel=0.01)

    def test_tracked_side_picks_max(self):
        assert SibiaModel._tracked(_profile(0.9, 0.2)) == "weight"
        assert SibiaModel._tracked(_profile(0.2, 0.9)) == "activation"

    def test_4bit_weights_track_activation(self):
        prof = synthetic_profile(256, 256, 256, 0.9, 0.5, w_bits=4)
        assert SibiaModel._tracked(prof) == "activation"


class TestSimdModel:
    def test_throughput_matches_lanes(self):
        model = SimdModel(arch=SimdConfig(n_lanes=768, utilization=1.0))
        perf = model.simulate_model([_profile(0.0, 0.0)], "x")
        macs = 512 ** 3
        assert perf.layers[0].compute_cycles == pytest.approx(macs / 768)

    def test_sparsity_blind(self):
        model = SimdModel()
        a = model.simulate_model([_profile(0.0, 0.0)], "a")
        b = model.simulate_model([_profile(0.9, 0.9)], "b")
        assert a.total_cycles == pytest.approx(b.total_cycles, rel=1e-6)


class TestSystolicModels:
    def test_dataflow_validation(self):
        with pytest.raises(ValueError):
            SystolicConfig(dataflow="diagonal")

    def test_ws_pays_psum_traffic_when_k_tiled(self):
        hw = HwConfig()
        rng = np.random.default_rng(0)
        ws = SystolicModel(hw, SystolicConfig(dataflow="ws"))
        os_ = SystolicModel(hw, SystolicConfig(dataflow="os"))
        prof = _profile(0.0, 0.0, m=256, k=960, n=256)  # K >> array cols
        perf_ws = ws.simulate_layer(prof, rng)
        perf_os = os_.simulate_layer(prof, rng)
        assert perf_ws.sram_bytes > perf_os.sram_bytes

    def test_fill_drain_overhead_visible(self):
        """Systolic fill/drain keeps SA throughput below SIMD's for odd
        shapes (the paper's Fig. 13 ordering)."""
        hw = HwConfig()
        prof = _profile(0.0, 0.0, m=512, k=512, n=512)
        sa = SystolicModel(hw, SystolicConfig(dataflow="ws")).simulate_model(
            [prof], "a")
        simd = SimdModel(hw).simulate_model([prof], "a")
        assert simd.tops >= sa.tops

    def test_names(self):
        assert SystolicModel(arch=SystolicConfig(dataflow="ws")).name == "sa_ws"
        assert SystolicModel(arch=SystolicConfig(dataflow="os")).name == "sa_os"


class TestReports:
    def _perfs(self):
        from repro.hw.panacea import PanaceaModel

        prof = _profile()
        return [
            PanaceaModel().simulate_model([prof], "toy"),
            SibiaModel().simulate_model([prof], "toy"),
        ]

    def test_compare_rows(self):
        rows = compare(self._perfs())
        assert {r.accelerator for r in rows} == {"panacea", "sibia"}
        assert all(r.tops > 0 and r.energy_mj > 0 for r in rows)

    def test_relative_normalizes_baseline(self):
        rel = relative(self._perfs(), baseline="sibia")
        assert rel["sibia"] == pytest.approx(1.0)
        assert rel["panacea"] > 1.0

    def test_relative_unknown_baseline(self):
        with pytest.raises(KeyError):
            relative(self._perfs(), baseline="tpu")

    def test_design_comparison_from_perf(self):
        perf = self._perfs()[0]
        row = DesignComparison.from_perf(perf)
        assert row.latency_ms == pytest.approx(perf.latency_s * 1e3)


class TestAnalysis:
    def test_bound_classification(self):
        from repro.hw.panacea import PanaceaModel

        perf = PanaceaModel().simulate_model(
            [_profile(seed=i) for i in range(3)], "toy")
        report = analyze(perf)
        assert len(report.layers) == 3
        assert all(l.bound in ("compute", "dram") for l in report.layers)
        assert 0.0 <= report.dram_bound_fraction <= 1.0

    def test_roofline_point_positive(self):
        from repro.hw.panacea import PanaceaModel

        perf = PanaceaModel().simulate_model([_profile()], "toy")
        assert roofline_point(perf.layers[0]) > 0

    def test_worst_layers_sorted(self):
        from repro.hw.panacea import PanaceaModel

        perf = PanaceaModel().simulate_model(
            [_profile(seed=i, n=128 * (i + 1)) for i in range(4)], "toy")
        worst = analyze(perf).worst_layers(2)
        assert len(worst) == 2
        assert worst[0].slack >= worst[1].slack

    def test_machine_balance(self):
        report = analyze(
            __import__("repro.hw.panacea", fromlist=["PanaceaModel"])
            .PanaceaModel().simulate_model([_profile()], "toy"))
        assert report.machine_balance == pytest.approx(768 / 32.0)
