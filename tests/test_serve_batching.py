"""Tests for dynamic micro-batching: policy triggers, bit-exactness, FIFO."""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.transformer import CausalLM
from repro.engine import ServiceModel
from repro.serve import (BatchPolicy, DeadlinePolicy, LatencyStats,
                         MicroBatcher)


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _batches(n=3, seed=0, rows=4):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (rows, 16)) for _ in range(n)]


def _session(seed=0, **kwargs):
    return PanaceaSession(TinyNet(seed), PtqConfig(scheme="aqs"),
                         calibration=_batches(seed=seed), **kwargs)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1 and policy.max_delay_s >= 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay_s=-1.0)


class TestCoalescedBitExactness:
    def test_run_coalesced_matches_solo_runs(self):
        reqs = _batches(5, seed=7, rows=2)
        solo = _session(seed=1)
        coal = _session(seed=1)
        solo_outs = [solo.run(r) for r in reqs]
        coal_outs = coal.run_coalesced(reqs)
        for a, b in zip(solo_outs, coal_outs):
            assert np.array_equal(a, b)

    def test_ragged_batch_sizes(self):
        rng = np.random.default_rng(3)
        reqs = [rng.normal(0, 1, (rows, 16)) for rows in (1, 3, 2)]
        solo = _session(seed=2)
        coal = _session(seed=2)
        solo_outs = [solo.run(r) for r in reqs]
        coal_outs = coal.run_coalesced(reqs)
        for a, b, r in zip(solo_outs, coal_outs, reqs):
            assert b.shape[0] == r.shape[0]
            assert np.array_equal(a, b)

    def test_padded_causal_lm(self):
        rng = np.random.default_rng(4)
        def lm():
            return CausalLM(vocab=64, dim=32, n_layers=1, n_heads=2,
                            mlp_hidden=64, seed=0)
        calib = [rng.integers(0, 64, (2, 12)) for _ in range(3)]
        solo = PanaceaSession(lm(), PtqConfig(scheme="aqs"),
                              calibration=calib)
        coal = PanaceaSession(lm(), PtqConfig(scheme="aqs"),
                              calibration=calib)
        reqs = [rng.integers(0, 64, (1, length)) for length in (9, 12, 5)]
        solo_outs = [solo.run(r) for r in reqs]
        coal_outs = coal.run_coalesced(reqs, pad_axis=1)
        for a, b, r in zip(solo_outs, coal_outs, reqs):
            assert b.shape[1] == r.shape[1]  # padding sliced back off
            assert np.array_equal(a, b)

    def test_mismatched_trailing_dims_need_pad_axis(self):
        rng = np.random.default_rng(5)
        session = _session(seed=3)
        with pytest.raises(ValueError, match="pad_axis"):
            session.run_coalesced([rng.normal(0, 1, (2, 16)),
                                   rng.normal(0, 1, (2, 12))])

    def test_mismatched_rank_rejected(self):
        rng = np.random.default_rng(6)
        session = _session(seed=3)
        with pytest.raises(ValueError, match="rank"):
            session.run_coalesced([rng.normal(0, 1, (2, 16)),
                                   rng.normal(0, 1, (2, 2, 16))])

    def test_unprepared_session_rejected(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        with pytest.raises(RuntimeError, match="calibrated"):
            session.run_coalesced(_batches(2, seed=8))

    def test_auto_calibrate_opt_in_covers_coalesced_path(self):
        """A server-accepted auto_calibrate session must serve its first
        coalesced batch, not raise (the opt-in applies to both run paths)."""
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 auto_calibrate=True)
        outs = session.run_coalesced(_batches(3, seed=23, rows=2))
        assert session.prepared
        assert [o.shape for o in outs] == [(2, 8)] * 3

    def test_empty_and_single(self):
        session = _session(seed=4)
        assert session.run_coalesced([]) == []
        out = session.run_coalesced(_batches(1, seed=9))
        assert len(out) == 1 and out[0].shape == (4, 8)


class TestTraceAttribution:
    def test_one_record_per_request(self):
        session = _session(seed=5)
        reqs = _batches(3, seed=10, rows=2)
        session.run_coalesced(reqs)
        assert [r.request_id for r in session.requests] == [0, 1, 2]
        assert all(r.coalesced == 3 for r in session.requests)
        assert all(len(r.layers) == 2 for r in session.requests)
        assert all(r.latency_s > 0 for r in session.requests)

    def test_split_ops_conserve_batch_totals(self):
        session = _session(seed=6)
        reqs = _batches(4, seed=11, rows=3)
        session.run_coalesced(reqs)
        total = session.total_ops()
        split = sum(r.total_ops().mul4 for r in session.requests)
        assert split == total.mul4 > 0
        split_ema = sum(r.total_ops().ema_nibbles for r in session.requests)
        assert split_ema == total.ema_nibbles > 0

    def test_columns_apportioned_by_row_share(self):
        session = _session(seed=7)
        rng = np.random.default_rng(12)
        reqs = [rng.normal(0, 1, (rows, 16)) for rows in (1, 3)]
        session.run_coalesced(reqs)
        n0 = session.requests[0].layers[0].n
        n1 = session.requests[1].layers[0].n
        assert n0 + n1 == 4      # fused columns
        assert n1 == 3 * n0      # proportional to rows

    def test_trace_stays_positionally_consistent(self):
        """Retention trims positionally; coalesced splits must preserve
        the one-record-block-per-request layout."""
        session = _session(seed=8, max_records=2)
        session.run_coalesced(_batches(3, seed=13, rows=2))
        assert len(session.requests) == 2
        assert len(session.trace.records) == sum(
            len(r.layers) for r in session.requests)


class TestMicroBatcher:
    def test_full_batch_fires_immediately(self):
        batcher = MicroBatcher(_session(seed=9),
                               BatchPolicy(max_batch=3, max_delay_s=60.0))
        tickets = [batcher.submit(b) for b in _batches(3, seed=14, rows=2)]
        assert all(t.done for t in tickets)
        assert batcher.depth == 0
        assert all(t.batch_size == 3 for t in tickets)

    def test_partial_batch_waits_for_delay(self):
        clock = FakeClock()
        batcher = MicroBatcher(_session(seed=10),
                               BatchPolicy(max_batch=8, max_delay_s=0.5),
                               clock=clock)
        ticket = batcher.submit(_batches(1, seed=15, rows=2)[0])
        assert not ticket.done
        assert batcher.pump() == 0          # deadline not reached
        clock.advance(0.6)
        assert batcher.pump() == 1
        assert ticket.done

    def test_result_forces_service(self):
        batcher = MicroBatcher(_session(seed=11),
                               BatchPolicy(max_batch=8, max_delay_s=60.0))
        reqs = _batches(2, seed=16, rows=2)
        t1, t2 = (batcher.submit(b) for b in reqs)
        out = t2.result()                   # forces t1 too (FIFO)
        assert t1.done and t2.done
        assert out.shape == (2, 8)

    def test_fifo_order_and_exactness(self):
        reqs = _batches(6, seed=17, rows=2)
        solo = _session(seed=12)
        solo_outs = [solo.run(r) for r in reqs]
        batcher = MicroBatcher(_session(seed=12),
                               BatchPolicy(max_batch=4, max_delay_s=0.0))
        tickets = [batcher.submit(r) for r in reqs]
        batcher.flush()
        for ticket, expect in zip(tickets, solo_outs):
            assert np.array_equal(ticket.result(), expect)
        ids = [t.record.request_id for t in tickets]
        assert ids == sorted(ids)           # FIFO service order

    def test_max_batch_one_is_per_request(self):
        batcher = MicroBatcher(_session(seed=13),
                               BatchPolicy(max_batch=1, max_delay_s=60.0))
        tickets = [batcher.submit(b) for b in _batches(3, seed=18, rows=2)]
        assert all(t.done and t.batch_size == 1 for t in tickets)
        assert batcher.n_batches == 3

    def test_ticket_metrics(self):
        clock = FakeClock()
        batcher = MicroBatcher(_session(seed=14),
                               BatchPolicy(max_batch=2, max_delay_s=60.0),
                               clock=clock)
        t1 = batcher.submit(_batches(1, seed=19, rows=2)[0])
        clock.advance(0.25)
        t2 = batcher.submit(_batches(1, seed=20, rows=2)[0])
        assert t1.done and t2.done
        assert t1.queue_depth_at_submit == 0
        assert t2.queue_depth_at_submit == 1
        assert t1.queue_wait_s >= t2.queue_wait_s
        assert t1.record is not None and t1.record.coalesced == 2

    def test_stats_summary(self):
        batcher = MicroBatcher(_session(seed=15),
                               BatchPolicy(max_batch=2, max_delay_s=0.0))
        for b in _batches(4, seed=21, rows=2):
            batcher.submit(b)
        stats = batcher.stats()
        assert stats["n_requests"] == 4
        assert stats["n_batches"] == 2
        assert stats["mean_batch_size"] == 2.0
        assert stats["policy"]["max_batch"] == 2
        assert stats["queue_wait"]["count"] == 4

    def test_failed_batch_fails_every_rider(self):
        """A poison request must not strand the valid tickets that rode
        with it: all riders carry the error and result() re-raises it."""
        batcher = MicroBatcher(_session(seed=17),
                               BatchPolicy(max_batch=2, max_delay_s=60.0))
        good = batcher.submit(_batches(1, seed=24, rows=2)[0])
        rng = np.random.default_rng(25)
        with pytest.raises(ValueError, match="trailing dims"):
            batcher.submit(rng.normal(0, 1, (2, 12)))  # wrong feature dim
        assert good.done and good.error is not None
        with pytest.raises(ValueError, match="trailing dims"):
            good.result()
        assert batcher.depth == 0
        assert batcher.stats()["n_failed"] == 2
        # The batcher stays serviceable after a failed batch.
        ticket = batcher.submit(_batches(1, seed=26, rows=2)[0])
        batcher.flush()
        assert ticket.result().shape == (2, 8)

    def test_retention_trimmed_records_leave_ticket_without_record(self):
        session = _session(seed=16, max_records=1)
        batcher = MicroBatcher(session, BatchPolicy(max_batch=3,
                                                    max_delay_s=0.0))
        tickets = [batcher.submit(b) for b in _batches(3, seed=22, rows=2)]
        assert all(t.done for t in tickets)
        # Only the newest record is retained; older tickets lose theirs but
        # still carry outputs and metrics.
        assert tickets[-1].record is not None
        assert all(t.result().shape == (2, 8) for t in tickets)


class TestLatencyStats:
    def test_exact_lifetime_aggregates(self):
        stats = LatencyStats(max_samples=4)
        for v in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
            stats.observe(v)
        assert stats.count == 6
        assert stats.min_s == pytest.approx(0.1)
        assert stats.max_s == pytest.approx(0.6)
        assert stats.mean_s == pytest.approx(0.35)

    def test_percentiles_over_window(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.observe(v / 1000)
        assert stats.percentile(50) == pytest.approx(0.050)
        assert stats.percentile(95) == pytest.approx(0.095)
        assert stats.percentile(100) == pytest.approx(0.100)

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.observe(0.1)
        b.observe(0.3)
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.mean_s == pytest.approx(0.2)
        assert merged.max_s == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyStats(max_samples=0)
        with pytest.raises(ValueError):
            LatencyStats().observe(-1.0)
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_summary_empty(self):
        summary = LatencyStats().summary()
        assert summary["count"] == 0
        assert summary["max_ms"] == 0.0


class TestDeadlinePolicy:
    """SLO-slack release: edge cases the gateway's scheduling rests on."""

    def test_service_none_falls_back_to_fixed_delay(self):
        """Empty profile / no service model: behaves exactly like the
        fixed max_delay policy it extends."""
        policy = DeadlinePolicy(max_batch=8, max_delay_s=0.5, slo_s=0.25)
        assert policy.release_wait_s(1) == 0.5
        assert policy.release_wait_s(8) == 0.5
        assert policy.max_wait_s == 0.5
        clock = FakeClock()
        batcher = MicroBatcher(_session(seed=30), policy, clock=clock)
        ticket = batcher.submit(_batches(1, seed=31, rows=2)[0])
        assert batcher.pump() == 0          # fixed deadline not reached
        clock.advance(0.6)
        assert batcher.pump() == 1 and ticket.done

    def test_already_expired_deadline_releases_immediately(self):
        """Expected service alone exceeds the SLO: zero slack, so the
        batch must release on the very next pump without any wait."""
        service = ServiceModel(base_s=0.3, per_item_s=0.0)
        policy = DeadlinePolicy(max_batch=8, max_delay_s=60.0, slo_s=0.05,
                                service=service)
        assert policy.release_wait_s(1) == 0.0
        clock = FakeClock()
        batcher = MicroBatcher(_session(seed=32), policy, clock=clock)
        ticket = batcher.submit(_batches(1, seed=33, rows=2)[0])
        assert batcher.pump() == 1          # no clock advance needed
        assert ticket.done and ticket.batch_size == 1

    def test_wait_shrinks_as_riders_deepen(self):
        """A fuller batch costs more service, so the same SLO leaves less
        room to wait; depth clamps at max_batch and 0 reads as 1."""
        service = ServiceModel(base_s=0.005, per_item_s=0.005)
        policy = DeadlinePolicy(max_batch=4, max_delay_s=60.0, slo_s=0.1,
                                service=service)
        waits = [policy.release_wait_s(depth) for depth in (1, 2, 3, 4)]
        assert waits == sorted(waits, reverse=True)
        assert waits[0] == pytest.approx(0.1 - 0.01)
        assert waits[3] == pytest.approx(0.1 - 0.025)
        assert policy.release_wait_s(99) == policy.release_wait_s(4)
        assert policy.release_wait_s(0) == policy.release_wait_s(1)
        assert policy.max_wait_s == 0.1     # worst case: the SLO itself

    def test_all_same_deadline_fires_as_one_batch(self):
        """Tickets submitted at the same instant share one deadline: when
        it lapses, one pump releases them as a single batch."""
        clock = FakeClock()
        service = ServiceModel(base_s=0.01, per_item_s=0.0)
        policy = DeadlinePolicy(max_batch=8, max_delay_s=60.0, slo_s=0.2,
                                service=service)
        batcher = MicroBatcher(_session(seed=34), policy, clock=clock)
        tickets = [batcher.submit(b) for b in _batches(3, seed=35, rows=2)]
        assert batcher.pump() == 0
        clock.advance(policy.release_wait_s(3) + 1e-9)
        assert batcher.pump() == 3
        assert all(t.done and t.batch_size == 3 for t in tickets)

    def test_from_profile_builds_service_model(self):
        session = _session(seed=36)
        report = session.profile(_batches(1, seed=37)[0], repeats=2)
        policy = DeadlinePolicy.from_profile(report, slo_s=0.5, max_batch=4)
        assert policy.service is not None
        assert policy.service.base_s >= 0.0
        assert policy.service.expected_s(4) > policy.service.expected_s(0)
        assert 0.0 < policy.release_wait_s(1) < 0.5
        assert policy.max_wait_s == 0.5

    def test_bit_exact_vs_solo_under_deadline_policy(self):
        """The release policy is scheduling-only: coalesced outputs equal
        solo runs bit for bit."""
        reqs = _batches(5, seed=38, rows=2)
        solo = _session(seed=20)
        expected = [solo.run(r) for r in reqs]
        service = ServiceModel(base_s=0.001, per_item_s=0.001)
        batcher = MicroBatcher(
            _session(seed=20),
            DeadlinePolicy(max_batch=3, max_delay_s=60.0, slo_s=30.0,
                           service=service))
        tickets = [batcher.submit(r) for r in reqs]
        batcher.flush()
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)

    def test_stats_surface_slo(self):
        batcher = MicroBatcher(
            _session(seed=39),
            DeadlinePolicy(max_batch=2, max_delay_s=0.0, slo_s=0.07))
        batcher.submit(_batches(1, seed=40, rows=2)[0])
        batcher.flush()
        assert batcher.stats()["policy"]["slo_s"] == 0.07

    def test_validation(self):
        with pytest.raises(ValueError, match="slo_s"):
            DeadlinePolicy(slo_s=0.0)
        with pytest.raises(ValueError, match="base_s"):
            ServiceModel(base_s=-1.0, per_item_s=0.0)
        with pytest.raises(ValueError, match="per_item_s"):
            ServiceModel(base_s=0.0, per_item_s=-1.0)
