"""Tests for ResultCache: content addressing, LRU byte budget, isolation."""

import numpy as np
import pytest

from repro.serve import ResultCache, request_key


def _arr(seed=0, shape=(4, 4), dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 1, shape).astype(dtype)


class TestRequestKey:
    def test_identical_content_same_key(self):
        a = _arr(1)
        assert request_key(a) == request_key(a.copy())

    def test_different_content_different_key(self):
        assert request_key(_arr(1)) != request_key(_arr(2))

    def test_shape_disambiguates_same_bytes(self):
        a = np.arange(12.0).reshape(3, 4)
        b = np.arange(12.0).reshape(4, 3)
        assert request_key(a) != request_key(b)

    def test_dtype_disambiguates(self):
        a = np.zeros(4, dtype=np.int32)
        b = np.zeros(4, dtype=np.float32)   # same byte width, same bytes
        assert request_key(a) != request_key(b)

    def test_non_contiguous_input_ok(self):
        base = _arr(3, shape=(8, 8))
        view = base[::2, ::2]
        assert request_key(view) == request_key(np.ascontiguousarray(view))


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = ResultCache(1 << 20)
        x, out = _arr(1), _arr(2)
        assert cache.get(x) is None
        assert cache.put(x, out)
        hit = cache.get(x)
        assert np.array_equal(hit, out)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_returns_independent_copy(self):
        """A caller mutating its result must not corrupt later hits."""
        cache = ResultCache(1 << 20)
        x, out = _arr(1), _arr(2)
        cache.put(x, out)
        first = cache.get(x)
        first[:] = 0.0
        second = cache.get(x)
        assert np.array_equal(second, out)

    def test_put_copies_output(self):
        """Mutating the original output after put must not poison the cache."""
        cache = ResultCache(1 << 20)
        x, out = _arr(1), _arr(2)
        expected = out.copy()
        cache.put(x, out)
        out[:] = -1.0
        assert np.array_equal(cache.get(x), expected)

    def test_overwrite_same_key_updates(self):
        cache = ResultCache(1 << 20)
        x = _arr(1)
        cache.put(x, _arr(2))
        cache.put(x, _arr(3))
        assert len(cache) == 1
        assert np.array_equal(cache.get(x), _arr(3))

    def test_copy_false_returns_frozen_stored_array(self):
        """The zero-copy fast path hands back the stored entry itself:
        no memcpy per hit, and the read-only flag keeps it safe."""
        cache = ResultCache(1 << 20)
        x, out = _arr(1), _arr(2)
        cache.put(x, out)
        view = cache.get(x, copy=False)
        assert np.array_equal(view, out)
        assert view.flags.writeable is False
        with pytest.raises(ValueError):
            view[0, 0] = 9.0
        # Same buffer on every zero-copy hit — it IS the stored entry.
        assert cache.get(x, copy=False) is view
        # The default path still returns a private writable copy.
        copied = cache.get(x)
        assert copied is not view and copied.flags.writeable
        copied[:] = 0.0
        assert np.array_equal(cache.get(x, copy=False), out)

    def test_copy_false_survives_eviction(self):
        """Eviction drops the dict reference, never the buffer: a view
        handed out before eviction stays valid and unchanged."""
        out = _arr(2, shape=(8, 8))
        cache = ResultCache(out.nbytes + 8)
        x = _arr(1)
        cache.put(x, out)
        view = cache.get(x, copy=False)
        cache.put(_arr(3), _arr(4, shape=(8, 8)))  # evicts the first entry
        assert cache.get(x) is None
        assert np.array_equal(view, out)

    def test_copy_false_counts_hits(self):
        cache = ResultCache(1 << 20)
        x = _arr(1)
        cache.put(x, _arr(2))
        cache.get(x, copy=False)
        cache.get(x, copy=False)
        assert cache.hits == 2 and cache.misses == 0

    def test_precomputed_key_skips_rehash(self):
        """Callers that hash at intake pass ``key=`` and get the same
        entry back on both paths."""
        cache = ResultCache(1 << 20)
        x, out = _arr(1), _arr(2)
        key = request_key(x)
        cache.put(x, out, key=key)
        assert np.array_equal(cache.get(x, key=key), out)
        assert cache.get(x, key=key, copy=False).flags.writeable is False


class TestByteBudget:
    def test_lru_eviction_under_budget(self):
        item = np.zeros(16, dtype=np.float64)       # 128 bytes each
        cache = ResultCache(3 * item.nbytes)
        keys = [_arr(i, shape=(2,)) for i in range(4)]
        for x in keys[:3]:
            cache.put(x, item)
        assert len(cache) == 3
        cache.get(keys[0])                          # refresh key 0
        cache.put(keys[3], item)                    # evicts LRU = key 1
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert cache.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_output_not_stored(self):
        cache = ResultCache(64)
        x = _arr(1)
        assert not cache.put(x, np.zeros(1024, dtype=np.float64))
        assert len(cache) == 0
        assert cache.get(x) is None

    def test_bytes_tracked_exactly(self):
        cache = ResultCache(1 << 20)
        out = np.zeros((8, 8), dtype=np.float64)
        cache.put(_arr(1), out)
        cache.put(_arr(2), out)
        assert cache.current_bytes == 2 * out.nbytes
        assert cache.stats()["bytes"] == 2 * out.nbytes

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(0)


class TestObservability:
    def test_stats_shape(self):
        cache = ResultCache(1 << 10)
        cache.get(_arr(1))
        cache.put(_arr(1), _arr(2, shape=(2,)))
        cache.get(_arr(1))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["insertions"] == 1
        assert stats["max_bytes"] == 1 << 10

    def test_clear(self):
        cache = ResultCache(1 << 10)
        cache.put(_arr(1), _arr(2, shape=(2,)))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.get(_arr(1)) is None
