"""Gateway tests: admission accounting, HTTP transport, failure injection.

Three layers, mirroring the module's guarantees:

* :class:`AdmissionControl` / :class:`TokenBucket` — quota and priority
  semantics under injected clocks, and the conservation invariants
  (``offered == accepted + shed + rejected``,
  ``accepted == completed + failed + cancelled + in_flight``) property-
  tested under random multi-threaded admit/release interleavings with a
  concurrent reader asserting them *mid-flight*;
* the HTTP surface — routing, both array encodings round-tripping
  bit-exactly, typed 404/400/405/429/503 refusals (Retry-After included),
  decode round-trips and chunked streaming, idempotent shutdown;
* failure injection — a process-backend worker killed mid-batch fails
  only its own request (typed ``WorkerCrashError`` over the wire) while
  the gateway keeps serving, and a client dropping its connection
  mid-decode-stream cancels only its own request: concurrent streams
  finish bit-exact and every rollup stays conserved.

The crash test uses a module-level model whose forward hard-exits the
process on a magic batch row count (same technique as
``test_mp_server.py``); everything crossing the spawn boundary lives at
module level so the child can re-import it.
"""

import http.client
import json
import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import DecodeSession, PanaceaSession
from repro.nn import CausalLM
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import (AdmissionControl, AdmissionError, BatchPolicy,
                         DeadlinePolicy, Gateway, GatewayClosedError,
                         ModelServer, QueueFullError, QuotaExceededError,
                         TenantQuota, TokenBucket)

DIM = 12
VOCAB = 48
MAGIC_ROWS = 7  # a forward seeing this many rows kills its process


class _GatewayNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(DIM, 2 * DIM, rng=rng)
        self.fc2 = Linear(2 * DIM, DIM, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


class _CrashyMLP(Module):
    """One quantizable Linear plus a deterministic kill switch."""

    def __init__(self) -> None:
        super().__init__()
        self.fc = Linear(DIM, DIM, rng=np.random.default_rng(11))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[0] == MAGIC_ROWS:
            os._exit(3)
        return self.fc(x)


def _build_crashy():
    return _CrashyMLP()


def _session(seed=0, scheme="aqs"):
    rng = np.random.default_rng(seed + 50)
    calib = [rng.normal(0, 1, (4, DIM)) for _ in range(3)]
    return PanaceaSession(_GatewayNet(seed), PtqConfig.for_scheme(scheme),
                          calibration=calib)


def _crashy_session():
    rng = np.random.default_rng(1)
    session = PanaceaSession(_CrashyMLP(), PtqConfig.for_scheme("aqs"))
    session.calibrate([rng.standard_normal((3, DIM)) for _ in range(2)])
    return session


def _lm_session(seed=0):
    model = CausalLM(VOCAB, 24, 2, 4, 32, seed=seed)
    calib = [np.random.default_rng(seed + 1).integers(0, VOCAB, (2, 10))
             for _ in range(2)]
    return PanaceaSession(model, PtqConfig.for_scheme("aqs"),
                          calibration=calib)


def _post(handle, path, payload, timeout=30):
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(payload),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                json.loads(response.read() or b"{}"))
    finally:
        conn.close()


def _get(handle, path, timeout=30):
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class _FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _FakeClock()
        bucket = TokenBucket(2.0, 3.0, clock=clock)
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()
        clock.t += 0.5                      # refills one token at 2 rps
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_retry_after_estimates_refill(self):
        clock = _FakeClock()
        bucket = TokenBucket(4.0, 1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(0.25)
        clock.t += 0.25
        assert bucket.retry_after_s() == 0.0
        assert bucket.try_take()

    def test_burst_never_exceeded(self):
        clock = _FakeClock()
        bucket = TokenBucket(100.0, 2.0, clock=clock)
        clock.t += 60.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_infinite_rate_never_refuses(self):
        bucket = TokenBucket(float("inf"), 1.0)
        assert all(bucket.try_take() for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_rps"):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(1.0, 0.5)
        with pytest.raises(ValueError, match="rate_rps"):
            TenantQuota(rate_rps=-1.0)
        with pytest.raises(ValueError, match="priority"):
            TenantQuota(priority=-1)


class TestAdmissionControl:
    def test_queue_bound_sheds_typed(self):
        ac = AdmissionControl(max_pending=2, reserve_frac=0.0)
        first = ac.admit("m")
        ac.admit("m")
        with pytest.raises(QueueFullError) as exc_info:
            ac.admit("m")
        assert exc_info.value.status == 503
        ac.release(first, "completed")
        ac.admit("m")                       # slot freed, admits again
        stats = ac.stats()
        assert stats["conserved"]
        assert stats["shed"] == 1

    def test_bound_is_per_deployment(self):
        ac = AdmissionControl(max_pending=1, reserve_frac=0.0)
        ac.admit("a")
        ac.admit("b")                       # different deployment, own bound
        with pytest.raises(QueueFullError):
            ac.admit("a")

    def test_quota_rejects_with_retry_after(self):
        clock = _FakeClock()
        ac = AdmissionControl(
            max_pending=16,
            quotas={"limited": TenantQuota(rate_rps=2.0, burst=1.0)},
            clock=clock)
        ac.admit("m", "limited")
        with pytest.raises(QuotaExceededError) as exc_info:
            ac.admit("m", "limited")
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after_s == pytest.approx(0.5)
        clock.t += 0.5
        ac.admit("m", "limited")            # refilled
        assert ac.stats()["tenants"]["limited"]["rejected"] == 1

    def test_priority_zero_uses_reserved_headroom(self):
        ac = AdmissionControl(
            max_pending=4, reserve_frac=0.25,
            quotas={"gold": TenantQuota(priority=0)})
        for _ in range(3):
            ac.admit("m", "besteffort")     # best-effort limit: 3 of 4
        with pytest.raises(QueueFullError):
            ac.admit("m", "besteffort")
        ac.admit("m", "gold")               # the reserved slot
        with pytest.raises(QueueFullError):
            ac.admit("m", "gold")           # hard bound binds gold too
        stats = ac.stats()
        assert stats["conserved"]
        assert stats["tenants"]["gold"]["accepted"] == 1
        assert stats["tenants"]["besteffort"]["shed"] == 1

    def test_closed_sheds_everything(self):
        ac = AdmissionControl(max_pending=4)
        ticket = ac.admit("m")
        ac.close()
        with pytest.raises(GatewayClosedError):
            ac.admit("m")
        ac.release(ticket, "completed")     # in-flight work still finishes
        assert ac.stats()["conserved"]

    def test_double_release_raises(self):
        ac = AdmissionControl()
        ticket = ac.admit("m")
        ac.release(ticket, "completed")
        with pytest.raises(RuntimeError, match="twice"):
            ac.release(ticket, "completed")

    def test_unknown_outcome_raises(self):
        ac = AdmissionControl()
        ticket = ac.admit("m")
        with pytest.raises(ValueError, match="outcome"):
            ac.release(ticket, "lost")
        ac.release(ticket, "completed")

    def test_random_interleavings_conserve(self):
        """The property test: threads hammer admit/release with random
        outcomes (the 'crash' path is a release as failed, cancellation a
        release as cancelled) while a reader asserts both conservation
        invariants mid-flight; at quiescence every counter closes."""
        ac = AdmissionControl(
            max_pending=6, reserve_frac=0.25,
            quotas={"metered": TenantQuota(rate_rps=2000.0, burst=8.0),
                    "gold": TenantQuota(priority=0)})
        deployments = ("a", "b")
        tenants = ("metered", "gold", "anon")
        outcomes = ("completed", "failed", "cancelled")
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                stats = ac.stats()
                if not stats["conserved"]:
                    violations.append(stats)
                    return

        def worker(seed):
            rng = np.random.default_rng(seed)
            held = []
            for _ in range(400):
                if rng.random() < 0.6 or not held:
                    try:
                        held.append(ac.admit(
                            deployments[int(rng.integers(2))],
                            tenants[int(rng.integers(3))]))
                    except AdmissionError:
                        pass
                else:
                    ticket = held.pop(int(rng.integers(len(held))))
                    ac.release(ticket, outcomes[int(rng.integers(3))])
            for ticket in held:
                ac.release(ticket, "cancelled")

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        workers = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stop.set()
        reader_thread.join()
        assert not violations, violations[:1]
        stats = ac.stats()
        assert stats["conserved"], stats
        assert stats["in_flight"] == 0
        assert stats["offered"] == (stats["accepted"] + stats["shed"]
                                    + stats["rejected"])
        assert stats["accepted"] == (stats["completed"] + stats["failed"]
                                     + stats["cancelled"])
        for name, tenant in stats["tenants"].items():
            assert tenant["offered"] == (tenant["accepted"] + tenant["shed"]
                                         + tenant["rejected"]), name
            assert tenant["accepted"] == (
                tenant["completed"] + tenant["failed"]
                + tenant["cancelled"]), name
            assert tenant["in_flight"] == 0, name


class TestGatewayHttp:
    def _launch(self, server, **kwargs):
        return Gateway.launch(server, **kwargs)

    def test_healthz_and_metrics(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("tiny", _session())
        with self._launch(server) as handle:
            status, body = _get(handle, "/healthz")
            assert status == 200 and body["ok"]
            assert body["deployments"] == ["tiny"]
            status, body = _get(handle, "/metrics")
            assert status == 200
            assert body["admission"]["conserved"]
            assert body["server"]["n_deployments"] == 1
        server.close()

    def test_infer_both_encodings_bit_exact(self):
        session = _session()
        reference = _session()
        server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.001))
        server.register("tiny", session)
        rng = np.random.default_rng(7)
        with self._launch(server) as handle:
            for _ in range(3):
                x = rng.normal(0, 1, (int(rng.integers(1, 5)), DIM))
                expect = reference.run(x)
                import base64
                status, _, body = _post(handle, "/v1/infer/tiny", {
                    "input_b64": base64.b64encode(x.tobytes()).decode(),
                    "dtype": "float64", "shape": list(x.shape)})
                assert status == 200
                got = np.frombuffer(
                    base64.b64decode(body["output_b64"]),
                    dtype=np.dtype(body["dtype"])).reshape(body["shape"])
                assert np.array_equal(got, expect)
                status, _, body = _post(handle, "/v1/infer/tiny",
                                        {"input": x.tolist()})
                assert status == 200
                assert np.array_equal(
                    np.asarray(body["output"], dtype=body["dtype"]), expect)
        server.close()

    def test_typed_refusals(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        with self._launch(server) as handle:
            status, _, body = _post(handle, "/v1/infer/nope",
                                    {"input": [[0.0] * DIM]})
            assert (status, body["error"]) == (404, "UnknownDeployment")
            status, _, body = _post(handle, "/v1/infer/tiny", {"tenant": "x"})
            assert status == 400                    # no input at all
            status, body = _get(handle, "/v1/no/such/route")
            assert status == 404
            conn = http.client.HTTPConnection(handle.host, handle.port,
                                              timeout=10)
            conn.request("GET", "/v1/infer/tiny")   # wrong method
            assert conn.getresponse().status == 405
            conn.close()
        server.close()

    def test_quota_429_over_http(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        quotas = {"limited": TenantQuota(rate_rps=0.01, burst=1.0)}
        with self._launch(server, quotas=quotas) as handle:
            payload = {"input": [[0.0] * DIM], "tenant": "limited"}
            status, _, _ = _post(handle, "/v1/infer/tiny", payload)
            assert status == 200
            status, headers, body = _post(handle, "/v1/infer/tiny", payload)
            assert status == 429
            assert body["error"] == "QuotaExceededError"
            assert body["code"] == "quota"
            assert float(headers["Retry-After"]) > 0
            stats = handle.stats()["admission"]
            assert stats["rejected"] == 1 and stats["conserved"]
        server.close()

    def test_queue_full_503_over_http(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        with self._launch(server, max_pending=1) as handle:
            # Deterministic shed: occupy the only admission slot directly,
            # then the HTTP request must be refused with the typed 503.
            held = handle.gateway.admission.admit("tiny", "squatter")
            status, headers, body = _post(
                handle, "/v1/infer/tiny", {"input": [[0.0] * DIM]})
            assert status == 503
            assert body["error"] == "QueueFullError"
            assert body["code"] == "queue_full"
            assert "Retry-After" in headers
            handle.gateway.admission.release(held, "cancelled")
            status, _, _ = _post(handle, "/v1/infer/tiny",
                                 {"input": [[0.0] * DIM]})
            assert status == 200
            assert handle.stats()["admission"]["conserved"]
        server.close()

    def test_decode_roundtrip_and_stream_bit_exact(self):
        server = ModelServer()
        server.register("lm", _lm_session())
        prompt = [5, 9, 1, 30]
        expect = [int(t) for t in
                  DecodeSession(_lm_session()).generate(
                      np.asarray(prompt), 6)]
        with self._launch(server) as handle:
            status, _, body = _post(handle, "/v1/decode/lm",
                                    {"prompt": prompt, "max_new_tokens": 6})
            assert status == 200
            assert body["tokens"] == expect
            conn = http.client.HTTPConnection(handle.host, handle.port,
                                              timeout=30)
            conn.request("POST", "/v1/decode/lm", body=json.dumps(
                {"prompt": prompt, "max_new_tokens": 6, "stream": True}))
            response = conn.getresponse()
            assert response.status == 200
            streamed, final = [], None
            while True:
                line = response.readline()
                if not line:
                    break
                chunk = json.loads(line)
                if chunk.get("done"):
                    final = chunk
                    break
                streamed.append(chunk["token"])
            conn.close()
            assert streamed == expect
            assert final["n_tokens"] == len(expect)
            status, _, body = _post(handle, "/v1/decode/lm", {"prompt": []})
            assert status == 400
        server.close()

    def test_deadline_policy_deployment_serves(self):
        """A DeadlinePolicy deployment behind the gateway: requests
        complete well before the SLO (the pump thread guarantees release
        at the deadline) and match serial runs bit-exactly."""
        session = _session()
        reference = _session()
        report = session.profile(
            np.random.default_rng(3).normal(0, 1, (4, DIM)), repeats=2)
        policy = DeadlinePolicy.from_profile(report, slo_s=0.05,
                                             max_batch=4,
                                             max_delay_s=0.05)
        server = ModelServer(policy)
        server.register("tiny", session)
        x = np.random.default_rng(4).normal(0, 1, (2, DIM))
        with self._launch(server) as handle:
            t0 = time.perf_counter()
            status, _, body = _post(handle, "/v1/infer/tiny",
                                    {"input": x.tolist()})
            wall = time.perf_counter() - t0
            assert status == 200
            assert np.array_equal(np.asarray(body["output"]),
                                  reference.run(x))
            assert wall < 5.0               # released, not stuck
        server.close()

    def test_close_is_idempotent_and_refuses_after(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0))
        server.register("tiny", _session())
        handle = Gateway.launch(server)
        port = handle.port
        handle.close()
        handle.close()                      # second close is a no-op
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(handle.host, port, timeout=2)
            conn.request("GET", "/healthz")
            conn.getresponse()
        server.close()


class TestFailureInjection:
    def test_worker_crash_fails_only_that_request(self):
        """Kill a process-backend worker mid-batch through the network
        path: the poisoned request gets a typed 500, every other request
        serves bit-exactly before and after, and both the admission and
        server rollups stay conserved."""
        reference = _crashy_session()
        rng = np.random.default_rng(5)
        good = [rng.standard_normal((3, DIM)) for _ in range(4)]
        expected = [reference.run(x) for x in good]
        poison = rng.standard_normal((MAGIC_ROWS, DIM))
        policy = BatchPolicy(max_batch=1, max_delay_s=0.0)
        with ModelServer(policy, workers=2, backend="process") as server:
            server.register("crashy", _crashy_session(),
                            model_factory=_build_crashy)
            with Gateway.launch(server) as handle:
                for x, expect in zip(good[:2], expected[:2]):
                    status, _, body = _post(handle, "/v1/infer/crashy",
                                            {"input": x.tolist()})
                    assert status == 200
                    assert np.array_equal(np.asarray(body["output"]),
                                          expect)
                status, _, body = _post(handle, "/v1/infer/crashy",
                                        {"input": poison.tolist()})
                assert status == 500
                assert body["error"] == "WorkerCrashError"
                # The pool respawned; the gateway keeps serving bit-exact.
                for x, expect in zip(good[2:], expected[2:]):
                    status, _, body = _post(handle, "/v1/infer/crashy",
                                            {"input": x.tolist()},
                                            timeout=60)
                    assert status == 200
                    assert np.array_equal(np.asarray(body["output"]),
                                          expect)
                stats = handle.stats()
                admission = stats["admission"]
                assert admission["conserved"]
                assert admission["completed"] == 4
                assert admission["failed"] == 1
                assert stats["server"]["n_failed"] == 1
                assert stats["server"]["n_requests"] == 4

    def test_client_drop_mid_stream_cancels_only_that_request(self):
        """Drop a connection mid-decode-stream while a second stream runs:
        the dropped request cancels (admission + decoder counters agree),
        the surviving stream's tokens equal the solo decode bit-exactly,
        and the gateway keeps serving afterwards."""
        server = ModelServer()
        server.register("lm", _lm_session())
        prompt = [3, 11, 7, 2]
        survivor_prompt = [1, 2, 3]
        expect_survivor = [int(t) for t in
                           DecodeSession(_lm_session()).generate(
                               np.asarray(survivor_prompt), 8)]
        with Gateway.launch(server) as handle:
            survivor_result = {}

            def survivor():
                status, _, body = _post(
                    handle, "/v1/decode/lm",
                    {"prompt": survivor_prompt, "max_new_tokens": 8},
                    timeout=120)
                survivor_result.update(status=status, body=body)

            survivor_thread = threading.Thread(target=survivor)
            survivor_thread.start()
            # Long-running stream on a raw socket: read two chunks, drop.
            payload = json.dumps({"prompt": prompt, "max_new_tokens": 512,
                                  "stream": True}).encode()
            sock = socket.create_connection((handle.host, handle.port),
                                            timeout=30)
            sock.sendall(b"POST /v1/decode/lm HTTP/1.1\r\nHost: t\r\n"
                         + f"Content-Length: {len(payload)}"
                           "\r\n\r\n".encode() + payload)
            received = b""
            while received.count(b"\n") < 4:
                received += sock.recv(4096)
            sock.close()
            survivor_thread.join(timeout=120)
            assert survivor_result["status"] == 200
            assert survivor_result["body"]["tokens"] == expect_survivor
            # The cancellation must land in the counters (the gateway
            # notices EOF asynchronously; poll briefly).
            deadline = time.time() + 10
            while time.time() < deadline:
                admission = handle.stats()["admission"]
                if admission["cancelled"] == 1 and \
                        admission["in_flight"] == 0:
                    break
                time.sleep(0.05)
            assert admission["cancelled"] == 1, admission
            assert admission["conserved"], admission
            # Only the dropped request was affected; serving continues.
            status, _, body = _post(handle, "/v1/decode/lm",
                                    {"prompt": prompt, "max_new_tokens": 4})
            assert status == 200 and len(body["tokens"]) == 4
            metrics = server.metrics()
            assert metrics.decode["n_cancelled"] == 1
            assert metrics.decode["n_requests"] == 2
        server.close()


def _get_text(handle, path, timeout=30):
    """GET returning (status, content-type, raw text) — the Prometheus and
    JSONL endpoints, where the body is not JSON."""
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read().decode("utf-8"))
    finally:
        conn.close()


class TestObservabilityHttp:
    """The tracing + Prometheus surface: GET /v1/trace/<id> and
    GET /metrics?format=prometheus."""

    def test_trace_endpoint_returns_complete_span_tree(self):
        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("tiny", _session())
        rng = np.random.default_rng(21)
        with Gateway.launch(server) as handle:
            x = rng.normal(0, 1, (2, DIM))
            status, _, body = _post(handle, "/v1/infer/tiny",
                                    {"input": x.tolist()})
            assert status == 200
            trace_id = body["trace_id"]
            assert len(trace_id) == 16
            status, tree = _get(handle, f"/v1/trace/{trace_id}")
            assert status == 200
            assert tree["trace_id"] == trace_id
            assert tree["status"] == "ok"
            names = sorted(s["name"] for s in tree["spans"])
            assert names == ["batch_release", "engine_execute",
                             "queue_wait", "respond", "tiny"]
            # Every span closed, every parent resolvable, root carries the
            # HTTP ingress annotations.
            ids = {s["span_id"] for s in tree["spans"]}
            for span in tree["spans"]:
                assert span["end_s"] is not None
                assert span["parent_id"] in ids or span["parent_id"] is None
            root, = [s for s in tree["spans"] if s["parent_id"] is None]
            assert root["attrs"]["ingress"] == "http"
            # JSONL export: one object per span, same ids.
            status, ctype, text = _get_text(
                handle, f"/v1/trace/{trace_id}?format=jsonl")
            assert status == 200 and "jsonl" in ctype
            rows = [json.loads(line) for line in text.splitlines()]
            assert {r["span_id"] for r in rows} == ids
        server.close()

    def test_trace_endpoint_unknown_and_garbage_ids(self):
        server = ModelServer()
        server.register("tiny", _session())
        with Gateway.launch(server) as handle:
            status, body = _get(handle, "/v1/trace/00000000000000ff")
            assert (status, body["error"]) == (404, "UnknownTrace")
            status, body = _get(handle, "/v1/trace/not-a-trace-id")
            assert (status, body["error"]) == (404, "UnknownTrace")
        server.close()

    def test_untraced_request_has_no_trace_id(self):
        server = ModelServer(BatchPolicy(max_batch=1, max_delay_s=0.0),
                             trace_sample=0.0)
        server.register("tiny", _session())
        with Gateway.launch(server) as handle:
            status, _, body = _post(handle, "/v1/infer/tiny",
                                    {"input": [[0.0] * DIM]})
            assert status == 200
            assert "trace_id" not in body
        server.close()

    def test_prometheus_exposition_lints_and_conserves(self):
        from prom_lint import lint

        server = ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0))
        server.register("tiny", _session())
        rng = np.random.default_rng(22)
        with Gateway.launch(server) as handle:
            for _ in range(3):
                status, _, _body = _post(
                    handle, "/v1/infer/tiny",
                    {"input": rng.normal(0, 1, (2, DIM)).tolist()})
                assert status == 200
            status, ctype, text = _get_text(handle,
                                            "/metrics?format=prometheus")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert lint(text) == [], lint(text)
            lines = text.splitlines()
            # Both registries in one document: gateway/admission families
            # and server/batcher families.
            assert "# TYPE repro_gateway_http_requests_total counter" \
                in lines
            assert "# TYPE repro_admission_offered_total counter" in lines
            assert "# TYPE repro_batcher_requests_total counter" in lines
            assert "# TYPE repro_batcher_queue_wait_seconds histogram" \
                in lines
            assert 'repro_batcher_requests_total{deployment="tiny"} 3' \
                in lines
            assert "repro_admission_completed_total 3" in lines
            # Conservation invariants ride in the scrape — and hold.
            assert 'repro_gateway_invariant{invariant="admission_conserved"}'\
                ' 1' in lines
            assert 'repro_invariant{invariant="batcher_conserved"} 1' \
                in lines
            # The JSON view is unchanged by the exposition format.
            status, body = _get(handle, "/metrics")
            assert status == 200
            assert body["admission"]["conserved"]
        server.close()

    def test_uptime_and_snapshot_seq_monotonic(self):
        server = ModelServer()
        server.register("tiny", _session())
        with Gateway.launch(server) as handle:
            status, first = _get(handle, "/healthz")
            assert status == 200
            time.sleep(0.01)
            status, second = _get(handle, "/healthz")
            assert second["uptime_s"] > first["uptime_s"] > 0.0
            assert second["snapshot_seq"] == first["snapshot_seq"] + 1
            status, metrics = _get(handle, "/metrics")
            assert metrics["snapshot_seq"] == second["snapshot_seq"] + 1
            assert metrics["uptime_s"] >= second["uptime_s"]
            _status, _ctype, text = _get_text(handle,
                                              "/metrics?format=prometheus")
            seq_line, = [ln for ln in text.splitlines()
                         if ln.startswith("repro_gateway_snapshot_seq ")]
            assert int(seq_line.split()[-1]) == metrics["snapshot_seq"] + 1
        server.close()
