"""KV-cache mechanics and incremental-forward exactness at the nn layer.

The decode stack's foundation: :class:`~repro.nn.attention.LayerKVCache`
(preallocated, geometrically grown, slot-compacted K/V buffers) and
``forward_step`` on :class:`~repro.nn.CausalLM` /
:class:`~repro.nn.attention.MultiHeadAttention`.  Everything above —
:class:`DecodeSession`, :class:`DecodeBatcher`, the server routing — relies
on the invariants pinned here: appended steps reproduce the full forward
(to machine precision on the raw float model; strictly bit-exact through
the quantized engines, see ``TestDecodeFuzz`` in the conformance suite),
growth preserves content, rows compact and reset cleanly, and non-causal
attention refuses the incremental API.
"""

import numpy as np
import pytest

from repro.nn import CausalLM, LayerKVCache
from repro.nn.attention import MultiHeadAttention


def _float_model(block="gpt", n_layers=2, n_heads=4, dim=32, vocab=64,
                 seed=0):
    return CausalLM(vocab, dim, n_layers, n_heads, 48, block=block,
                    n_kv_heads=(2 if block == "llama" else None), seed=seed)


class TestLayerKVCache:
    def test_zeros_init_and_shapes(self):
        cache = LayerKVCache(3, 2, 8, capacity=4)
        assert cache.rows == 3
        assert cache.capacity == 4
        assert cache.k.shape == (3, 2, 4, 8)
        assert cache.v.shape == (3, 2, 4, 8)
        assert not cache.k.any() and not cache.v.any()
        assert cache.lengths.tolist() == [0, 0, 0]

    def test_append_advances_lengths(self):
        cache = LayerKVCache(2, 2, 4, capacity=4)
        k = np.ones((2, 2, 1, 4))
        cache.append(k, 2 * k)
        assert cache.lengths.tolist() == [1, 1]
        assert np.array_equal(cache.k[:, :, 0], k[:, :, 0])
        assert np.array_equal(cache.v[:, :, 0], 2 * k[:, :, 0])

    def test_geometric_growth_preserves_content(self):
        cache = LayerKVCache(2, 2, 4, capacity=2)
        rng = np.random.default_rng(0)
        steps = [rng.normal(size=(2, 2, 1, 4)) for _ in range(7)]
        for k in steps:
            cache.append(k, -k)
        assert cache.capacity >= 7
        assert cache.lengths.tolist() == [7, 7]
        for t, k in enumerate(steps):
            assert np.array_equal(cache.k[:, :, t], k[:, :, 0])
            assert np.array_equal(cache.v[:, :, t], -k[:, :, 0])
        # Unwritten tail stays zero — the trailing-zero exactness invariant.
        assert not cache.k[:, :, 7:].any()

    def test_ragged_rows_append(self):
        """A rows slice appends only into those slots; others untouched."""
        cache = LayerKVCache(3, 1, 2, capacity=4)
        full = np.ones((3, 1, 1, 2))
        cache.append(full, full)
        sub = 5.0 * np.ones((1, 1, 1, 2))
        cache.append(sub, sub, rows=slice(1, 2))
        assert cache.lengths.tolist() == [1, 2, 1]
        assert np.array_equal(cache.k[1, 0, 1], [5.0, 5.0])
        assert not cache.k[0, 0, 1:].any()

    def test_copy_and_reset_row(self):
        cache = LayerKVCache(2, 1, 2, capacity=2)
        k = np.arange(4, dtype=np.float64).reshape(2, 1, 1, 2)
        cache.append(k, k)
        cache.copy_row(1, 0)
        assert np.array_equal(cache.k[0], cache.k[1])
        assert cache.lengths[0] == cache.lengths[1]
        cache.reset_row(1)
        assert cache.lengths[1] == 0
        # Stale K/V may remain past the length — they stay masked (the
        # additive -inf mask zeroes their attention weight exactly), so
        # reset only has to drop the length.
        k_snap, v_snap = cache.snapshot_row(1)
        assert k_snap.shape[1] == 0 and v_snap.shape[1] == 0

    def test_load_and_snapshot_row_round_trip(self):
        cache = LayerKVCache(2, 2, 4, capacity=2)
        rng = np.random.default_rng(1)
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        cache.load_row(0, k, v)
        assert cache.lengths[0] == 5
        got_k, got_v = cache.snapshot_row(0)
        assert np.array_equal(got_k, k) and np.array_equal(got_v, v)
        # Snapshots are owned copies, not views into the live buffer.
        got_k[...] = 0.0
        assert cache.k[0, :, :5].any()

    def test_nbytes_tracks_buffers(self):
        cache = LayerKVCache(1, 1, 8, capacity=4)
        assert cache.nbytes == cache.k.nbytes + cache.v.nbytes


class TestForwardStep:
    @pytest.mark.parametrize("block", ["gpt", "llama"])
    def test_step_matches_full_forward(self, block):
        """Float model, batch 1: stepping token by token reproduces the
        full forward's logits to machine precision.

        The attention einsums are length-stable, but the float model's
        Linears run plain BLAS matmuls whose summation trees shift with
        the fused row count — so the raw float model gets allclose(1e-12),
        while *strict* bit-equality is the quantized engines' property
        (locked down in ``tests/test_conformance_random.py``'s
        ``TestDecodeFuzz``, where integer-valued float64 accumulation
        makes every association exact).
        """
        model = _float_model(block=block)
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 64, (1, 9))
        full = model.forward(ids)
        caches = model.new_kv_cache(1, capacity=2)
        stepped = [model.forward_step(ids[:, :3], caches)]
        for t in range(3, 9):
            stepped.append(model.forward_step(ids[:, t:t + 1], caches))
        got = np.concatenate(stepped, axis=1)
        assert np.allclose(got, full, rtol=1e-12, atol=1e-12), (
            f"{block}: step != full forward")

    @pytest.mark.parametrize("block", ["gpt", "llama"])
    def test_ragged_batch_rows_match_solo(self, block):
        """Rows at different cached lengths stepping together equal each
        row stepping alone — the continuous-batching substrate."""
        model = _float_model(block=block)
        rng = np.random.default_rng(3)
        prompts = [rng.integers(0, 64, (1, n)) for n in (3, 7, 5)]

        solo_logits = []
        for prompt in prompts:
            caches = model.new_kv_cache(1, capacity=2)
            model.forward_step(prompt, caches)
            tok = rng.integers(0, 64, (1, 1))
            solo_logits.append(model.forward_step(tok, caches))
            prompt_tok = tok
            del prompt_tok

        rng = np.random.default_rng(3)
        prompts = [rng.integers(0, 64, (1, n)) for n in (3, 7, 5)]
        caches = model.new_kv_cache(3, capacity=2)
        for i, prompt in enumerate(prompts):
            model.forward_step(prompt, caches, rows=slice(i, i + 1))
        toks = np.concatenate([rng.integers(0, 64, (1, 1))
                               for _ in prompts], axis=0)
        batched = model.forward_step(toks, caches, rows=slice(0, 3))
        for i, expect in enumerate(solo_logits):
            assert np.allclose(batched[i:i + 1], expect,
                               rtol=1e-12, atol=1e-12), (
                f"{block}: ragged row {i} differs from solo decode")

    def test_non_causal_attention_refuses_step(self):
        attn = MultiHeadAttention(16, 4, causal=False,
                                  rng=np.random.default_rng(0))
        cache = attn.new_kv_cache(1)
        with pytest.raises(ValueError, match="causal"):
            attn.forward_step(np.zeros((1, 1, 16)), cache)

    def test_new_kv_cache_one_per_block(self):
        model = _float_model(n_layers=3)
        caches = model.new_kv_cache(2, capacity=8)
        assert len(caches) == 3
        assert all(c.rows == 2 and c.capacity == 8 for c in caches)
