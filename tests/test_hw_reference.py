"""Cross-validation: sampled tile simulation vs exhaustive enumeration."""

import numpy as np
import pytest

from repro.hw.reference import exhaustive_compute_cycles, sampled_vs_exhaustive
from repro.models.workloads import synthetic_profile


def _uncapped_profile(rho_w, rho_x, m=128, k=128, n=128, seed=0):
    return synthetic_profile(m, k, n, rho_w, rho_x, m_cap=m, n_cap=n,
                             seed=seed)


class TestExhaustive:
    def test_requires_uncapped_masks(self):
        prof = synthetic_profile(256, 128, 256, 0.5, 0.5, m_cap=64, n_cap=64)
        with pytest.raises(ValueError):
            exhaustive_compute_cycles(prof)

    def test_dense_matches_closed_form(self):
        """With rho = 0 every step costs the same; exhaustive must equal the
        analytic dense makespan."""
        prof = _uncapped_profile(0.0, 0.0)
        total = exhaustive_compute_cycles(prof)
        # per step: dyn = 3*32 = 96 -> ceil(96/4) = 24; static 32 -> ceil(32/8)=4
        steps = (128 // 64) * (128 // 32) * (128 // 4)
        assert total == steps * 24

    def test_full_sparsity_floor(self):
        """Everything compressible: only the static W_LO x_LO work remains."""
        prof = _uncapped_profile(1.0, 1.0)
        total = exhaustive_compute_cycles(prof)
        steps = (128 // 64) * (128 // 32) * (128 // 4)
        assert total == steps * np.ceil(32 / 8)


class TestSampledAccuracy:
    @pytest.mark.parametrize("rho_w,rho_x", [(0.0, 0.0), (0.5, 0.5),
                                             (0.3, 0.9), (0.9, 0.3)])
    def test_sampled_within_tolerance(self, rho_w, rho_x):
        prof = _uncapped_profile(rho_w, rho_x, seed=7)
        sampled, exact = sampled_vs_exhaustive(prof)
        assert sampled == pytest.approx(exact, rel=0.05)

    def test_sampled_with_dtp(self):
        prof = _uncapped_profile(0.7, 0.8, m=256, seed=3)
        sampled, exact = sampled_vs_exhaustive(prof, dtp=True)
        assert sampled == pytest.approx(exact, rel=0.05)
