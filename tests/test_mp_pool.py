"""ProcessWorkerPool: API parity with WorkerPool, pinning, crash recovery.

Everything here crosses a real process boundary (spawn start method), so
the helpers tasks execute must live at module level — spawn pickles them
by reference and re-imports this module in the child.
"""

import os
import signal
import time

import pytest

from repro.serve import PoolShutdownError, ProcessWorkerPool, WorkerCrashError
from repro.serve.procworker import BLAS_ENV_VARS


def _square(x):
    return x * x


def _pid():
    return os.getpid()


def _boom():
    raise ValueError("deliberate task failure")


def _exit_hard():
    # Simulates a segfault/OOM-kill: no exception, no reply, the process
    # just disappears mid-task.
    os._exit(3)


def _sleep_then(x, delay=0.05):
    time.sleep(delay)
    return x


@pytest.fixture(scope="module")
def pool():
    """One module-scoped pool: spawn is expensive, tasks are cheap.

    Crash tests respawn workers in place, so sharing is safe — every test
    starts with a full complement of live workers.
    """
    with ProcessWorkerPool(2, blas_threads=1) as pool:
        yield pool


def test_submit_round_trips_results(pool):
    futures = [pool.submit(_square, i) for i in range(8)]
    assert [f.result(timeout=30) for f in futures] == [i * i
                                                      for i in range(8)]


def test_run_all_matches_workerpool_semantics(pool):
    import functools

    thunks = [functools.partial(_square, i) for i in range(5)]
    assert pool.run_all(thunks) == [0, 1, 4, 9, 16]


def test_tasks_execute_in_child_processes(pool):
    pids = {pool.submit(_pid).result(timeout=30) for _ in range(8)}
    assert os.getpid() not in pids
    assert pids <= set(pool.pids)


def test_task_exception_propagates_and_worker_survives(pool):
    with pytest.raises(ValueError, match="deliberate task failure"):
        pool.submit(_boom).result(timeout=30)
    # The worker replied with the error rather than dying: no crash was
    # recorded and it keeps serving.
    assert pool.submit(_square, 7).result(timeout=30) == 49


def test_unpicklable_submission_fails_through_future(pool):
    future = pool.submit(lambda: 1)  # lambdas cannot cross the boundary
    with pytest.raises(Exception) as excinfo:
        future.result(timeout=30)
    assert "pickle" in str(excinfo.value).lower()
    assert pool.submit(_square, 3).result(timeout=30) == 9


def test_workers_report_pinned_blas_env(pool):
    reports = pool.ping()
    assert len(reports) == pool.workers
    for report in reports:
        assert report["pid"] != os.getpid()
        for var in BLAS_ENV_VARS:
            assert report["env"][var] == "1", (var, report)


def test_stats_shape(pool):
    pool.submit(_square, 2).result(timeout=30)
    stats = pool.stats()
    assert stats["backend"] == "process"
    assert stats["workers"] == 2
    assert stats["blas_threads"] == 1
    assert stats["n_tasks"] >= 1
    assert stats["n_pipe_fallback"] >= 0
    assert len(stats["per_worker"]) == 2


def test_inflight_crash_fails_only_that_task(pool):
    crashed = pool.submit(_exit_hard)
    with pytest.raises(WorkerCrashError):
        crashed.result(timeout=60)
    # Only the in-flight task died; the pool respawned the worker and
    # later submissions succeed on a full complement.
    assert pool.submit(_square, 5).result(timeout=60) == 25
    stats = pool.stats()
    assert stats["n_crashes"] >= 1
    assert stats["n_respawns"] >= 1
    assert len([p for p in pool.pids if p is not None]) == 2


def test_idle_worker_kill_is_survivable(pool):
    victim = pool.pids[0]
    os.kill(victim, signal.SIGKILL)
    # Tasks routed to the dead worker fail one of two ways: the send
    # errors (task never delivered -> silent respawn + retry, result
    # arrives) or the send lands in the dead socket's buffer and the recv
    # errors (that task alone fails with WorkerCrashError).  Both are
    # recoveries — what must never happen is a hang or a second task
    # failing after the respawn.
    futures = [pool.submit(_square, i) for i in range(6)]
    outcomes = []
    for i, future in enumerate(futures):
        try:
            outcomes.append(future.result(timeout=60))
        except WorkerCrashError:
            outcomes.append(None)
    assert sum(o is None for o in outcomes) <= 1
    assert all(o == i * i for i, o in enumerate(outcomes) if o is not None)
    # Detection is bounded but asynchronous: if the live sibling drained
    # every task above, the corpse is found by the dead slot's idle
    # liveness probe (a ~2ms dispatcher tick), not by a failed send —
    # give it a moment rather than assuming it already won that race.
    deadline = time.monotonic() + 10.0
    while victim in pool.pids and time.monotonic() < deadline:
        time.sleep(0.005)
    assert victim not in pool.pids
    assert pool.submit(_square, 9).result(timeout=60) == 81
    assert len([p for p in pool.pids if p is not None]) == 2


def test_submit_after_shutdown_raises_typed_error():
    pool = ProcessWorkerPool(1, blas_threads=1)
    assert pool.submit(_square, 2).result(timeout=30) == 4
    pool.shutdown(wait=True)
    pool.shutdown(wait=True)  # idempotent
    with pytest.raises(PoolShutdownError, match="shut-down"):
        pool.submit(_square, 2)
    with pytest.raises(PoolShutdownError):
        pool.ping()


def test_concurrent_submissions_all_resolve(pool):
    futures = [pool.submit(_sleep_then, i, 0.01) for i in range(12)]
    assert [f.result(timeout=60) for f in futures] == list(range(12))
