"""Collects the serving benchmark's gate functions into the tier-1 run.

``benchmarks/bench_serving.py`` defines pytest-style gates (coalescing and
concurrent-drain bit-exactness, the workers=4 >= 1.5x criterion, the cache
short-circuit), but the file name does not match pytest's ``test_*.py``
pattern, so on its own it is never collected — a regression that destroys
worker-pool parallelism or cache exactness would ship green.  This wrapper
imports the bench module and re-exports its gates so plain ``pytest``
(local and CI) runs them.

The speedup gate skips *explicitly* below its 4-core floor, naming the
host's core count (``benchmarks._util.throughput_gate_or_skip``), so a
few-core lane reports why the gate could not bind instead of a hollow
pass; the bit-exactness gates run everywhere, unconditionally.
"""

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_serving  # noqa: E402  (needs the path shim above)

test_coalesced_serving_bit_exact = \
    bench_serving.test_coalesced_serving_bit_exact
test_coalesced_beats_per_request_throughput = \
    bench_serving.test_coalesced_beats_per_request_throughput
test_concurrent_drain_bit_exact = \
    bench_serving.test_concurrent_drain_bit_exact
test_concurrent_multi_deployment_speedup = \
    bench_serving.test_concurrent_multi_deployment_speedup
test_result_cache_short_circuits_duplicates = \
    bench_serving.test_result_cache_short_circuits_duplicates
