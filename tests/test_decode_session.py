"""DecodeSession: incremental decode state over one PanaceaSession.

Pins the engine-layer decode contract: prefill/step produce the same
logits the one-shot forward produces (bit-exact through quantized
engines), every model call folds into the session ledger exactly once
(``stats()`` conservation across mixed run/decode traffic), snapshots
seed fresh sessions bit-exactly, and the error surface refuses misuse
up front.
"""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import DecodeSession, PanaceaSession
from repro.nn import CausalLM, TransformerClassifier

VOCAB = 64


def _lm_session(scheme="aqs", seed=0, n_layers=2):
    model = CausalLM(VOCAB, 24, n_layers, 4, 32, seed=seed)
    calib = [np.random.default_rng(seed + 1).integers(0, VOCAB, (2, 10))
             for _ in range(2)]
    return PanaceaSession(model, PtqConfig.for_scheme(scheme),
                          calibration=calib)


class TestConstruction:
    def test_requires_incremental_model(self):
        model = TransformerClassifier(16, 1, 4, 24, 3)
        calib = [np.random.default_rng(0).normal(0, 1, (2, 8, 16))
                 for _ in range(2)]
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"),
                                 calibration=calib)
        with pytest.raises(TypeError, match="forward_step"):
            DecodeSession(session)

    def test_requires_prepared_session(self):
        model = CausalLM(VOCAB, 24, 1, 4, 32)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        with pytest.raises(RuntimeError, match="calibrate"):
            DecodeSession(session)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError, match="temperature"):
            DecodeSession(_lm_session(), temperature=-0.5)


class TestDecoding:
    def test_prefill_then_steps_match_one_shot(self):
        session = _lm_session()
        decoder = DecodeSession(session)
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, VOCAB, 6)
        logits = decoder.prefill(prompt)
        assert logits.shape == (VOCAB,)
        expect = session.run(prompt.reshape(1, -1))[0, -1]
        assert np.array_equal(logits, expect)

        tok = decoder.sample(logits)
        stepped = decoder.step(tok)
        full = np.concatenate([prompt, [tok]]).reshape(1, -1)
        assert np.array_equal(stepped, session.run(full)[0, -1])

    def test_chunked_prefill_equals_one_chunk(self):
        rng = np.random.default_rng(4)
        prompt = rng.integers(0, VOCAB, 8)
        one = DecodeSession(_lm_session())
        chunked = DecodeSession(_lm_session())
        a = one.prefill(prompt)
        chunked.prefill(prompt[:3])
        b = chunked.prefill(prompt[3:])
        assert np.array_equal(a, b)
        assert chunked.position == one.position == 8

    def test_generate_greedy_matches_manual_loop(self):
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, VOCAB, 5)
        gen = DecodeSession(_lm_session())
        out = gen.generate(prompt, 6)
        assert len(out) == 6

        manual = DecodeSession(_lm_session())
        tok = int(np.argmax(manual.prefill(prompt)))
        expect = [tok]
        for _ in range(5):
            tok = int(np.argmax(manual.step(tok)))
            expect.append(tok)
        assert out == expect

    def test_generate_stops_at_eos(self):
        rng = np.random.default_rng(6)
        prompt = rng.integers(0, VOCAB, 4)
        probe = DecodeSession(_lm_session())
        tokens = probe.generate(prompt, 4)
        eos = tokens[1]  # force a stop after two tokens
        decoder = DecodeSession(_lm_session(), eos_token=eos)
        out = decoder.generate(prompt, 4)
        assert out == tokens[:2]

    def test_temperature_sampling_is_seed_deterministic(self):
        rng = np.random.default_rng(7)
        prompt = rng.integers(0, VOCAB, 4)
        a = DecodeSession(_lm_session(), temperature=0.8, seed=11)
        b = DecodeSession(_lm_session(), temperature=0.8, seed=11)
        c = DecodeSession(_lm_session(), temperature=0.8, seed=12)
        out_a = a.generate(prompt, 8)
        assert out_a == b.generate(prompt, 8)
        assert out_a != c.generate(prompt, 8) or True  # may collide; no flake

    def test_step_before_prefill_raises(self):
        decoder = DecodeSession(_lm_session())
        with pytest.raises(RuntimeError, match="prefill"):
            decoder.step(3)

    def test_empty_prefill_raises(self):
        decoder = DecodeSession(_lm_session())
        with pytest.raises(ValueError, match="at least one token"):
            decoder.prefill(np.empty(0, dtype=np.int64))


class TestAccounting:
    def test_stats_conserved_across_mixed_traffic(self):
        """run() batches and decode calls land in one ledger: every model
        call is exactly one request record, lifetime ops accumulate."""
        session = _lm_session()
        rng = np.random.default_rng(8)
        session.run(rng.integers(0, VOCAB, (2, 6)))
        decoder = DecodeSession(session)
        decoder.prefill(rng.integers(0, VOCAB, 5))
        tok = decoder.sample(decoder.step(1))
        del tok
        stats = session.stats()
        # 1 run + 1 prefill + 1 step = 3 requests, one record each.
        assert stats["n_requests"] == 3
        assert stats["n_engine_batches"] == 3
        assert stats["n_retained"] == 3
        assert stats["mul4"] > 0

    def test_decode_records_report_step_shapes(self):
        session = _lm_session()
        decoder = DecodeSession(session)
        decoder.prefill(np.arange(4) % VOCAB)
        decoder.step(2)
        shapes = [r.batch_shape for r in session.requests]
        assert shapes == [(1, 4), (1, 1)]


class TestSnapshotSeed:
    def test_snapshot_seed_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(9)
        prompt = rng.integers(0, VOCAB, 7)
        donor = DecodeSession(_lm_session())
        donor.prefill(prompt)
        snap = donor.snapshot()
        assert len(snap) == 2  # one (K, V) per layer

        seeded = DecodeSession(_lm_session())
        seeded.seed(snap, prompt)
        assert seeded.position == 7
        assert seeded.n_seeded == 7
        # Continue both: next step must agree bit for bit.
        a = donor.step(5)
        b = seeded.step(5)
        assert np.array_equal(a, b)

    def test_seed_refuses_non_fresh_session(self):
        rng = np.random.default_rng(10)
        prompt = rng.integers(0, VOCAB, 4)
        donor = DecodeSession(_lm_session())
        donor.prefill(prompt)
        snap = donor.snapshot()
        used = DecodeSession(_lm_session())
        used.prefill(prompt)
        with pytest.raises(RuntimeError, match="fresh"):
            used.seed(snap, prompt)

    def test_seed_validates_layer_and_token_counts(self):
        rng = np.random.default_rng(11)
        prompt = rng.integers(0, VOCAB, 4)
        donor = DecodeSession(_lm_session())
        donor.prefill(prompt)
        snap = donor.snapshot()
        with pytest.raises(ValueError, match="layers"):
            DecodeSession(_lm_session()).seed(snap[:1], prompt)
        with pytest.raises(ValueError, match="tokens"):
            DecodeSession(_lm_session()).seed(snap, prompt[:2])

    def test_empty_snapshot_before_prefill(self):
        assert DecodeSession(_lm_session()).snapshot() == []
