"""Tests for the energy table, breakdown and area model."""

import pytest

from repro.hw.area import panacea_area
from repro.hw.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyTable


class TestEnergyTable:
    def test_cost_ordering(self):
        """The ordering every ratio claim relies on: DRAM >> SRAM >> MAC."""
        e = DEFAULT_ENERGY
        assert e.dram_byte > 10 * e.sram_byte(192)
        assert e.sram_byte(16) > e.mul4

    def test_mul8_is_four_mul4(self):
        """The paper's normalization: one 8bx8b = four 4bx4b."""
        e = DEFAULT_ENERGY
        assert e.mul8 == pytest.approx(4 * e.mul4)

    def test_sram_energy_grows_with_size(self):
        e = DEFAULT_ENERGY
        assert e.sram_byte(192) > e.sram_byte(16)

    def test_sram_rejects_zero(self):
        with pytest.raises(ValueError):
            DEFAULT_ENERGY.sram_byte(0)

    def test_custom_table(self):
        e = EnergyTable(dram_byte=100.0)
        assert e.dram_byte == 100.0


class TestBreakdown:
    def test_total_sums_components(self):
        b = EnergyBreakdown(mac=1, compensation=2, sram=3, dram=4, control=5,
                            other=6)
        assert b.total == 21

    def test_merge(self):
        a = EnergyBreakdown(mac=1, dram=2)
        b = EnergyBreakdown(mac=10, sram=5)
        m = a.merge(b)
        assert m.mac == 11 and m.dram == 2 and m.sram == 5

    def test_as_dict_keys(self):
        keys = set(EnergyBreakdown().as_dict())
        assert keys == {"mac", "compensation", "sram", "dram", "control",
                        "other"}


class TestArea:
    def test_baseline_area_positive(self):
        report = panacea_area()
        assert report.total > 0
        assert report.sram > report.sparsity_logic

    def test_dtp_adds_area(self):
        """Fig. 15(c): DTP costs buffers/S-ACCs; ZPM costs nothing."""
        base = panacea_area(dbs=False, dtp=False).total
        with_dbs = panacea_area(dbs=True, dtp=False).total
        with_both = panacea_area(dbs=True, dtp=True).total
        assert base < with_dbs < with_both

    def test_dbs_overhead_small(self):
        """DBS shifters are a 'small overhead' (paper Section III-C)."""
        base = panacea_area(dbs=False, dtp=False).total
        dbs = panacea_area(dbs=True, dtp=False).total
        assert (dbs - base) / base < 0.01

    def test_more_operators_more_area(self):
        a = panacea_area(n_dwo=4, n_swo=8).operators
        b = panacea_area(n_dwo=8, n_swo=8).operators
        assert b > a
