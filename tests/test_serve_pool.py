"""Tests for WorkerPool: futures, ordering, accounting, shutdown."""

import threading
import time

import pytest

from repro.serve import WorkerPool


class TestSubmit:
    def test_result_round_trip(self):
        with WorkerPool(2) as pool:
            assert pool.submit(lambda: 41 + 1).result() == 42

    def test_args_and_kwargs(self):
        with WorkerPool(1) as pool:
            future = pool.submit(divmod, 7, 3)
            assert future.result() == (2, 1)
            future = pool.submit(int, "ff", base=16)
            assert future.result() == 255

    def test_exception_propagates_through_future(self):
        with WorkerPool(1) as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()

    def test_tasks_actually_overlap(self):
        """Two blocking tasks on two workers release each other — proof the
        pool runs them concurrently, not sequentially."""
        gate_a, gate_b = threading.Event(), threading.Event()

        def task_a():
            gate_a.set()
            assert gate_b.wait(5.0)
            return "a"

        def task_b():
            assert gate_a.wait(5.0)
            gate_b.set()
            return "b"

        with WorkerPool(2) as pool:
            fa, fb = pool.submit(task_a), pool.submit(task_b)
            assert fa.result(timeout=5.0) == "a"
            assert fb.result(timeout=5.0) == "b"

    def test_run_all_preserves_order(self):
        with WorkerPool(3) as pool:
            results = pool.run_all([lambda i=i: i * i for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_run_all_raises_first_error_after_draining(self):
        done = []

        def ok(i):
            done.append(i)
            return i

        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run_all([
                    lambda: ok(0),
                    lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                    lambda: ok(2),
                ])
        assert sorted(done) == [0, 2]    # later thunks were not abandoned


class TestAccounting:
    def test_stats_count_tasks_and_busy_time(self):
        with WorkerPool(2) as pool:
            pool.run_all([lambda: time.sleep(0.01) for _ in range(4)])
            stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["n_tasks"] == 4
        assert stats["busy_s"] >= 0.04
        assert len(stats["per_worker"]) == 2
        assert sum(w["n_tasks"] for w in stats["per_worker"]) == 4

    def test_in_flight_task_counts_as_busy(self):
        """A worker mid-task must read busy, not idle — the slow-drain
        moment is exactly when the dashboard matters."""
        release = threading.Event()
        with WorkerPool(1) as pool:
            future = pool.submit(lambda: release.wait(5.0))
            time.sleep(0.02)                 # task is now in flight
            stats = pool.stats()
            release.set()
            future.result(timeout=5.0)
        assert stats["per_worker"][0]["busy_s"] > 0.0
        assert stats["mean_utilization"] > 0.0

    def test_utilization_bounded(self):
        with WorkerPool(2) as pool:
            pool.run_all([lambda: time.sleep(0.005) for _ in range(4)])
            stats = pool.stats()
        for worker in stats["per_worker"]:
            assert 0.0 <= worker["utilization"] <= 1.0
        assert 0.0 <= stats["mean_utilization"] <= 1.0


class TestLifecycle:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)

    def test_shutdown_waits_for_queued_tasks(self):
        pool = WorkerPool(1)
        results = []
        futures = [pool.submit(lambda i=i: results.append(i))
                   for i in range(5)]
        pool.shutdown(wait=True)
        assert all(f.done() for f in futures)
        assert sorted(results) == list(range(5))

    def test_submit_after_shutdown_rejected(self):
        from repro.serve import PoolShutdownError

        pool = WorkerPool(1)
        pool.shutdown()
        # The typed error lets supervisors distinguish "pool is gone" from
        # task failures; it stays a RuntimeError for older callers.
        with pytest.raises(PoolShutdownError, match="shut-down"):
            pool.submit(lambda: None)
        assert issubclass(PoolShutdownError, RuntimeError)

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()


class TestNestedSubmission:
    """The pipeline regression set: a task submitting downstream work to
    its own pool must neither deadlock the fixed pool nor double-count
    busy seconds."""

    def test_nested_run_all_single_worker_completes(self):
        """Every worker busy in an outer run_all used to deadlock: the
        inner thunks sat queued behind the outer waiters forever."""
        with WorkerPool(1) as pool:
            def outer():
                return sum(pool.run_all([lambda: 1, lambda: 2]))

            assert pool.run_all([outer]) == [3]

    def test_deeply_nested_run_all(self):
        with WorkerPool(2) as pool:
            def level(n):
                if n == 0:
                    return 1
                return sum(pool.run_all([lambda: level(n - 1)] * 2))

            assert level(3) == 8

    def test_helped_tasks_do_not_double_count_busy(self):
        """An inner task executed inside an outer task's busy window must
        not add its elapsed time again: with a virtual clock the inner
        task advances 5 ticks inside the outer window, and total busy_s
        must be 5 — not 10."""
        now = [0.0]

        def clock():
            return now[0]

        with WorkerPool(1, clock=clock) as pool:
            def inner():
                now[0] += 5.0

            def outer():
                pool.run_all([inner])

            pool.run_all([outer])
            stats = pool.stats()
        assert stats["busy_s"] == pytest.approx(5.0)
        assert stats["n_tasks"] == 2
        assert stats["n_helped"] == 1
        for worker in stats["per_worker"]:
            assert worker["utilization"] <= 1.0

    def test_nested_exception_propagates(self):
        with WorkerPool(1) as pool:
            def outer():
                return pool.run_all([lambda: 1 / 0])

            with pytest.raises(ZeroDivisionError):
                pool.run_all([outer])

    def test_helping_skips_foreign_groups(self):
        """A waiter must only execute its own group's tasks: the foreign
        task (submitted outside the group) may block on state the waiter
        holds, so it has to run on a real worker instead."""
        import threading

        lock = threading.Lock()
        ran_on = {}

        with WorkerPool(2) as pool:
            def foreign():
                with lock:               # blocks until the outer releases
                    ran_on["foreign"] = threading.current_thread().name

            def outer():
                with lock:
                    # Queue a task that needs `lock`; unscoped helping
                    # would execute it right here and deadlock.
                    future = pool.submit(foreign)
                    pool.run_all([lambda: None])   # helps only its group
                    assert not future.done()
                return pool.wait([future]) or True

            assert pool.run_all([outer]) == [True]
        assert "foreign" in ran_on

    def test_wait_without_group_never_helps(self):
        """wait() with no help_group on a worker is a plain block — the
        sentinel/foreign machinery must not run anything."""
        with WorkerPool(2) as pool:
            def outer():
                future = pool.submit(lambda: 42)
                pool.wait([future])
                return future.result()

            assert pool.submit(outer).result(timeout=30) == 42

    def test_shutdown_sentinel_survives_helping(self):
        """A helping waiter that pops the shutdown sentinel must put it
        back: the worker loop still needs it to exit."""
        pool = WorkerPool(1)

        def outer():
            return sum(pool.run_all([lambda: 1] * 4))

        future = pool.submit(outer)
        assert future.result(timeout=30) == 4
        pool.shutdown(wait=True)     # joins: the sentinel was not eaten
        assert all(not t.is_alive() for t in pool._threads)
