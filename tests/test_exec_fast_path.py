"""Fast execution path: bit-exactness vs the sliced reference, end to end.

The collapsed-BLAS fast path must be bit-identical to the sliced plane-pair
loop on every scheme/config combination — this is the non-negotiable
invariant of the ``exec_path`` knob.  Covered here at three levels: the raw
kernels (AQS across the full ``lo_bits`` x ``w_bits`` grid, Sibia across
``w_bits`` x tracked sides), the engine registry (``EngineConfig`` /
``execute_many``), and the PTQ pipeline (per-tensor and per-channel
weights).
"""

import numpy as np
import pytest

from repro.core.aqs_gemm import AqsGemmConfig, execute_aqs, prepare_aqs
from repro.core.pipeline import PtqConfig, PtqPipeline
from repro.engine import EngineConfig, get_engine
from repro.gemm.sibia_gemm import (
    SibiaLayerPlan,
    execute_sibia,
    prepare_sibia,
    sibia_gemm,
)
from repro.nn.layers import Linear
from repro.nn.module import Module


def _aqs_case(rng, m=36, k=60, n=20, zp=168, w_bits=7, x_bits=8):
    w_max = (1 << (w_bits - 1)) - 1
    w = rng.integers(-w_max - 1, w_max + 1, (m, k))
    x = rng.integers(0, 1 << x_bits, (k, n))
    return w, x, zp


def _sbr_case(rng, m=36, k=60, n=20, w_bits=7, x_bits=7):
    w_hi = (1 << (w_bits - 1)) - 1
    x_hi = (1 << (x_bits - 1)) - 1
    return (rng.integers(-w_hi - 1, w_hi + 1, (m, k)),
            rng.integers(-x_hi - 1, x_hi + 1, (k, n)))


class TestAqsFastPath:
    @pytest.mark.parametrize("w_bits", [4, 7, 10])
    @pytest.mark.parametrize("lo_bits", [4, 5, 6])
    def test_bit_exact_vs_sliced(self, w_bits, lo_bits):
        rng = np.random.default_rng(w_bits * 10 + lo_bits)
        w, x, zp = _aqs_case(rng, w_bits=w_bits)
        fast = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            w_bits=w_bits, lo_bits=lo_bits, exec_path="fast")), x)
        sliced = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            w_bits=w_bits, lo_bits=lo_bits, exec_path="sliced")), x)
        assert np.array_equal(fast.acc, sliced.acc)

    @pytest.mark.parametrize("lo_bits", [4, 5, 6])
    def test_op_ledger_identical(self, lo_bits):
        """The ledger is mask-derived, so exec_path must not change it."""
        rng = np.random.default_rng(lo_bits)
        w, x, zp = _aqs_case(rng)
        fast = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            lo_bits=lo_bits, exec_path="fast")), x)
        sliced = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            lo_bits=lo_bits, exec_path="sliced")), x)
        for f in ("mul4", "add", "comp_mul4", "comp_add", "ema_nibbles",
                  "rle_index_bits"):
            assert getattr(fast.ops, f) == getattr(sliced.ops, f), f
        assert fast.rho_x == sliced.rho_x
        assert fast.r == sliced.r

    def test_wide_activations(self):
        """Three activation slices (x_bits=12) also collapse exactly."""
        rng = np.random.default_rng(12)
        w, x, zp = _aqs_case(rng, x_bits=12, zp=1900)
        fast = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            x_bits=12, exec_path="fast")), x)
        sliced = execute_aqs(prepare_aqs(w, zp, AqsGemmConfig(
            x_bits=12, exec_path="sliced")), x)
        assert np.array_equal(fast.acc, sliced.acc)

    def test_default_is_fast(self):
        assert AqsGemmConfig().exec_path == "fast"

    def test_fast_plan_skips_plane_mirrors(self):
        """Fast-path execution must not materialize the per-plane float64
        weight mirrors (they are sliced-path-only plan memory)."""
        rng = np.random.default_rng(5)
        w, x, zp = _aqs_case(rng)
        plan = prepare_aqs(w, zp, AqsGemmConfig(exec_path="fast"))
        execute_aqs(plan, x)
        assert plan._w_planes_f64 is None
        sib = prepare_sibia(w, exec_path="fast")
        execute_sibia(sib, np.clip(x - 128, -64, 63))
        assert sib._w_planes_f64 is None

    def test_rejects_unknown_path(self):
        with pytest.raises(ValueError):
            AqsGemmConfig(exec_path="warp")

    def test_rejects_zero_index_bits(self):
        with pytest.raises(ValueError):
            AqsGemmConfig(index_bits=0)

    def test_config_round_trips_through_state(self):
        rng = np.random.default_rng(3)
        w, x, zp = _aqs_case(rng)
        from repro.core.aqs_gemm import AqsLayerPlan

        plan = prepare_aqs(w, zp, AqsGemmConfig(exec_path="sliced"))
        clone = AqsLayerPlan.from_state(plan.state_dict())
        assert clone.config.exec_path == "sliced"
        assert np.array_equal(execute_aqs(clone, x).acc,
                              execute_aqs(plan, x).acc)


class TestSibiaFastPath:
    @pytest.mark.parametrize("w_bits", [4, 7, 10])
    @pytest.mark.parametrize("tracked", ["weight", "activation", "auto"])
    def test_bit_exact_vs_sliced(self, w_bits, tracked):
        rng = np.random.default_rng(w_bits * 10 + len(tracked))
        w, x = _sbr_case(rng, w_bits=w_bits)
        fast = execute_sibia(prepare_sibia(
            w, w_bits=w_bits, tracked=tracked, exec_path="fast"), x)
        sliced = execute_sibia(prepare_sibia(
            w, w_bits=w_bits, tracked=tracked, exec_path="sliced"), x)
        assert np.array_equal(fast.acc, sliced.acc)
        assert fast.ops.mul4 == sliced.ops.mul4
        assert fast.tracked == sliced.tracked

    def test_one_shot_wrapper_accepts_exec_path(self):
        rng = np.random.default_rng(9)
        w, x = _sbr_case(rng)
        assert np.array_equal(sibia_gemm(w, x, exec_path="fast").acc,
                              sibia_gemm(w, x, exec_path="sliced").acc)

    def test_rejects_unknown_path(self):
        with pytest.raises(ValueError):
            prepare_sibia(np.zeros((4, 4)), exec_path="turbo")

    def test_state_round_trip_keeps_exec_path(self):
        rng = np.random.default_rng(4)
        w, x = _sbr_case(rng)
        plan = prepare_sibia(w, exec_path="sliced")
        clone = SibiaLayerPlan.from_state(plan.state_dict())
        assert clone.exec_path == "sliced"
        assert np.array_equal(execute_sibia(clone, x).acc,
                              execute_sibia(plan, x).acc)

    def test_legacy_state_defaults_to_fast(self):
        plan = prepare_sibia(np.zeros((4, 4), dtype=np.int64))
        state = plan.state_dict()
        del state["exec_path"]
        assert SibiaLayerPlan.from_state(state).exec_path == "fast"


class TestEngineLevel:
    def test_engine_config_threads_exec_path(self):
        rng = np.random.default_rng(11)
        w, x, zp = _aqs_case(rng)
        engine = get_engine("aqs")
        fast = engine.execute(
            engine.prepare(w, zp, EngineConfig(exec_path="fast")), x)
        sliced = engine.execute(
            engine.prepare(w, zp, EngineConfig(exec_path="sliced")), x)
        assert np.array_equal(fast.acc, sliced.acc)

    def test_engine_config_rejects_unknown_path(self):
        with pytest.raises(ValueError):
            EngineConfig(exec_path="medium")

    def test_execute_many_reuses_plan(self):
        rng = np.random.default_rng(13)
        w, x, zp = _aqs_case(rng)
        xs = [rng.integers(0, 256, x.shape) for _ in range(4)]
        engine = get_engine("aqs")
        plan = engine.prepare(w, zp, EngineConfig())
        results = engine.execute_many(plan, xs)
        assert len(results) == 4
        for x_q, res in zip(xs, results):
            assert np.array_equal(res.acc, engine.execute(plan, x_q).acc)


class _TwoLayer(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        h = np.maximum(self.fc1(x), 0.0)
        return self.fc2(h)


def _converted_output(scheme, x_bits, exec_path, w_granularity):
    rng = np.random.default_rng(0)
    batches = [rng.normal(0, 1, (4, 16)) for _ in range(3)]
    pipe = PtqPipeline(_TwoLayer(), PtqConfig(
        scheme=scheme, x_bits=x_bits, exec_path=exec_path,
        w_granularity=w_granularity))
    pipe.calibrate(batches)
    model = pipe.convert()
    return model(rng.normal(0, 1, (4, 16)))


class TestPipelineLevel:
    @pytest.mark.parametrize("w_granularity", ["per_tensor", "per_channel"])
    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7)])
    def test_model_outputs_identical(self, scheme, x_bits, w_granularity):
        fast = _converted_output(scheme, x_bits, "fast", w_granularity)
        sliced = _converted_output(scheme, x_bits, "sliced", w_granularity)
        assert np.array_equal(fast, sliced)

    def test_ptq_config_rejects_unknown_path(self):
        with pytest.raises(ValueError):
            PtqConfig(exec_path="jit")
