"""MetricsRegistry, LatencyStats merge algebra, and Prometheus rendering.

The merge tests pin the rollup semantics the observability layer depends
on: ``merge`` must be exact on the lifetime aggregates (count/total/min/
max — associative, with the empty accumulator as identity) even though
the percentile reservoir is bounded.  The rendering tests run every
document through ``tests/prom_lint.py`` — the same checker CI runs
against a live gateway scrape.
"""

import pytest

from prom_lint import lint
from repro.obs import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                       MetricsRegistry, render_prometheus)
from repro.serve.metrics import LatencyStats


def _stats(values, max_samples=512):
    stats = LatencyStats(max_samples=max_samples)
    for v in values:
        stats.observe(v)
    return stats


def _aggregates(stats):
    return (stats.count, stats.total_s, stats.min_s, stats.max_s)


class TestLatencyStatsMerge:
    def test_merge_is_exact_on_lifetime_aggregates(self):
        a = _stats([0.1, 0.2, 0.3])
        b = _stats([0.05, 0.4])
        merged = a.merge(b)
        assert merged.count == 5
        assert merged.total_s == pytest.approx(1.05)
        assert merged.min_s == pytest.approx(0.05)
        assert merged.max_s == pytest.approx(0.4)
        # Inputs untouched: merge returns a new accumulator.
        assert a.count == 3 and b.count == 2

    def test_empty_is_identity_both_sides(self):
        empty = LatencyStats()
        a = _stats([0.1, 0.2])
        assert _aggregates(a.merge(empty)) == _aggregates(a)
        assert _aggregates(empty.merge(a)) == _aggregates(a)
        assert sorted(a.merge(empty).samples()) == sorted(a.samples())

    def test_merge_of_empties_is_empty(self):
        merged = LatencyStats().merge(LatencyStats())
        assert merged.count == 0
        assert merged.total_s == 0.0
        assert merged.samples() == []

    def test_merge_is_associative_on_aggregates(self):
        a = _stats([0.1, 0.9])
        b = _stats([0.2])
        c = _stats([0.3, 0.4, 0.5])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _aggregates(left) == _aggregates(right)
        assert sorted(left.samples()) == sorted(right.samples())

    def test_merge_keeps_newest_reservoir_but_exact_counts(self):
        # 8-deep reservoirs, 12 observations each side: the pooled sample
        # set is clipped to the newest max_samples, but the lifetime
        # aggregates still reflect every observation.
        a = _stats([i * 0.01 for i in range(12)], max_samples=8)
        b = _stats([1.0 + i * 0.01 for i in range(12)], max_samples=8)
        merged = a.merge(b)
        assert merged.count == 24
        assert merged.min_s == pytest.approx(0.0)
        assert merged.max_s == pytest.approx(1.11)
        assert len(merged.samples()) == 8
        # Newest-kept: the tail of the pool is b's newest observations.
        assert merged.samples() == [1.0 + i * 0.01 for i in range(4, 12)]


class TestRegistry:
    def test_instrument_kinds_and_samples(self):
        reg = MetricsRegistry()
        reg.counter("repro_reqs_total", "Requests.", lambda: 7)
        reg.gauge("repro_depth", "Depth.", lambda: [({"d": "a"}, 1),
                                                    ({"d": "b"}, 2)])
        reg.histogram("repro_wait_seconds", "Wait.",
                      lambda: _stats([0.01, 0.02]))
        entries = {e["name"]: e for e in reg.collect()}
        assert entries["repro_reqs_total"]["kind"] == "counter"
        assert entries["repro_reqs_total"]["samples"] == [({}, 7)]
        assert entries["repro_depth"]["samples"] == [({"d": "a"}, 1),
                                                     ({"d": "b"}, 2)]
        assert entries["repro_wait_seconds"]["buckets"] == DEFAULT_BUCKETS

    def test_duplicate_name_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", lambda: 0)
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x_total", "X again.", lambda: 0)
        reg.invariant("conserved", lambda: True)
        with pytest.raises(ValueError, match="already registered"):
            reg.invariant("conserved", lambda: True)

    def test_invariant_exception_counts_as_violation(self):
        reg = MetricsRegistry()
        reg.invariant("holds", lambda: True)
        reg.invariant("broken", lambda: 1 / 0)
        assert reg.check() == {"holds": True, "broken": False}

    def test_collect_appends_synthetic_invariant_gauge(self):
        reg = MetricsRegistry()
        reg.invariant("conserved", lambda: True)
        reg.invariant("violated", lambda: False)
        entry = reg.collect()[-1]
        assert entry["name"] == "repro_invariant"
        assert entry["kind"] == "gauge"
        assert ({"invariant": "conserved"}, 1.0) in entry["samples"]
        assert ({"invariant": "violated"}, 0.0) in entry["samples"]

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("repro_bad_seconds", "Bad.", lambda: None,
                          buckets=(1.0, 0.5))

    def test_none_callback_yields_no_samples(self):
        reg = MetricsRegistry()
        reg.gauge("repro_maybe", "Optional.", lambda: None)
        entry, = reg.collect()
        assert entry["samples"] == []


class TestRenderPrometheus:
    def test_counters_and_gauges_lint_clean(self):
        reg = MetricsRegistry()
        reg.counter("repro_reqs_total", "Requests served.", lambda: 41)
        reg.gauge("repro_depth", "Queue depth.",
                  lambda: [({"deployment": "tiny"}, 3)])
        reg.invariant("conserved", lambda: True)
        text = render_prometheus(reg)
        assert lint(text) == []
        assert "# TYPE repro_reqs_total counter" in text
        assert "repro_reqs_total 41" in text.splitlines()
        assert 'repro_depth{deployment="tiny"} 3' in text.splitlines()
        assert 'repro_invariant{invariant="conserved"} 1' in \
            text.splitlines()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("repro_weird", "Weird labels.",
                  lambda: [({"name": 'a"b\\c\nd'}, 1)])
        text = render_prometheus(reg)
        assert lint(text) == []
        assert 'repro_weird{name="a\\"b\\\\c\\nd"} 1' in text.splitlines()

    def test_histogram_structure(self):
        stats = _stats([0.0004, 0.002, 0.002, 0.04, 3.0])
        reg = MetricsRegistry()
        reg.histogram("repro_wait_seconds", "Wait.", lambda: stats,
                      buckets=(0.001, 0.01, 1.0))
        text = render_prometheus(reg)
        assert lint(text) == []
        lines = text.splitlines()
        assert 'repro_wait_seconds_bucket{le="0.001"} 1' in lines
        assert 'repro_wait_seconds_bucket{le="0.01"} 3' in lines
        assert 'repro_wait_seconds_bucket{le="1"} 4' in lines
        assert 'repro_wait_seconds_bucket{le="+Inf"} 5' in lines
        assert "repro_wait_seconds_count 5" in lines
        sum_line, = [ln for ln in lines
                     if ln.startswith("repro_wait_seconds_sum ")]
        assert float(sum_line.split()[-1]) == pytest.approx(3.0444)

    def test_histogram_inf_bucket_pinned_after_reservoir_wrap(self):
        # 4-deep reservoir, 100 observations: bucket counts are estimates
        # scaled from the survivors, but +Inf and _count stay exact.
        stats = _stats([i * 0.001 for i in range(100)], max_samples=4)
        reg = MetricsRegistry()
        reg.histogram("repro_wrap_seconds", "Wrapped.", lambda: stats,
                      buckets=(0.01, 0.05))
        text = render_prometheus(reg)
        assert lint(text) == []
        lines = text.splitlines()
        assert 'repro_wrap_seconds_bucket{le="+Inf"} 100' in lines
        assert "repro_wrap_seconds_count 100" in lines

    def test_empty_histogram_renders_zero_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_idle_seconds", "Never observed.",
                      lambda: LatencyStats(), buckets=(0.01,))
        text = render_prometheus(reg)
        assert lint(text) == []
        lines = text.splitlines()
        assert 'repro_idle_seconds_bucket{le="+Inf"} 0' in lines
        assert "repro_idle_seconds_count 0" in lines

    def test_duplicate_family_across_registries_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("repro_reqs_total", "A.", lambda: 1)
        b.counter("repro_reqs_total", "B.", lambda: 2)
        with pytest.raises(ValueError, match="two registries"):
            render_prometheus([a, b])

    def test_multi_registry_document_lints(self):
        a = MetricsRegistry()
        a.counter("repro_a_total", "A.", lambda: 1)
        a.invariant("a_conserved", lambda: True)
        b = MetricsRegistry(prefix="repro_gateway")
        b.gauge("repro_gateway_uptime_seconds", "Uptime.", lambda: 12.5)
        b.invariant("b_conserved", lambda: True)
        text = render_prometheus([a, b])
        assert lint(text) == []
        assert 'repro_invariant{invariant="a_conserved"} 1' in \
            text.splitlines()
        assert 'repro_gateway_invariant{invariant="b_conserved"} 1' in \
            text.splitlines()

    def test_document_ends_with_newline(self):
        reg = MetricsRegistry()
        reg.counter("repro_one_total", "One.", lambda: 1)
        assert render_prometheus(reg).endswith("\n")


class TestLintSelfCheck:
    """The linter itself must reject the malformations it exists to catch
    (otherwise the CI smoke step is a rubber stamp)."""

    def test_rejects_missing_type(self):
        assert lint("repro_x_total 1\n")

    def test_rejects_duplicate_sample(self):
        doc = ("# TYPE repro_x gauge\n"
               "repro_x 1\n"
               "repro_x 2\n")
        assert any("duplicate sample" in p for p in lint(doc))

    def test_rejects_non_cumulative_histogram(self):
        doc = ("# TYPE repro_h histogram\n"
               'repro_h_bucket{le="0.1"} 5\n'
               'repro_h_bucket{le="+Inf"} 3\n'
               "repro_h_sum 1.0\n"
               "repro_h_count 3\n")
        assert any("cumulative" in p for p in lint(doc))

    def test_rejects_count_mismatch(self):
        doc = ("# TYPE repro_h histogram\n"
               'repro_h_bucket{le="+Inf"} 3\n'
               "repro_h_sum 1.0\n"
               "repro_h_count 4\n")
        assert any("_count" in p for p in lint(doc))

    def test_rejects_malformed_labels(self):
        doc = ("# TYPE repro_x gauge\n"
               'repro_x{bad-label="v"} 1\n')
        assert lint(doc)

    def test_accepts_own_inf_and_scientific_values(self):
        doc = ("# TYPE repro_x gauge\n"
               "repro_x{} 0\n"
               "# TYPE repro_y gauge\n"
               "repro_y 1.5e-05\n"
               "# TYPE repro_z gauge\n"
               "repro_z +Inf\n")
        assert lint(doc) == []


def test_default_buckets_sorted_and_positive():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert all(b > 0 for b in DEFAULT_BUCKETS)


def test_instrument_classes_exported():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"
