"""Tests for PipelineExecutor and ShardedSession (+ serving integration)."""

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.gemm.workload import OpCounts
from repro.models.zoo import build_proxy, proxy_batches
from repro.serve import BatchPolicy, ModelServer, PlanStore
from repro.serve.pool import WorkerPool
from repro.shard import (PipelineExecutor, ShardedSession, ShardError,
                         auto_partition)


def _session(name="bert_base", scheme="aqs", seed=0, **kwargs):
    model, _ = build_proxy(name, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme(scheme), **kwargs)
    session.calibrate(proxy_batches(name, 2, 2, seed=seed + 1))
    return session


class TestPipelineExecutor:
    def _stage(self, tag, log=None, delay=0.0):
        def fn(x):
            if log is not None:
                log.append((tag, x))
            if delay:
                time.sleep(delay)
            return x + 1, tag
        return fn

    def test_results_in_submission_order(self):
        with WorkerPool(2) as pool:
            ex = PipelineExecutor([self._stage("a"), self._stage("b")],
                                  pool, depth=2)
            results = ex.run([np.array(i) for i in range(5)])
        assert [int(r.output) for r in results] == [2, 3, 4, 5, 6]
        assert all(r.extras == ["a", "b"] for r in results)

    def test_empty_run(self):
        with WorkerPool(1) as pool:
            ex = PipelineExecutor([self._stage("a")], pool)
            assert ex.run([]) == []

    def test_depth_bounds_in_flight(self):
        """With depth=1 a batch only starts after its predecessor finished
        every stage — the log interleaving proves the bound."""
        log = []
        with WorkerPool(4) as pool:
            ex = PipelineExecutor(
                [self._stage("a", log), self._stage("b", log)],
                pool, depth=1)
            ex.run([np.array(i) for i in range(3)])
        # depth=1 => strictly serial: a(x0) b(..) a(x1) b(..) a(x2) b(..)
        assert [tag for tag, _ in log] == ["a", "b"] * 3

    def test_overlap_actually_happens(self):
        """With depth=2 and two stages, stage b of batch i runs while stage
        a of batch i+1 runs — observed via concurrent entry tracking."""
        active = []
        overlap = []
        lock = threading.Lock()

        def tracked(tag):
            def fn(x):
                with lock:
                    active.append(tag)
                    if len(set(active)) > 1:
                        overlap.append(tuple(active))
                time.sleep(0.02)
                with lock:
                    active.remove(tag)
                return x, None
            return fn

        with WorkerPool(2) as pool:
            ex = PipelineExecutor([tracked("a"), tracked("b")], pool,
                                  depth=2)
            ex.run([np.array(i) for i in range(4)])
        assert overlap, "no two stages were ever active at once"

    def test_stage_error_fails_only_its_batch(self):
        def poison(x):
            if int(x) == 1:
                raise RuntimeError("boom")
            return x * 10, None

        with WorkerPool(2) as pool:
            ex = PipelineExecutor([poison], pool, depth=2)
            with pytest.raises(RuntimeError, match="boom"):
                ex.run([np.array(0), np.array(1), np.array(2)])
            # the healthy batches still flowed (stats count them)
            assert ex.stats()["stages"][0]["n_batches"] == 2

    def test_stats_shape(self):
        with WorkerPool(1) as pool:
            ex = PipelineExecutor([self._stage("a"), self._stage("b")],
                                  pool, depth=3)
            ex.run([np.array(0)])
            stats = ex.stats()
        assert stats["n_stages"] == 2 and stats["depth"] == 3
        assert stats["n_batches"] == 1
        assert [s["n_batches"] for s in stats["stages"]] == [1, 1]
        assert all(s["exec"]["count"] == 1 for s in stats["stages"])

    def test_invalid_construction(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="at least one stage"):
                PipelineExecutor([], pool)
            with pytest.raises(ValueError, match="depth"):
                PipelineExecutor([self._stage("a")], pool, depth=0)

    def test_driver_on_pool_worker_does_not_deadlock(self):
        """The async serving path: executor.run executes on a worker of the
        same pool its stage tasks are queued to."""
        with WorkerPool(1) as pool:
            ex = PipelineExecutor([self._stage("a"), self._stage("b")],
                                  pool, depth=2)
            future = pool.submit(ex.run, [np.array(i) for i in range(3)])
            results = future.result(timeout=30)
        assert [int(r.output) for r in results] == [2, 3, 4]


class TestShardedSession:
    def test_requires_prepared_session(self):
        model, _ = build_proxy("bert_base", seed=0)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        with pytest.raises(ShardError, match="calibrated"):
            ShardedSession.partition(session, 2)

    def test_run_and_pipelined_bit_exact_vs_session_run(self):
        session = _session()
        requests = proxy_batches("bert_base", 2, 5, seed=9)
        expected = [session.run(x) for x in requests]
        with ShardedSession.partition(session, 3, depth=3) as sharded:
            solo = [sharded.run(x) for x in requests]
            piped = sharded.run_pipelined(requests)
        for a, b, c in zip(expected, solo, piped):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_accounting_matches_unsharded(self):
        """Sharded serving folds into the same lifetime ledger: request
        count, layer calls and op totals equal an unsharded replay."""
        plain = _session()
        requests = proxy_batches("bert_base", 1, 4, seed=11)
        for x in requests:
            plain.run(x)

        session = _session()
        with ShardedSession.partition(session, 3) as sharded:
            sharded.run_pipelined(requests)
        a, b = plain.stats(), sharded.stats()
        for key in ("n_requests", "n_layer_calls", "mul4", "add",
                    "ema_nibbles"):
            assert a[key] == b[key], key
        assert b["n_stages"] == 3
        assert sharded.session.total_ops() == plain.total_ops()

    def test_records_carry_layers_in_execution_order(self):
        session = _session()
        with ShardedSession.partition(session, 2) as sharded:
            _, records = sharded.serve_coalesced(
                proxy_batches("bert_base", 1, 2, seed=3))
        plain = _session()
        x = proxy_batches("bert_base", 1, 1, seed=3)[0]
        plain.run(x)
        expected_order = [rec.name for rec in plain.requests[0].layers]
        for record in records:
            assert [rec.name for rec in record.layers] == expected_order
            assert record.latency_s > 0

    def test_max_records_retention_still_trims(self):
        session = _session(max_records=2)
        requests = proxy_batches("bert_base", 1, 5, seed=13)
        with ShardedSession.partition(session, 2) as sharded:
            sharded.run_pipelined(requests)
        assert session.stats()["n_requests"] == 5
        assert session.stats()["n_retained"] == 2
        # the trace trimmed in lockstep with the request records
        assert len(session.trace.records) == sum(
            len(r.layers) for r in session.requests)

    def test_ragged_requests_pipeline_without_padding(self):
        """Each micro-batch is its own engine batch, so ragged sequence
        lengths need no pad_axis — unlike the fused coalescing path."""
        session = _session("gpt2")
        rng = np.random.default_rng(5)
        requests = [rng.integers(0, 512, (1, n)) for n in (6, 11, 8)]
        expected = [session.run(x) for x in requests]
        with ShardedSession.partition(session, 2) as sharded:
            outputs, records = sharded.serve_coalesced(
                requests, pad_axis=1)   # accepted, ignored
        for got, expect in zip(outputs, expected):
            assert np.array_equal(got, expect)
        assert [r.batch_shape for r in records] == \
            [x.shape for x in requests]

    def test_empty_group(self):
        with ShardedSession.partition(_session(), 2) as sharded:
            assert sharded.serve_coalesced([]) == ([], [])

    def test_explicit_plan_stage_mismatch_detected(self):
        session = _session()
        plan = auto_partition(session, 2)
        other = _session("gpt2")
        with pytest.raises(ShardError, match="does not match"):
            ShardedSession(other, plan)

    def test_stage_stats_expose_plan_and_source(self):
        session = _session()
        sample = proxy_batches("bert_base", 2, 1, seed=7)[0]
        with ShardedSession.partition(session, 3,
                                      sample=sample) as sharded:
            sharded.run_pipelined(proxy_batches("bert_base", 1, 3, seed=8))
            stats = sharded.stage_stats()
        assert stats["source"] == "measured"
        assert len(stats["plan"]) == 3
        assert all(s["n_batches"] == 3 for s in stats["stages"])


class TestServerIntegration:
    def test_inline_server_sharded_deployment_bit_exact(self):
        requests = proxy_batches("bert_base", 1, 6, seed=21)
        reference = _session(seed=0)
        expected = [reference.run(x) for x in requests]
        with ModelServer(BatchPolicy(max_batch=3,
                                     max_delay_s=0.0)) as server:
            server.deploy_proxy("b", "bert_base", scheme="aqs", seed=0,
                                shards=3)
            assert server.entry("b").sharded
            tickets = server.submit_many("b", requests)
            server.flush("b")
            for ticket, expect in zip(tickets, expected):
                assert np.array_equal(ticket.result(), expect)
            metrics = server.metrics()
        assert metrics.pipelines and set(metrics.pipelines) == {"b"}
        pipe = metrics.pipelines["b"]
        assert pipe["n_stages"] == 3
        assert all(s["n_batches"] == 6 for s in pipe["stages"])
        assert "pipelines" in metrics.summary()

    def test_async_server_sharded_deployment_bit_exact(self):
        requests = proxy_batches("bert_base", 1, 4, seed=22)
        reference = _session(seed=0)
        expected = [reference.run(x) for x in requests]
        with ModelServer(BatchPolicy(max_batch=2, max_delay_s=0.0),
                         workers=2) as server:
            server.deploy_proxy("b", "bert_base", scheme="aqs", seed=0,
                                shards=2)
            futures = [server.submit_async("b", x) for x in requests]
            for future, expect in zip(futures, expected):
                assert np.array_equal(future.result(timeout=60), expect)

    def test_unsharded_deployments_report_no_pipeline(self):
        with ModelServer() as server:
            server.deploy_proxy("b", "bert_base", scheme="aqs", seed=0)
            assert not server.entry("b").sharded
            assert server.metrics().pipelines is None

    def test_shards_conflicting_with_plan_raises(self):
        session = _session()
        plan = auto_partition(session, 2)
        with ModelServer() as server:
            with pytest.raises(ValueError, match="conflicts"):
                server.register("b", session, shards=3, shard_plan=plan)

    def test_unregister_closes_owned_stage_pool(self):
        with ModelServer() as server:
            server.deploy_proxy("b", "bert_base", scheme="aqs", seed=0,
                                shards=2)
            pool = server.entry("b").session.pool
            server.unregister("b")
            with pytest.raises(RuntimeError, match="shut-down"):
                pool.submit(lambda: None)


class TestStoreRoundTrip:
    def test_shard_plan_persists_and_redeploys(self, tmp_path):
        session = _session()
        plan = auto_partition(session, 3,
                              sample=proxy_batches("bert_base", 2, 1,
                                                   seed=5)[0])
        path = tmp_path / "bert.plans.npz"
        PlanStore(path).save(session, model_name="bert_base", seed=0,
                             shard_plan=plan)
        store = PlanStore(path)
        assert store.describe()["n_shards"] == 3
        assert store.load_shard_plan() == plan

        requests = proxy_batches("bert_base", 1, 3, seed=6)
        expected = [session.run(x) for x in requests]
        with ModelServer() as server:
            server.load("b", path, shards="stored")
            tickets = server.submit_many("b", requests)
            server.flush("b")
            for ticket, expect in zip(tickets, expected):
                assert np.array_equal(ticket.result(), expect)
            assert server.entry("b").session.plan == plan

    def test_sharded_session_saves_directly(self, tmp_path):
        session = _session()
        path = tmp_path / "bert.plans.npz"
        with ShardedSession.partition(session, 2) as sharded:
            PlanStore(path).save(sharded, model_name="bert_base", seed=0)
        loaded = PlanStore(path).load_shard_plan()
        assert loaded is not None and loaded.n_stages == 2

    def test_store_without_plan_returns_none_and_stored_raises(
            self, tmp_path):
        session = _session()
        path = tmp_path / "bert.plans.npz"
        PlanStore(path).save(session, model_name="bert_base", seed=0)
        store = PlanStore(path)
        assert store.describe()["n_shards"] == 0
        assert store.load_shard_plan() is None
        with ModelServer() as server:
            with pytest.raises(ValueError, match="no shard plan"):
                server.load("b", path, shards="stored")
        # plain loads (and integer re-partitions) still work
        with ModelServer() as server:
            server.load("b", path, shards=2)
            assert server.entry("b").sharded


class TestProfile:
    def test_profile_measures_without_polluting_stats(self):
        session = _session()
        report = session.profile(
            proxy_batches("bert_base", 2, 1, seed=5)[0], repeats=2)
        assert session.stats()["n_requests"] == 0
        assert len(session.trace.records) == 0
        assert set(layer.name for layer in report.layers) == \
            set(session.plans)
        assert all(layer.n_calls == 2 for layer in report.layers)
        assert all(layer.total_s > 0 for layer in report.layers)
        assert report.total_s >= report.layer_s
        assert report.other_s >= 0
        assert report.total_ops().mul4 > 0

    def test_profile_latency_by_layer_is_mean(self):
        session = _session()
        report = session.profile(
            proxy_batches("bert_base", 1, 1, seed=5)[0], repeats=3)
        by_layer = report.latency_by_layer()
        for layer in report.layers:
            assert by_layer[layer.name] == \
                pytest.approx(layer.total_s / 3)

    def test_profile_rejects_bad_repeats_and_unprepared(self):
        session = _session()
        with pytest.raises(ValueError, match="repeats"):
            session.profile(np.zeros((1, 2)), repeats=0)
        model, _ = build_proxy("bert_base", seed=0)
        fresh = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        with pytest.raises(RuntimeError, match="calibrated"):
            fresh.profile(np.zeros((1, 24, 192)))

    def test_serving_records_carry_layer_latency(self):
        session = _session()
        session.run(proxy_batches("bert_base", 1, 1, seed=5)[0])
        layers = session.requests[0].layers
        assert layers and all(rec.latency_s >= 0 for rec in layers)
        assert sum(rec.latency_s for rec in layers) > 0

    def test_record_external_accounting(self):
        session = _session()
        record = session.record_external((2, 3), [], 0.25)
        assert record.request_id == 0
        stats = session.stats()
        assert stats["n_requests"] == 1
        assert stats["exec_s"] == pytest.approx(0.25)
        assert session.total_ops() == OpCounts()


class TestReviewRegressions:
    """Pinned fixes: auto_calibrate bypass, shutdown hangs, shards typing."""

    def test_auto_calibrate_session_rejected_until_calibrated(self):
        """Stage fns bypass run()'s calibrate-on-first-batch hook, so an
        unprepared auto_calibrate session must be rejected, never silently
        served as the raw float model."""
        model, _ = build_proxy("bert_base", seed=0)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"),
                                 auto_calibrate=True)
        with pytest.raises(ShardError, match="calibrate"):
            ShardedSession.partition(session, 2)
        with ModelServer() as server:
            with pytest.raises(ShardError, match="calibrate"):
                server.register("b", session, shards=2)
        # once calibrated, the same session shards fine
        session.calibrate(proxy_batches("bert_base", 2, 2, seed=1))
        with ShardedSession.partition(session, 2):
            pass

    def test_run_on_shut_down_pool_raises_instead_of_hanging(self):
        """Submit failures (shutdown race) must fail every batch future —
        run() raises; it must never block on a future nothing resolves."""
        pool = WorkerPool(1)
        ex = PipelineExecutor([lambda x: (x, None)], pool, depth=2)
        pool.shutdown(wait=True)
        with pytest.raises(RuntimeError, match="shut-down"):
            ex.run([np.array(i) for i in range(5)])

    def test_stage_result_latency_is_per_batch(self):
        """latency_s is stamped when the batch's last stage completes, not
        when the whole run drains, so it never exceeds the run wall."""
        with WorkerPool(2) as pool:
            ex = PipelineExecutor(
                [lambda x: (time.sleep(0.01) or x, None)], pool, depth=2)
            t0 = time.perf_counter()
            results = ex.run([np.array(i) for i in range(4)])
            wall = time.perf_counter() - t0
        for result in results:
            assert 0 < result.latency_s <= wall + 0.05

    def test_register_rejects_non_int_shards(self):
        session = _session()
        with ModelServer() as server:
            with pytest.raises(ValueError, match="int"):
                server.register("b", session, shards="stored")
            with pytest.raises(ValueError, match="int"):
                server.register("b2", session, shards=True)

    def test_load_rejects_unknown_shards_string(self, tmp_path):
        session = _session()
        path = tmp_path / "bert.plans.npz"
        PlanStore(path).save(session, model_name="bert_base", seed=0)
        with ModelServer() as server:
            with pytest.raises(ValueError, match="'stored'"):
                server.load("b", path, shards="storeed")
