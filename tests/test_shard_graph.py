"""Tests for model segmentation (repro.shard.graph)."""

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import PROXY_SPECS, build_proxy, proxy_batches
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.shard import (Segment, ShardError, model_segments,
                         segment_for_layer)

SEGMENTABLE = ("bert_base", "gpt2", "llama32_1b", "resnet18")


def _compose(segments, x):
    for segment in segments:
        x = segment.fn(x)
    return x


class TestZooSegmentation:
    @pytest.mark.parametrize("name", SEGMENTABLE)
    def test_segments_compose_to_forward_float(self, name):
        model, _ = build_proxy(name, seed=0)
        segments = model_segments(model)
        assert len(segments) >= 3       # adapter + blocks + head
        x = proxy_batches(name, 2, 1, seed=1)[0]
        assert np.array_equal(_compose(segments, x), model(x))

    @pytest.mark.parametrize("name", ("bert_base", "gpt2"))
    def test_segments_stay_valid_after_conversion(self, name):
        """Segment fns resolve modules at call time, so the same segments
        built on the float model execute the quantized swaps."""
        model, _ = build_proxy(name, seed=0)
        segments = model_segments(model)      # built pre-conversion
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        session.calibrate(proxy_batches(name, 2, 2, seed=1))
        x = proxy_batches(name, 2, 1, seed=2)[0]
        assert np.array_equal(_compose(segments, x), session.run(x))

    def test_every_gemm_layer_is_owned_by_a_segment(self):
        for name in SEGMENTABLE:
            model, _ = build_proxy(name, seed=0)
            session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
            session.calibrate(proxy_batches(name, 2, 1, seed=1))
            segments = model_segments(session.model)
            for layer in session.plans:
                assert segment_for_layer(segments, layer) is not None, \
                    f"{name}: {layer} owned by no segment"

    def test_segment_order_matches_execution_order(self):
        model, _ = build_proxy("gpt2", seed=0)
        names = [s.name for s in model_segments(model)]
        assert names[0] == "embed" and names[-1] == "head"
        assert names[1:-1] == [f"blocks.b{i}" for i in range(len(names) - 2)]

    def test_all_proxies_are_segmentable(self):
        """Every zoo proxy must stay shardable — a new family needs a
        segmenter (or the protocol) before it ships."""
        for name in PROXY_SPECS:
            model, _ = build_proxy(name, seed=0)
            assert model_segments(model)


class _ProtocolNet(Module):
    """Opts in to sharding via the pipeline_segments() protocol."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = Linear(8, 16, rng=rng)
        self.fc2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))

    def pipeline_segments(self):
        return [
            ("fc1", ("fc1",), lambda x: np.maximum(self.fc1(x), 0.0)),
            ("fc2", ("fc2",), lambda x: self.fc2(x)),
        ]


class TestProtocol:
    def test_protocol_segments_used(self):
        model = _ProtocolNet()
        segments = model_segments(model)
        assert [s.name for s in segments] == ["fc1", "fc2"]
        x = np.random.default_rng(1).normal(0, 1, (3, 8))
        assert np.array_equal(_compose(segments, x), model(x))

    def test_protocol_may_return_segment_objects(self):
        model = _ProtocolNet()
        plain = model.pipeline_segments()
        model.pipeline_segments = lambda: [
            Segment(name, prefixes, fn) for name, prefixes, fn in plain]
        assert [s.name for s in model_segments(model)] == ["fc1", "fc2"]

    def test_empty_protocol_raises(self):
        model = _ProtocolNet()
        model.pipeline_segments = list
        with pytest.raises(ShardError, match="no segments"):
            model_segments(model)

    def test_unknown_model_raises_typed_error(self):
        class Opaque(Module):
            def forward(self, x):
                return x

        with pytest.raises(ShardError, match="pipeline_segments"):
            model_segments(Opaque())
        assert issubclass(ShardError, ValueError)


class TestOwnership:
    def test_owns_matches_exact_and_nested_names(self):
        segment = Segment("s", ("blocks.b1", "head"), lambda x: x)
        assert segment.owns("blocks.b1")
        assert segment.owns("blocks.b1.attn.q_proj")
        assert segment.owns("head")
        assert not segment.owns("blocks.b10")   # prefix is path-aware
        assert not segment.owns("blocks.b2.mlp.fc1")

    def test_segment_for_layer_returns_none_when_unowned(self):
        segments = [Segment("a", ("x",), lambda v: v)]
        assert segment_for_layer(segments, "y.z") is None
