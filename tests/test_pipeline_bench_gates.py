"""Collects the pipeline benchmark's gate functions into the tier-1 run.

Same rationale as ``test_serving_bench_gates.py``: the gates live in
``benchmarks/bench_pipeline.py`` (pipelined bit-exactness plus the
depth >= 2 / >= 1.3x throughput criterion), whose file name pytest never
collects on its own — a regression that broke stage scheduling or pipeline
exactness would ship green.  This wrapper re-exports them so plain
``pytest`` (local and CI) runs them; the wall-clock gate stays opt-in via
``REPRO_RUN_THROUGHPUT_GATE`` exactly like the serving gate, and skips
*explicitly* below its 4-core floor, naming the host's core count
(``benchmarks._util.throughput_gate_or_skip``), so a few-core lane
reports why the gate could not bind instead of a hollow pass.
"""

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_pipeline  # noqa: E402  (needs the path shim above)

test_pipelined_bit_exact = bench_pipeline.test_pipelined_bit_exact
test_process_stages_bit_exact = bench_pipeline.test_process_stages_bit_exact
test_pipeline_throughput_speedup = \
    bench_pipeline.test_pipeline_throughput_speedup
