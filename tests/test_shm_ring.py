"""ShmRing framing edge cases: exact-boundary wraps, oversize fallback
accounting, and interleaved multi-stream frames in one slotted segment.

These are the corners the serving protocol normally never hits (frames are
far smaller than the ring) but the stage transport depends on: a pipeline
edge's slotted ring must refuse — not corrupt — a frame one byte too big,
and must keep ``depth`` interleaved frames simultaneously readable.
"""

import numpy as np
import pytest

from repro.serve.shm import ShmRing, _ALIGN, _HEAD


def _frame_payload_bytes(frame_bytes: int) -> int:
    """Payload size (in float64s) making one-array frames exactly
    ``frame_bytes`` long: one 64-aligned header chunk + aligned payload."""
    assert frame_bytes % _ALIGN == 0 and frame_bytes >= 2 * _ALIGN
    return frame_bytes - _ALIGN


def _array_for_frame(frame_bytes: int, fill: float) -> np.ndarray:
    n = _frame_payload_bytes(frame_bytes) // 8
    return np.full(n, fill, dtype=np.float64)


def test_frame_size_matches_layout():
    arr = _array_for_frame(128, 1.0)
    assert ShmRing.frame_size([arr]) == 128


def test_unslotted_wrap_at_exact_capacity_boundary():
    ring = ShmRing(4096)
    try:
        frame = 128
        per_ring = ring.capacity // frame
        offsets = [ring.write(i, [_array_for_frame(frame, float(i))])
                   for i in range(per_ring)]
        # The last frame ends exactly at capacity: fits without wrapping.
        assert offsets == [i * frame for i in range(per_ring)]
        assert ring.n_wraps == 0
        # The next frame has zero tail left: it must wrap to offset 0.
        off = ring.write(per_ring, [_array_for_frame(frame, -1.0)])
        assert off == 0
        assert ring.n_wraps == 1
        req_id, _tid, arrays = ring.read(0)
        assert req_id == per_ring
        assert arrays[0][0] == -1.0
        # The frame *after* the wrapped one is still intact.
        req_id, _tid, arrays = ring.read(frame)
        assert req_id == 1
        assert arrays[0][0] == 1.0
    finally:
        ring.close()


def test_slotted_accepts_exact_region_and_refuses_one_chunk_more():
    ring = ShmRing(4096, slots=2)
    try:
        region = ring.capacity // 2
        exact = _array_for_frame(region, 2.0)
        assert ShmRing.frame_size([exact]) == region
        assert ring.write(0, [exact]) == 0
        # One alignment chunk more than a region: refused, not truncated.
        over = np.full(region // 8, 3.0, dtype=np.float64)
        assert ShmRing.frame_size([over]) > region
        assert ring.write(1, [over]) is None
        # The refusal consumed no slot and no sequence number: the next
        # fitting frame lands in slot 1, and the exact frame is unharmed.
        assert ring.write(2, [_array_for_frame(128, 4.0)]) == region
        assert ring.n_frames == 2
        assert ring.n_wraps == 0
        _, _, arrays = ring.read(0)
        assert np.all(arrays[0] == 2.0)
    finally:
        ring.close()


def test_oversize_fallback_conserves_counters():
    """A None write is pure fallback signalling: no frame, no wrap, and
    the frames-written + fallbacks tally equals the attempts made."""
    ring = ShmRing(4096, slots=4)
    try:
        region = ring.capacity // 4
        attempts, fallbacks = 0, 0
        rng = np.random.default_rng(0)
        for i in range(12):
            big = bool(i % 3 == 2)
            n = (region * 2 if big else 64) // 8
            offset = ring.write(i, [rng.standard_normal(n)])
            attempts += 1
            if offset is None:
                fallbacks += 1
        assert fallbacks == 4
        assert ring.n_frames == attempts - fallbacks
        # 8 accepted frames over 4 slots: slot 0 was re-entered exactly once.
        assert ring.n_wraps == 1
    finally:
        ring.close()


def test_interleaved_streams_share_one_slotted_segment():
    """Two stage edges' frame streams interleaved through one segment:
    with ``slots >= `` the in-flight total, every frame stays readable,
    tagged and byte-correct despite the interleaving."""
    ring = ShmRing(8192, slots=4)
    try:
        rng = np.random.default_rng(7)
        payloads = {}
        offsets = {}
        # Edge A tags req_ids 100+i, edge B 200+i; writes alternate.
        for i in range(2):
            for edge, base in (("a", 100), ("b", 200)):
                arr = rng.standard_normal(32)
                payloads[(edge, i)] = arr.copy()
                offsets[(edge, i)] = ring.write(base + i, [arr])
        assert ring.n_frames == 4
        assert len({off for off in offsets.values()}) == 4  # distinct slots
        for (edge, i), offset in offsets.items():
            req_id, _tid, arrays = ring.read(offset)
            assert req_id == (100 if edge == "a" else 200) + i
            assert np.array_equal(arrays[0], payloads[(edge, i)])
    finally:
        ring.close()


def test_attached_writer_shares_slot_geometry():
    """attach(slots=) gives a second handle the creator's rotation — the
    stage-response direction, where the attaching side is the writer."""
    ring = ShmRing(4096, slots=2)
    writer = ShmRing.attach(ring.name, slots=2)
    try:
        region = ring.capacity // 2
        assert writer.capacity == ring.capacity
        a = writer.write(0, [np.arange(8.0)])
        b = writer.write(1, [np.arange(8.0) + 1])
        c = writer.write(2, [np.arange(8.0) + 2])
        assert (a, b, c) == (0, region, 0)
        assert writer.n_wraps == 1
        req_id, _tid, arrays = ring.read(region)
        assert req_id == 1
        assert np.array_equal(arrays[0], np.arange(8.0) + 1)
    finally:
        writer.close()
        ring.close()


def test_trace_id_rides_frame_header():
    """The u64 trace id round-trips through the frame header, defaults to
    0 (untraced), and is per-frame state — one traced frame does not
    contaminate its neighbours."""
    ring = ShmRing(4096, slots=2)
    try:
        tid = 0xDEAD_BEEF_CAFE_F00D
        off_a = ring.write(1, [np.arange(4.0)], trace_id=tid)
        off_b = ring.write(2, [np.arange(4.0) + 1])
        req_id, got_tid, arrays = ring.read(off_a)
        assert (req_id, got_tid) == (1, tid)
        assert np.array_equal(arrays[0], np.arange(4.0))
        req_id, got_tid, _ = ring.read(off_b)
        assert (req_id, got_tid) == (2, 0)
    finally:
        ring.close()


def test_slotted_geometry_validation():
    with pytest.raises(ValueError, match="slots"):
        ShmRing(4096, slots=0)
    with pytest.raises(ValueError, match="slots"):
        ShmRing(256, slots=128)


def test_read_rejects_empty_offset():
    ring = ShmRing(4096, slots=2)
    try:
        region = ring.capacity // 2
        ring.write(0, [np.arange(4.0)])
        with pytest.raises(ValueError, match="magic"):
            ring.read(region)  # slot 1 never written
    finally:
        ring.close()
