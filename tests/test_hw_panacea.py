"""Tests for the Panacea accelerator model and its baselines' ordering."""

import numpy as np
import pytest

from repro.hw.accelerator import HwConfig
from repro.hw.panacea import PanaceaConfig, PanaceaModel, compressed_layer_bytes
from repro.hw.sibia import SibiaModel
from repro.hw.simd import SimdModel
from repro.hw.systolic import SystolicConfig, SystolicModel
from repro.models.workloads import synthetic_profile


def _profile(rho_w=0.5, rho_x=0.9, m=512, k=512, n=512, seed=0, **kw):
    return synthetic_profile(m, k, n, rho_w, rho_x, seed=seed, **kw)


class TestPanaceaConfig:
    def test_default_budget_is_3072_multipliers(self):
        assert PanaceaConfig().n_mul4 == 3072

    def test_tm(self):
        assert PanaceaConfig().tm == 64


class TestCompressedBytes:
    def test_dense_matches_two_planes(self):
        p = _profile(rho_w=0.0, rho_x=0.0)
        w_bytes, x_bytes = compressed_layer_bytes(p)
        # two 4-bit planes = 1 byte per element, plus RLE indices
        assert w_bytes >= 512 * 512
        assert x_bytes >= 512 * 512

    def test_sparsity_shrinks_footprint(self):
        dense_w, dense_x = compressed_layer_bytes(_profile(0.0, 0.0))
        sparse_w, sparse_x = compressed_layer_bytes(_profile(0.9, 0.9))
        assert sparse_w < dense_w
        assert sparse_x < dense_x

    def test_ho_plane_fully_compressible(self):
        _, x_bytes = compressed_layer_bytes(_profile(0.0, 1.0))
        # only the dense LO plane (0.5 B/elem) plus indices
        assert x_bytes < 512 * 512 * 0.55


class TestPanaceaModel:
    def test_layer_perf_fields(self):
        model = PanaceaModel()
        perf = model.simulate_layer(_profile(), np.random.default_rng(0))
        assert perf.compute_cycles > 0
        assert perf.dram_cycles > 0
        assert perf.energy.total > 0
        assert 0 < perf.utilization <= 1.0

    def test_sparsity_speeds_up_compute(self):
        model = PanaceaModel()
        rng = np.random.default_rng(0)
        slow = model.simulate_layer(_profile(0.0, 0.0), rng)
        fast = model.simulate_layer(_profile(0.8, 0.95), rng)
        assert fast.compute_cycles < slow.compute_cycles / 1.5

    def test_sparsity_reduces_energy(self):
        model = PanaceaModel()
        rng = np.random.default_rng(0)
        dense = model.simulate_layer(_profile(0.0, 0.0), rng)
        sparse = model.simulate_layer(_profile(0.8, 0.95), rng)
        assert sparse.energy.total < dense.energy.total

    def test_dtp_helps_at_high_weight_sparsity(self):
        """Fig. 13: DTP lifts throughput when weight HO vectors are sparse."""
        rng = np.random.default_rng(1)
        prof = _profile(rho_w=0.9, rho_x=0.9, m=256, k=512, n=512)
        on = PanaceaModel(arch=PanaceaConfig(dtp=True)).simulate_layer(
            prof, np.random.default_rng(2))
        off = PanaceaModel(arch=PanaceaConfig(dtp=False)).simulate_layer(
            prof, np.random.default_rng(2))
        assert on.compute_cycles <= off.compute_cycles
        del rng

    def test_zero_skip_only_ablation_slower(self):
        """Fig. 18(b): skipping only zero slices forfeits the r-vector
        compression under asymmetric quantization (r != 0)."""
        prof = _profile(rho_w=0.3, rho_x=0.95)
        assert prof.r != 0
        full = PanaceaModel(arch=PanaceaConfig(skip_nonzero=True))
        zero_only = PanaceaModel(arch=PanaceaConfig(skip_nonzero=False))
        a = full.simulate_layer(prof, np.random.default_rng(3))
        b = zero_only.simulate_layer(prof, np.random.default_rng(3))
        assert a.cycles < b.cycles
        assert a.energy.total < b.energy.total

    def test_model_aggregation(self):
        model = PanaceaModel()
        perf = model.simulate_model([_profile(seed=i) for i in range(3)],
                                    "toy")
        assert perf.total_cycles > 0
        assert perf.tops > 0
        assert perf.tops_per_watt > 0
        assert len(perf.layers) == 3

    def test_compensation_energy_is_small(self):
        """Table I: the compensation adds negligible overhead."""
        perf = PanaceaModel().simulate_layer(_profile(0.3, 0.9),
                                             np.random.default_rng(4))
        assert perf.energy.compensation < 0.05 * perf.energy.total


class TestDesignOrdering:
    """Cross-design sanity: the orderings the paper's figures rely on."""

    def _all(self, prof, seed=0):
        hw = HwConfig()
        designs = {
            "panacea": PanaceaModel(hw),
            "sibia": SibiaModel(hw),
            "simd": SimdModel(hw),
            "sa_ws": SystolicModel(hw, SystolicConfig(dataflow="ws")),
            "sa_os": SystolicModel(hw, SystolicConfig(dataflow="os")),
        }
        dense_prof = synthetic_profile(prof.layer.m, prof.layer.k,
                                       prof.layer.n, 0.0, 0.0, seed=1)
        out = {}
        for name, model in designs.items():
            p = prof if name in ("panacea", "sibia") else dense_prof
            out[name] = model.simulate_model([p], "toy", seed=seed)
        return out

    def test_panacea_beats_sibia_at_asymmetric_sparsity(self):
        res = self._all(_profile(rho_w=0.5, rho_x=0.95))
        assert res["panacea"].tops >= res["sibia"].tops
        assert res["panacea"].tops_per_watt > res["sibia"].tops_per_watt

    def test_panacea_beats_dense_designs_at_high_sparsity(self):
        res = self._all(_profile(rho_w=0.7, rho_x=0.95))
        for dense in ("simd", "sa_ws", "sa_os"):
            assert res["panacea"].tops > res[dense].tops
            assert res["panacea"].tops_per_watt > res[dense].tops_per_watt

    def test_simd_wins_at_zero_sparsity_with_few_dwos(self):
        """Fig. 13(a): at very low sparsity the 4-DWO Panacea falls behind
        the dense SIMD design."""
        prof = _profile(rho_w=0.0, rho_x=0.0)
        res = self._all(prof)
        assert res["simd"].tops > res["panacea"].tops

    def test_sibia_tracks_only_max_side(self):
        """Sibia gains nothing from the second operand's sparsity."""
        hw = HwConfig()
        one_sided = synthetic_profile(512, 512, 512, 0.0, 0.9, seed=2)
        both = synthetic_profile(512, 512, 512, 0.85, 0.9, seed=2)
        sib_one = SibiaModel(hw).simulate_model([one_sided], "a")
        sib_both = SibiaModel(hw).simulate_model([both], "b")
        pan_one = PanaceaModel(hw).simulate_model([one_sided], "a")
        pan_both = PanaceaModel(hw).simulate_model([both], "b")
        sib_gain = sib_one.total_cycles / sib_both.total_cycles
        pan_gain = pan_one.total_cycles / pan_both.total_cycles
        assert pan_gain > sib_gain
