"""Integration tests: the full stack working together.

These exercise the paths a user actually takes — calibrate a model, convert
it, run quantized inference, hand the trace to the hardware models, chain
layers through the PPU — and check cross-module invariants no unit test
sees.
"""

import numpy as np
import pytest

from repro.core import (
    AqsGemmConfig,
    ExecutionTrace,
    PostProcessingUnit,
    PpuConfig,
    PtqConfig,
    PtqPipeline,
    aqs_gemm,
)
from repro.core.pipeline import LayerQuantRecord  # noqa: F401  (API surface)
from repro.hw import HwConfig, PanaceaModel, SibiaModel, analyze
from repro.models import (
    build_proxy,
    get_config,
    policy_for_model,
    profile_model,
    token_batches,
)
from repro.models.workloads import synthetic_profile
from repro.nn import functional as F
from repro.quant import asymmetric_params, quantize, symmetric_params


class TestQuantizedInferenceEndToEnd:
    def test_lm_pipeline_trace_feeds_hw_model(self):
        """calibrate -> convert -> run -> per-layer trace consistent with
        the model's GEMM inventory."""
        model, _ = build_proxy("gpt2", seed=0)
        pipe = PtqPipeline(model, PtqConfig(scheme="aqs"))
        pipe.calibrate(token_batches(512, 1, 16, 2, seed=0))
        trace = ExecutionTrace()
        qmodel = pipe.convert(trace=trace, count_ops=True)
        ids = np.arange(16).reshape(1, 16) % 512
        qmodel(ids)
        # every Linear executed once, with the right GEMM shapes
        by_layer = trace.by_layer()
        assert len(by_layer) == len(pipe.records)
        for name, execs in by_layer.items():
            rec = pipe.records[name]
            assert execs[0].m == rec.w_q.shape[0]
            assert execs[0].k == rec.w_q.shape[1]
            assert execs[0].n == 16
            assert execs[0].ops.mul4 > 0

    def test_quantized_lm_output_close_to_fp(self):
        fp, _ = build_proxy("gpt2", seed=0)
        ids = np.arange(24).reshape(1, 24) % 512
        ref = fp(ids)
        model, _ = build_proxy("gpt2", seed=0)
        pipe = PtqPipeline(model, PtqConfig(scheme="aqs"))
        pipe.calibrate(token_batches(512, 1, 24, 2, seed=1))
        out = pipe.convert()(ids)
        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.25

    def test_all_three_quantized_schemes_agree_roughly(self):
        fp, _ = build_proxy("bert_base", seed=0)
        x = np.random.default_rng(2).normal(size=(2, 12, 192))
        ref = fp(x)
        outs = {}
        for scheme, bits in (("aqs", 8), ("sibia", 7), ("int8_dense", 8)):
            model, _ = build_proxy("bert_base", seed=0)
            pipe = PtqPipeline(model, PtqConfig(scheme=scheme, x_bits=bits))
            pipe.calibrate([x])
            outs[scheme] = pipe.convert()(x)
        for scheme, out in outs.items():
            rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
            assert rel < 0.3, scheme


class TestLayerChainingThroughPpu:
    def test_two_layer_chain_matches_float_reference(self):
        """GEMM -> PPU (GELU + requantize + compress) -> GEMM, compared to
        the float pipeline — the accelerator's actual inter-layer path."""
        rng = np.random.default_rng(3)
        k0, k1, m1, n = 64, 48, 32, 16
        w0 = rng.standard_t(5, (k1, k0)) * 0.08
        w1 = rng.standard_t(5, (m1, k1)) * 0.08
        x = rng.standard_t(4, (k0, n)) * 0.4 + 0.2

        # float reference
        ref = w1 @ F.gelu(w0 @ x)

        # layer 0: quantize + AQS-GEMM
        w0_p = symmetric_params(w0, 7)
        x_p = asymmetric_params(x, 8)
        w0_q = quantize(w0, w0_p)
        x_q = quantize(x, x_p)
        zp0 = int(x_p.zero_point)
        acc0 = aqs_gemm(w0_q, x_q, zp0).acc
        acc0 = acc0 - zp0 * w0_q.sum(axis=1, keepdims=True)  # Eq. 3 fold
        acc_scale = float(w0_p.scale) * float(x_p.scale)

        # PPU: GELU + requantize for layer 1
        h_float = F.gelu(acc0 * acc_scale)
        h_params = asymmetric_params(h_float, 8)
        ppu = PostProcessingUnit(PpuConfig(nonlinearity="gelu",
                                           pwl_segments=64))
        ppu_out = ppu.process(acc0, acc_scale, h_params,
                              int(h_params.zero_point))

        # layer 1: AQS-GEMM on the PPU's codes
        w1_p = symmetric_params(w1, 7)
        w1_q = quantize(w1, w1_p)
        zp1 = int(h_params.zero_point)
        acc1 = aqs_gemm(w1_q, ppu_out.codes, zp1).acc
        acc1 = acc1 - zp1 * w1_q.sum(axis=1, keepdims=True)
        out = acc1 * float(w1_p.scale) * float(h_params.scale)

        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.15

    def test_ppu_compressed_handoff_consistent_with_gemm_sparsity(self):
        """The rho the next layer's AQS-GEMM observes equals the vector
        sparsity of the PPU's compressed output."""
        rng = np.random.default_rng(4)
        acc = rng.integers(-30000, 30000, (64, 32))
        reals = F.gelu(acc * 5e-5)
        params = asymmetric_params(reals, 8)
        zp = int(params.zero_point)
        ppu = PostProcessingUnit(PpuConfig(nonlinearity="gelu"))
        out = ppu.process(acc, 5e-5, params, zp)
        w = rng.integers(-64, 64, (16, 64))
        res = aqs_gemm(w, out.codes, zp, AqsGemmConfig())
        mask = out.compressed.uncompressed_mask
        rho_wire = 1.0 - mask.mean()
        assert res.rho_x == pytest.approx(rho_wire, abs=1e-9)


class TestProfileToHardwareConsistency:
    def test_profiles_drive_all_designs(self):
        cfg = get_config("bert_base")
        import dataclasses

        small = dataclasses.replace(cfg, layers=tuple(cfg.layers[:6]))
        prof = profile_model(small, policy_for_model(small, "aqs"),
                             n_sample=64, m_cap=256, seed=0)
        hw = HwConfig()
        pan = PanaceaModel(hw).simulate_model(prof, "bert")
        sib_prof = profile_model(small, policy_for_model(small, "sibia"),
                                 n_sample=64, m_cap=256, seed=0)
        sib = SibiaModel(hw).simulate_model(sib_prof, "bert")
        assert pan.effective_macs == sib.effective_macs  # same workload
        assert pan.total_energy_pj < sib.total_energy_pj

    def test_analysis_over_simulation(self):
        prof = [synthetic_profile(512, 512, 2048, 0.4, 0.9, seed=i)
                for i in range(3)]
        perf = PanaceaModel().simulate_model(prof, "toy")
        report = analyze(perf)
        assert len(report.layers) == 3
        # energy accounted in the analysis equals the simulation's
        assert sum(l.energy_pj for l in report.layers) == pytest.approx(
            perf.total_energy_pj)

    def test_panacea_energy_monotone_in_sparsity(self):
        """More compressible workloads never cost more energy."""
        energies = []
        for rho in (0.0, 0.3, 0.6, 0.9):
            prof = synthetic_profile(512, 512, 512, rho, rho, seed=7)
            perf = PanaceaModel().simulate_model([prof], "toy")
            energies.append(perf.total_energy_pj)
        assert all(b <= a * 1.02 for a, b in zip(energies, energies[1:]))
