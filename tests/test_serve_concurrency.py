"""Concurrency stress tests: many threads, one server, conserved metrics.

The contract under test: concurrency is a *scheduling* freedom, never a
numeric one.  However many threads hammer the server, every ticket is
served exactly once, lifetime accounting balances to what was submitted,
and each output is bit-identical to a serial replay of the same request.
"""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import BatchPolicy, ModelServer

N_DEPLOYMENTS = 3
N_THREADS = 8
REQUESTS_PER_THREAD = 6


class TinyNet(Module):
    def __init__(self, seed=0, out_features=8):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, out_features, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _calibration(seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(3)]


def _session(seed=0, **kwargs):
    return PanaceaSession(TinyNet(seed), PtqConfig(scheme="aqs"),
                          calibration=_calibration(seed=seed), **kwargs)


def _request(thread_id, i):
    rng = np.random.default_rng(1000 + 97 * thread_id + i)
    return rng.normal(0, 1, (2, 16))


def _deployment_for(thread_id, i):
    return f"m{(thread_id + i) % N_DEPLOYMENTS}"


def _reference_outputs():
    """Serial replay: one fresh solo session per deployment, run() only."""
    solo = {f"m{d}": _session(seed=d) for d in range(N_DEPLOYMENTS)}
    reference = {}
    for thread_id in range(N_THREADS):
        for i in range(REQUESTS_PER_THREAD):
            name = _deployment_for(thread_id, i)
            reference[(thread_id, i)] = solo[name].run(_request(thread_id, i))
    return reference


def _hammer(server, submit):
    """N_THREADS threads submitting interleaved requests; returns results
    keyed by (thread_id, request_index) and any worker exceptions."""
    results, errors = {}, []
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_id):
        try:
            barrier.wait(timeout=10.0)
            handles = []
            for i in range(REQUESTS_PER_THREAD):
                name = _deployment_for(thread_id, i)
                handles.append((i, submit(server, name,
                                          _request(thread_id, i))))
            for i, handle in enumerate(handles):
                results[(thread_id, handle[0])] = handle[1].result()
        except Exception as exc:  # noqa: BLE001 — surfaced to the assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "worker hung"
    return results, errors


def _assert_conserved(server, n_submitted):
    """No dropped or duplicated tickets anywhere in the accounting."""
    metrics = server.metrics()
    assert metrics.n_requests + metrics.n_cache_hits == n_submitted
    assert metrics.n_failed == 0
    for name, stats in metrics.deployments.items():
        sched, sess = stats["scheduler"], stats["session"]
        # Scheduler and session agree: every engine-served request of this
        # deployment ran exactly one session forward.
        assert sched["n_requests"] == sess["n_requests"], name
        assert sched["depth"] == 0, name
    # Session request ids are allocated once each — the retained records
    # must be strictly increasing with no duplicates.
    for entry_name in server.models():
        records = server.entry(entry_name).session.requests
        ids = [r.request_id for r in records]
        assert ids == sorted(set(ids)), entry_name


@pytest.fixture(scope="module")
def reference():
    return _reference_outputs()


class TestBlockingSubmitStress:
    @pytest.mark.parametrize("workers", [0, 4])
    def test_hammered_server_matches_serial_replay(self, reference, workers):
        server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                             workers=workers)
        with server:
            for d in range(N_DEPLOYMENTS):
                server.register(f"m{d}", _session(seed=d))
            results, errors = _hammer(
                server, lambda srv, name, x: srv.submit(name, x))
            assert not errors, errors
            assert len(results) == N_THREADS * REQUESTS_PER_THREAD
            for key, out in results.items():
                assert np.array_equal(out, reference[key]), key
            _assert_conserved(server, N_THREADS * REQUESTS_PER_THREAD)


class TestAsyncSubmitStress:
    def test_async_hammer_matches_serial_replay(self, reference):
        server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                             workers=4)
        with server:
            for d in range(N_DEPLOYMENTS):
                server.register(f"m{d}", _session(seed=d))
            results, errors = _hammer(
                server, lambda srv, name, x: srv.submit_async(name, x))
            assert not errors, errors
            assert len(results) == N_THREADS * REQUESTS_PER_THREAD
            for key, out in results.items():
                assert np.array_equal(out, reference[key]), key
            _assert_conserved(server, N_THREADS * REQUESTS_PER_THREAD)

    def test_async_with_cache_matches_serial_replay(self, reference):
        """Caching on: duplicate payloads may short-circuit, totals still
        balance and outputs stay bit-exact."""
        server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                             workers=4, cache_bytes=1 << 20)
        with server:
            for d in range(N_DEPLOYMENTS):
                server.register(f"m{d}", _session(seed=d))
            results, errors = _hammer(
                server, lambda srv, name, x: srv.submit_async(name, x))
            assert not errors, errors
            for key, out in results.items():
                assert np.array_equal(out, reference[key]), key
            _assert_conserved(server, N_THREADS * REQUESTS_PER_THREAD)


class TestAsyncApi:
    def test_submit_async_returns_future_with_ticket(self):
        with ModelServer(BatchPolicy(max_batch=1), workers=2) as server:
            server.register("m", _session(seed=0))
            future = server.submit_async("m", _request(0, 0))
            assert isinstance(future, Future)
            out = future.result(timeout=30.0)
            assert out.shape == (2, 8)
            assert future.ticket.done
            assert future.ticket.record is not None

    def test_submit_async_without_pool_resolves_eagerly(self):
        server = ModelServer(BatchPolicy(max_batch=1))
        server.register("m", _session(seed=0))
        future = server.submit_async("m", _request(0, 1))
        assert future.done()
        assert future.result().shape == (2, 8)

    def test_submit_async_failure_lands_in_future(self):
        with ModelServer(BatchPolicy(max_batch=1), workers=2) as server:
            server.register("m", _session(seed=0))
            future = server.submit_async("m", np.zeros((2, 12)))  # bad dim
            with pytest.raises(Exception):
                future.result(timeout=30.0)

    def test_submit_async_inline_failure_lands_in_future_too(self):
        """workers=0 fires the batch on this thread; the error must still
        arrive through the future, never as a synchronous raise — the API
        contract is identical with and without a pool."""
        server = ModelServer(BatchPolicy(max_batch=1))
        server.register("m", _session(seed=0))
        future = server.submit_async("m", np.zeros((2, 12)))  # bad dim
        assert future.done()
        with pytest.raises(ValueError):
            future.result()

    def test_async_requests_coalesce_under_delay_policy(self):
        """The serving worker waits out max_delay_s for riders: quickly
        submitted async requests must fuse into one engine batch instead of
        degenerating to batches of one whenever a worker is free."""
        with ModelServer(BatchPolicy(max_batch=3, max_delay_s=0.25),
                         workers=1) as server:
            server.register("m", _session(seed=0))
            futures = [server.submit_async("m", _request(5, i))
                       for i in range(3)]
            for future in futures:
                future.result(timeout=30.0)
            assert all(f.ticket.batch_size == 3 for f in futures), \
                [f.ticket.batch_size for f in futures]
            assert server.entry("m").batcher.n_batches == 1

    def test_cancelled_future_dequeues_request(self):
        """future.cancel() before pickup must drop the payload too — a
        cancelled request never rides someone else's batch."""
        from concurrent.futures import CancelledError

        with ModelServer(BatchPolicy(max_batch=16, max_delay_s=60.0),
                         workers=1) as server:
            server.register("m", _session(seed=0))
            gate = threading.Event()
            blocker = server.pool.submit(gate.wait, 10.0)  # occupy worker
            future = server.submit_async("m", _request(6, 0))
            assert future.cancel()
            gate.set()
            blocker.result(timeout=30.0)
            batcher = server.entry("m").batcher
            assert batcher.depth == 0
            assert batcher.n_cancelled == 1
            with pytest.raises(CancelledError):
                future.ticket.result()
            assert server.metrics().n_cancelled == 1
            # The deployment stays serviceable after a cancellation (the
            # 60 s delay policy means a lone request waits for riders, so
            # force service exactly like an inline caller would).
            replacement = server.submit_async("m", _request(6, 1))
            server.flush("m")
            assert replacement.result(timeout=30.0).shape == (2, 8)

    def test_parallel_flush_drains_all_deployments(self):
        with ModelServer(BatchPolicy(max_batch=16, max_delay_s=60.0),
                         workers=3) as server:
            for d in range(N_DEPLOYMENTS):
                server.register(f"m{d}", _session(seed=d))
            tickets = [server.submit(_deployment_for(0, i), _request(3, i))
                       for i in range(9)]
            assert not all(t.done for t in tickets)
            served = server.flush()
            assert served == 9
            assert all(t.done for t in tickets)

    def test_close_is_idempotent_and_reusable_inline(self):
        server = ModelServer(workers=2)
        server.register("m", _session(seed=0))
        server.close()
        server.close()

    def test_close_with_poison_batch_still_drains_and_joins_pool(self):
        """A failing drain must not strand other deployments' queues or
        leak the pool's threads; the failure re-raises after cleanup."""
        server = ModelServer(BatchPolicy(max_batch=16, max_delay_s=60.0),
                             workers=2)
        server.register("bad", _session(seed=1))     # drains first
        server.register("good", _session(seed=0))
        server.entry("bad").batcher.submit(np.zeros((2, 12)),  # wrong dim
                                           fire=False)
        good_ticket = server.submit("good", _request(0, 0))
        with pytest.raises(ValueError, match="shape mismatch"):
            server.close()
        assert good_ticket.done                       # later queue drained
        with pytest.raises(RuntimeError, match="shut-down"):
            server.pool.submit(lambda: None)          # pool joined


class TestSessionThreadSafety:
    def test_concurrent_runs_on_one_session_conserve_accounting(self):
        """The PR-4 fix: stats()/max_records trimming must not race
        concurrent run() calls (shared deque/counters under the lock)."""
        session = _session(seed=0, max_records=5)
        n_threads, per_thread = 6, 8
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(thread_id):
            try:
                barrier.wait(timeout=10.0)
                for i in range(per_thread):
                    session.run(_request(thread_id, i))
                    session.stats()          # interleaved reader
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        stats = session.stats()
        assert stats["n_requests"] == n_threads * per_thread
        assert stats["n_retained"] == 5
        # Trace and retained records stayed aligned through every trim.
        assert len(session.trace.records) == sum(
            len(r.layers) for r in session.requests)
        assert stats["n_layer_calls"] == 2 * n_threads * per_thread

    def test_concurrent_coalesced_runs_are_bit_exact(self):
        session = _session(seed=1)
        solo = _session(seed=1)
        streams = [[_request(t, i) for i in range(4)] for t in range(4)]
        expected = [[solo.run(x) for x in stream] for stream in streams]
        outputs = [None] * 4
        errors = []

        def worker(t):
            try:
                outputs[t] = session.run_coalesced(streams[t])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        for got, expect in zip(outputs, expected):
            for a, b in zip(got, expect):
                assert np.array_equal(a, b)
