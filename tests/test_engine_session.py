"""Tests for PanaceaSession: plan caching, streaming runs, request traces."""

import importlib

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig, PtqPipeline
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        h = np.maximum(self.fc1(x), 0.0)
        return self.fc2(h)


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


class TestSessionLifecycle:
    def test_matches_manual_pipeline(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        session.calibrate(_batches())
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        manual = pipe.convert()
        batch = _batches(1, seed=9)[0]
        assert np.array_equal(session.run(batch), manual(batch))

    def test_constructor_calibration(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        assert session.prepared
        assert set(session.plans) == {"fc1", "fc2"}

    def test_uncalibrated_run_raises_without_opt_in(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        with pytest.raises(RuntimeError, match="auto_calibrate"):
            session.run(_batches(1)[0])
        assert not session.prepared

    def test_auto_calibrate_opt_in_calibrates_on_first_batch(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 auto_calibrate=True)
        out = session.run(_batches(1)[0])
        assert out.shape == (4, 8)
        assert session.prepared

    def test_fp32_scheme_passthrough(self):
        net = TinyNet()
        session = PanaceaSession(net, PtqConfig(scheme="fp32"),
                                 calibration=_batches())
        batch = _batches(1, seed=3)[0]
        assert np.array_equal(session.run(batch), net(batch))
        assert session.plans == {}


class TestPlanCaching:
    def test_second_run_does_no_weight_slicing(self):
        """After conversion the weight path never re-slices (paper: offline)."""
        aqs_module = importlib.import_module("repro.core.aqs_gemm")
        calls = {"n": 0}
        real = aqs_module.slice_sbr

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        aqs_module.slice_sbr = counting
        try:
            session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                     calibration=_batches())
            prepared_calls = calls["n"]
            assert prepared_calls == 2          # one per GEMM layer
            session.run(_batches(1)[0])
            session.run(_batches(1, seed=4)[0])
            assert calls["n"] == prepared_calls
        finally:
            aqs_module.slice_sbr = real

    def test_plans_are_stable_across_runs(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        before = session.plans
        session.run(_batches(1)[0])
        session.run(_batches(1, seed=5)[0])
        after = session.plans
        assert all(before[name] is after[name] for name in before)

    def test_plans_match_pipeline_plans(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        assert session.plans == session.pipeline.plans()

    def test_repeated_execution_is_deterministic(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        batch = _batches(1, seed=6)[0]
        assert np.array_equal(session.run(batch), session.run(batch))


class TestRequestRecords:
    def test_one_record_per_run(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        for batch in _batches(3, seed=7):
            session.run(batch)
        assert [r.request_id for r in session.requests] == [0, 1, 2]
        assert all(len(r.layers) == 2 for r in session.requests)
        assert all(r.batch_shape == (4, 16) for r in session.requests)

    def test_request_ops_sum_to_total(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        for batch in _batches(2, seed=8):
            session.run(batch)
        assert session.total_ops().mul4 == sum(
            r.total_ops().mul4 for r in session.requests)
        assert session.total_ops().mul4 > 0

    def test_run_many_streams(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        outputs = list(session.run_many(_batches(4, seed=9)))
        assert len(outputs) == 4
        assert len(session.requests) == 4

    def test_stats_summary(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        session.run(_batches(1)[0])
        stats = session.stats()
        assert stats["scheme"] == "aqs"
        assert stats["n_requests"] == 1
        assert stats["n_layer_calls"] == 2
        assert stats["n_plans"] == 2
        assert stats["mul4"] > 0
        assert 0.0 <= stats["mean_rho_x"] <= 1.0

    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7),
                                               ("int8_dense", 8)])
    def test_all_schemes_serve(self, scheme, x_bits):
        session = PanaceaSession(TinyNet(),
                                 PtqConfig(scheme=scheme, x_bits=x_bits),
                                 calibration=_batches())
        out = session.run(np.zeros((2, 16)))
        assert out.shape == (2, 8)
        assert np.all(np.isfinite(out))


class TestRecordRetention:
    def test_default_is_unbounded(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        for batch in _batches(5, seed=11):
            session.run(batch)
        assert len(session.requests) == 5
        assert len(session.trace.records) == 10

    def test_retention_caps_requests_and_trace(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=2)
        for batch in _batches(6, seed=12):
            session.run(batch)
        assert len(session.requests) == 2
        # Only the retained requests' layer records remain in the trace.
        assert len(session.trace.records) == 4
        # The newest records are kept, with lifetime request ids.
        assert [r.request_id for r in session.requests] == [4, 5]

    def test_stats_track_lifetime_totals(self):
        bounded = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=1)
        unbounded = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                   calibration=_batches())
        for batch in _batches(4, seed=13):
            bounded.run(batch)
            unbounded.run(batch)
        sb, su = bounded.stats(), unbounded.stats()
        assert sb["n_requests"] == su["n_requests"] == 4
        assert sb["n_layer_calls"] == su["n_layer_calls"] == 8
        assert sb["mul4"] == su["mul4"] > 0
        assert sb["mean_rho_x"] == pytest.approx(su["mean_rho_x"])
        assert sb["n_retained"] == 1
        assert su["n_retained"] == 4

    def test_total_ops_is_lifetime(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=1)
        batch = _batches(1, seed=14)[0]
        session.run(batch)
        once = session.total_ops().mul4
        session.run(batch)
        assert session.total_ops().mul4 == 2 * once

    def test_zero_retention_keeps_nothing(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=0)
        session.run(_batches(1, seed=15)[0])
        assert session.requests == []
        assert session.trace.records == []
        assert session.stats()["n_requests"] == 1

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"), max_records=-1)

    def test_failed_request_leaves_no_orphan_trace_records(self):
        """A mid-forward failure must not desynchronize trace and requests."""
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=2)
        session.run(_batches(1, seed=16)[0])

        # Fail *between* the two layers: fc1 has already appended its layer
        # record when fc2 raises — run() must roll those orphans back.
        fc2 = session.model.fc2
        real_forward = fc2.forward

        def boom(x):
            raise RuntimeError("mid-request failure")

        fc2.forward = boom
        with pytest.raises(RuntimeError):
            session.run(_batches(1, seed=18)[0])
        fc2.forward = real_forward

        for batch in _batches(3, seed=17):
            session.run(batch)
        assert len(session.requests) == 2
        assert len(session.trace.records) == sum(
            len(r.layers) for r in session.requests)
        assert session.stats()["n_requests"] == 4  # the failed run isn't one

    def test_out_of_band_model_call_does_not_break_retention(self):
        """Direct session.model(...) calls append to the shared trace; the
        retention trim must still remove exactly the dropped requests'
        records (by identity, not position)."""
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches(), max_records=1)
        session.run(_batches(1, seed=19)[0])
        session.model(_batches(1, seed=20)[0])  # eval outside run()
        orphan_ids = {id(r) for r in session.trace.records[2:]}
        session.run(_batches(1, seed=21)[0])  # triggers a trim of request 0
        retained_layer_ids = {id(r) for req in session.requests
                              for r in req.layers}
        trace_ids = {id(r) for r in session.trace.records}
        assert orphan_ids <= trace_ids          # out-of-band records survive
        assert retained_layer_ids <= trace_ids  # retained requests intact
        assert len(session.trace.records) == 4  # 2 orphans + 2 retained


class TestCoalescedEdgeCases:
    """Ragged pad_axis coalescing edge cases: the error paths and the
    degenerate group shapes the scheduler can hand serve_coalesced."""

    def _session(self):
        return PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                              calibration=_batches())

    def _seq_session(self):
        """A 3-D-input session so trailing axes exist to pad/mismatch."""
        class SeqNet(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(16, 8, rng=np.random.default_rng(0))

            def forward(self, x):
                return self.fc(x)

        rng = np.random.default_rng(1)
        calibration = [rng.normal(0, 1, (2, 5, 16)) for _ in range(2)]
        return PanaceaSession(SeqNet(), PtqConfig(scheme="aqs"),
                              calibration=calibration)

    def test_empty_group_returns_empty(self):
        session = self._session()
        outputs, records = session.serve_coalesced([])
        assert outputs == [] and records == []
        assert session.stats()["n_requests"] == 0
        assert session.run_coalesced([]) == []

    def test_single_request_takes_fast_path(self):
        """A group of one degenerates to _run_one: no concat, no split,
        coalesced stays 1 and the output equals a solo run."""
        session = self._session()
        x = _batches(1, seed=9)[0]
        outputs, records = session.serve_coalesced([x])
        assert len(outputs) == 1 and len(records) == 1
        assert records[0].coalesced == 1
        reference = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                   calibration=_batches())
        assert np.array_equal(outputs[0], reference.run(x))

    def test_mismatched_trailing_dims_raise_value_error(self):
        session = self._seq_session()
        rng = np.random.default_rng(2)
        group = [rng.normal(0, 1, (2, 5, 16)),
                 rng.normal(0, 1, (2, 7, 16))]
        with pytest.raises(ValueError,
                           match="share trailing dims.*pad_axis"):
            session.serve_coalesced(group)

    def test_mismatched_non_pad_axis_raises_despite_padding(self):
        """pad_axis only fixes the named axis: a mismatch on another
        trailing axis must still raise, not silently misfuse."""
        session = self._seq_session()
        rng = np.random.default_rng(3)
        group = [rng.normal(0, 1, (2, 5, 16)),
                 rng.normal(0, 1, (2, 7, 12))]   # last axis differs too
        with pytest.raises(ValueError, match="share trailing dims"):
            session.serve_coalesced(group, pad_axis=1)

    def test_mismatched_rank_raises(self):
        session = self._seq_session()
        rng = np.random.default_rng(4)
        group = [rng.normal(0, 1, (2, 5, 16)),
                 rng.normal(0, 1, (2, 16))]
        with pytest.raises(ValueError, match="share a rank"):
            session.serve_coalesced(group)

    @pytest.mark.parametrize("pad_axis", [0, 3, -1])
    def test_pad_axis_out_of_range_raises(self, pad_axis):
        session = self._seq_session()
        rng = np.random.default_rng(5)
        group = [rng.normal(0, 1, (2, 5, 16)),
                 rng.normal(0, 1, (2, 7, 16))]
        with pytest.raises(ValueError, match="pad_axis must be"):
            session.serve_coalesced(group, pad_axis=pad_axis)

    def test_failed_group_leaves_ledger_clean(self):
        """A group that raises must not leak requests, records or trace
        entries — the next healthy group serves normally."""
        session = self._seq_session()
        rng = np.random.default_rng(6)
        bad = [rng.normal(0, 1, (2, 5, 16)), rng.normal(0, 1, (2, 5, 12))]
        with pytest.raises(ValueError):
            session.serve_coalesced(bad)
        assert session.stats()["n_requests"] == 0
        assert len(session.trace.records) == 0
        good = [rng.normal(0, 1, (2, 5, 16)) for _ in range(2)]
        outputs, records = session.serve_coalesced(good)
        assert len(outputs) == 2
        assert session.stats()["n_requests"] == 2
