"""Tests for PanaceaSession: plan caching, streaming runs, request traces."""

import importlib

import numpy as np
import pytest

from repro.core.pipeline import PtqConfig, PtqPipeline
from repro.engine import PanaceaSession
from repro.nn.layers import Linear
from repro.nn.module import Module


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(16, 32, rng=rng)
        self.fc2 = Linear(32, 8, rng=rng)

    def forward(self, x):
        h = np.maximum(self.fc1(x), 0.0)
        return self.fc2(h)


def _batches(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (4, 16)) for _ in range(n)]


class TestSessionLifecycle:
    def test_matches_manual_pipeline(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        session.calibrate(_batches())
        pipe = PtqPipeline(TinyNet(), PtqConfig(scheme="aqs"))
        pipe.calibrate(_batches())
        manual = pipe.convert()
        batch = _batches(1, seed=9)[0]
        assert np.array_equal(session.run(batch), manual(batch))

    def test_constructor_calibration(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        assert session.prepared
        assert set(session.plans) == {"fc1", "fc2"}

    def test_uncalibrated_run_calibrates_on_first_batch(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"))
        out = session.run(_batches(1)[0])
        assert out.shape == (4, 8)
        assert session.prepared

    def test_fp32_scheme_passthrough(self):
        net = TinyNet()
        session = PanaceaSession(net, PtqConfig(scheme="fp32"),
                                 calibration=_batches())
        batch = _batches(1, seed=3)[0]
        assert np.array_equal(session.run(batch), net(batch))
        assert session.plans == {}


class TestPlanCaching:
    def test_second_run_does_no_weight_slicing(self):
        """After conversion the weight path never re-slices (paper: offline)."""
        aqs_module = importlib.import_module("repro.core.aqs_gemm")
        calls = {"n": 0}
        real = aqs_module.slice_sbr

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        aqs_module.slice_sbr = counting
        try:
            session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                     calibration=_batches())
            prepared_calls = calls["n"]
            assert prepared_calls == 2          # one per GEMM layer
            session.run(_batches(1)[0])
            session.run(_batches(1, seed=4)[0])
            assert calls["n"] == prepared_calls
        finally:
            aqs_module.slice_sbr = real

    def test_plans_are_stable_across_runs(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        before = session.plans
        session.run(_batches(1)[0])
        session.run(_batches(1, seed=5)[0])
        after = session.plans
        assert all(before[name] is after[name] for name in before)

    def test_plans_match_pipeline_plans(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        assert session.plans == session.pipeline.plans()

    def test_repeated_execution_is_deterministic(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        batch = _batches(1, seed=6)[0]
        assert np.array_equal(session.run(batch), session.run(batch))


class TestRequestRecords:
    def test_one_record_per_run(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        for batch in _batches(3, seed=7):
            session.run(batch)
        assert [r.request_id for r in session.requests] == [0, 1, 2]
        assert all(len(r.layers) == 2 for r in session.requests)
        assert all(r.batch_shape == (4, 16) for r in session.requests)

    def test_request_ops_sum_to_total(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        for batch in _batches(2, seed=8):
            session.run(batch)
        assert session.total_ops().mul4 == sum(
            r.total_ops().mul4 for r in session.requests)
        assert session.total_ops().mul4 > 0

    def test_run_many_streams(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        outputs = list(session.run_many(_batches(4, seed=9)))
        assert len(outputs) == 4
        assert len(session.requests) == 4

    def test_stats_summary(self):
        session = PanaceaSession(TinyNet(), PtqConfig(scheme="aqs"),
                                 calibration=_batches())
        session.run(_batches(1)[0])
        stats = session.stats()
        assert stats["scheme"] == "aqs"
        assert stats["n_requests"] == 1
        assert stats["n_layer_calls"] == 2
        assert stats["n_plans"] == 2
        assert stats["mul4"] > 0
        assert 0.0 <= stats["mean_rho_x"] <= 1.0

    @pytest.mark.parametrize("scheme,x_bits", [("aqs", 8), ("sibia", 7),
                                               ("int8_dense", 8)])
    def test_all_schemes_serve(self, scheme, x_bits):
        session = PanaceaSession(TinyNet(),
                                 PtqConfig(scheme=scheme, x_bits=x_bits),
                                 calibration=_batches())
        out = session.run(np.zeros((2, 16)))
        assert out.shape == (2, 8)
        assert np.all(np.isfinite(out))
