"""Tests for run-length encoding of compressed vector streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice.rle import (
    RleStream,
    RleToken,
    rle_decode,
    rle_encode,
    rle_index_bits,
    rle_index_bits_batch,
)


class TestEncode:
    def test_all_uncompressed(self):
        mask = np.ones(8, dtype=bool)
        stream = rle_encode(mask)
        assert stream.n_payloads == 8
        assert all(t.run == 0 for t in stream.tokens)

    def test_all_compressed_short(self):
        mask = np.zeros(5, dtype=bool)
        stream = rle_encode(mask)
        assert stream.n_payloads == 0
        assert sum(t.run for t in stream.tokens) == 5

    def test_long_run_uses_continuations(self):
        """Runs beyond 15 need continuation tokens (4-bit indices)."""
        mask = np.zeros(40, dtype=bool)
        stream = rle_encode(mask)
        # 40 = 15 + 15 + 10 -> three tokens
        assert len(stream.tokens) == 3
        assert [t.run for t in stream.tokens] == [15, 15, 10]

    def test_mixed_pattern(self):
        mask = np.array([False, False, True, False, True])
        stream = rle_encode(mask)
        assert [(t.run, t.has_payload) for t in stream.tokens] == [
            (2, True), (1, True)]

    def test_compress_15_successive(self):
        """Paper: 'compress up to 15 successive vectors into an index'."""
        mask = np.concatenate([np.zeros(15, dtype=bool), [True]])
        stream = rle_encode(mask)
        assert len(stream.tokens) == 2
        assert stream.tokens[0].run == 15 and not stream.tokens[0].has_payload
        assert stream.tokens[1].run == 0 and stream.tokens[1].has_payload

    def test_index_storage_bits(self):
        mask = np.array([True, False, True])
        stream = rle_encode(mask, index_bits=4)
        assert stream.index_storage_bits == len(stream.tokens) * 4


class TestDecode:
    def test_round_trip_simple(self):
        mask = np.array([True, False, False, True, False])
        assert np.array_equal(rle_decode(rle_encode(mask)), mask)

    def test_decode_rejects_overrun(self):
        stream = RleStream(tokens=(RleToken(run=3, has_payload=True),),
                           length=3, index_bits=4)
        with pytest.raises(ValueError):
            rle_decode(stream)

    def test_empty_stream(self):
        mask = np.zeros(0, dtype=bool)
        assert rle_decode(rle_encode(mask)).size == 0


class TestFastIndexBits:
    def test_matches_encoder_simple(self):
        mask = np.array([True, False, True, False, False])
        assert rle_index_bits(mask) == rle_encode(mask).index_storage_bits

    def test_matches_encoder_long_runs(self):
        mask = np.zeros(100, dtype=bool)
        mask[[0, 50, 99]] = True
        assert rle_index_bits(mask) == rle_encode(mask).index_storage_bits

    def test_matches_encoder_all_compressed(self):
        mask = np.zeros(64, dtype=bool)
        assert rle_index_bits(mask) == rle_encode(mask).index_storage_bits


@settings(max_examples=150, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=200),
       st.sampled_from([2, 4, 8]))
def test_property_round_trip(bits_list, index_bits):
    mask = np.array(bits_list, dtype=bool)
    stream = rle_encode(mask, index_bits=index_bits)
    assert np.array_equal(rle_decode(stream), mask)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=200),
       st.sampled_from([2, 4, 8]))
def test_property_fast_bits_matches_encoder(bits_list, index_bits):
    mask = np.array(bits_list, dtype=bool)
    assert (rle_index_bits(mask, index_bits)
            == rle_encode(mask, index_bits).index_storage_bits)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_property_payload_count(bits_list):
    mask = np.array(bits_list, dtype=bool)
    assert rle_encode(mask).n_payloads == int(mask.sum())


class TestBatchIndexBits:
    """The vectorized 2-D variant must match the per-stream scalar one."""

    def test_empty_mask(self):
        assert list(rle_index_bits_batch(np.zeros((3, 0), dtype=bool))) == [
            0, 0, 0]

    def test_all_compressed(self):
        masks = np.zeros((4, 64), dtype=bool)
        expected = rle_encode(masks[0]).index_storage_bits
        assert list(rle_index_bits_batch(masks)) == [expected] * 4

    def test_all_uncompressed(self):
        masks = np.ones((2, 9), dtype=bool)
        assert list(rle_index_bits_batch(masks)) == [9 * 4, 9 * 4]

    def test_run_exactly_max_run(self):
        # A gap of exactly 15 costs one continuation token; the following
        # payload token then absorbs a zero-length run.
        mask = np.concatenate([np.zeros(15, dtype=bool), [True]])
        got = rle_index_bits_batch(np.vstack([mask, mask]))
        assert list(got) == [rle_encode(mask).index_storage_bits] * 2

    def test_trailing_partial_run(self):
        mask = np.array([True] + [False] * 7)
        assert rle_index_bits_batch(mask[None])[0] == (
            rle_encode(mask).index_storage_bits)

    def test_trailing_exact_max_run(self):
        mask = np.concatenate([[True], np.zeros(15, dtype=bool)])
        assert rle_index_bits_batch(mask[None])[0] == (
            rle_encode(mask).index_storage_bits)

    def test_1d_input_promoted(self):
        mask = np.array([True, False, True])
        assert rle_index_bits_batch(mask)[0] == rle_index_bits(mask)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            rle_index_bits_batch(np.zeros((2, 2, 2), dtype=bool))

    def test_rejects_zero_index_bits(self):
        mask = np.ones(4, dtype=bool)
        with pytest.raises(ValueError):
            rle_index_bits_batch(mask[None], index_bits=0)
        with pytest.raises(ValueError):
            rle_index_bits(mask, index_bits=0)
        with pytest.raises(ValueError):
            rle_encode(mask, index_bits=0)

    def test_mixed_rows_and_index_widths(self):
        rng = np.random.default_rng(7)
        for index_bits in (2, 3, 4, 8):
            masks = rng.random((6, 37)) < 0.3
            got = rle_index_bits_batch(masks, index_bits)
            assert list(got) == [
                rle_encode(row, index_bits).index_storage_bits
                for row in masks]


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 5), st.integers(0, 80),
       st.floats(0.0, 1.0), st.sampled_from([2, 4, 8]),
       st.integers(0, 2 ** 31 - 1))
def test_property_batch_matches_per_row(n_rows, length, density, index_bits,
                                        seed):
    masks = np.random.default_rng(seed).random((n_rows, length)) < density
    got = rle_index_bits_batch(masks, index_bits)
    assert got.shape == (n_rows,)
    for row, bits in zip(masks, got):
        assert bits == rle_index_bits(row, index_bits)
        assert bits == rle_encode(row, index_bits).index_storage_bits
