"""Tests for sensitivity-driven mixed-precision assignment."""

import numpy as np

from repro.quant.mixed_precision import (
    LayerSensitivity,
    assign_precision,
    measure_sensitivity,
)


class TestSensitivity:
    def test_wide_distribution_more_sensitive(self):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.1, (16, 64))
        narrow = rng.normal(0, 1, (64, 128))
        wide = rng.standard_t(3, (64, 128)) * 5
        wide[5] *= 100.0  # outlier channel
        s_narrow = measure_sensitivity("narrow", w, narrow)
        s_wide = measure_sensitivity("wide", w, wide)
        assert s_wide.error > s_narrow.error

    def test_ordering(self):
        a = LayerSensitivity("a", 0.1)
        b = LayerSensitivity("b", 0.2)
        assert a < b


class TestAssign:
    def _sens(self):
        return [LayerSensitivity(f"l{i}", err)
                for i, err in enumerate([0.01, 0.5, 0.02, 0.9])]

    def test_budget_promotes_top_fraction(self):
        out = assign_precision(self._sens(), budget_fraction=0.5)
        assert out["l3"] == 12 and out["l1"] == 12
        assert out["l0"] == 8 and out["l2"] == 8

    def test_threshold_mode(self):
        out = assign_precision(self._sens(), threshold=0.4)
        assert out["l1"] == 12 and out["l3"] == 12
        assert out["l0"] == 8

    def test_at_least_one_promoted(self):
        out = assign_precision(self._sens(), budget_fraction=0.01)
        assert sum(1 for b in out.values() if b == 12) == 1

    def test_empty(self):
        assert assign_precision([]) == {}

    def test_down_proj_style_layers_promoted(self):
        """Llama down-projections (SwiGLU inputs, heavy-tailed) must be the
        layers the sensitivity metric promotes — the paper's observation."""
        rng = np.random.default_rng(1)
        sens = []
        for i in range(8):
            w = rng.normal(0, 0.1, (16, 64))
            if i % 4 == 3:  # "down_proj": heavy-tailed activations
                x = rng.standard_t(3, (64, 64)) * 4
                name = f"block{i // 4}.down_proj"
            else:
                x = rng.normal(0, 1, (64, 64))
                name = f"block{i // 4}.other{i % 4}"
            sens.append(measure_sensitivity(name, w, x))
        out = assign_precision(sens, budget_fraction=0.25)
        promoted = {n for n, b in out.items() if b == 12}
        assert all("down_proj" in n for n in promoted)
