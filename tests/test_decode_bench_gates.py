"""Collects the decode benchmark's gate functions into the tier-1 run.

``benchmarks/bench_decode.py`` defines pytest-style gates (per-engine
step-vs-one-shot bit-exactness, continuous-vs-drain output identity, the
prefix-cache seeding invariant, and the opt-in >= 3x KV-decode speedup
criterion), but the file name does not match pytest's ``test_*.py``
pattern, so on its own it is never collected — a regression that makes the
KV cache drift from the full forward would ship green.  This wrapper
imports the bench module and re-exports its gates so plain ``pytest``
(local and CI) runs them.
"""

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_decode  # noqa: E402  (needs the path shim above)

test_decode_step_bit_exact = bench_decode.test_decode_step_bit_exact
test_decode_continuous_matches_drain = \
    bench_decode.test_decode_continuous_matches_drain
test_prefix_cache_seeding_is_exact = \
    bench_decode.test_prefix_cache_seeding_is_exact
test_kv_decode_speedup = bench_decode.test_kv_decode_speedup
test_continuous_beats_static_on_heavy_tail = \
    bench_decode.test_continuous_beats_static_on_heavy_tail
