"""Prometheus text-exposition line-format checker (stdlib only).

``lint(text)`` returns a list of problem strings (empty = valid): every
sample line must parse, every sample needs a preceding ``# TYPE``, label
syntax must be well-formed, no (name, labels) sample may repeat, and
histogram families must be structurally sound (cumulative buckets ending
in ``+Inf``, ``_count`` matching the ``+Inf`` bucket, ``_sum`` present).

Used two ways: imported by the observability tests, and run as a script
by the CI smoke step against a live gateway scrape::

    python tests/prom_lint.py metrics.prom
"""

from __future__ import annotations

import re
import sys

__all__ = ["lint", "main"]

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^({_NAME})(\{{.*\}})? (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"
    rf"|\.[0-9]+)|NaN|[+-]Inf)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(raw: str) -> dict | None:
    """``{a="b",c="d"}`` -> dict, or None when the syntax is malformed."""
    inner = raw[1:-1]
    if not inner:
        return {}
    labels: dict[str, str] = {}
    pos = 0
    while True:
        match = _LABEL.match(inner, pos)
        if match is None:
            return None
        labels[match.group(1)] = match.group(2)
        pos = match.end()
        if pos == len(inner):
            return labels
        if inner[pos] != ",":
            return None
        pos += 1


def _base_family(name: str, types: dict) -> str:
    """Resolve histogram series names back to their declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return name


def lint(text: str) -> list[str]:
    """Validate one exposition document; returns problem strings."""
    problems: list[str] = []
    if not text:
        return ["empty exposition document"]
    if not text.endswith("\n"):
        problems.append("document must end with a newline")
    types: dict[str, str] = {}
    seen: set[tuple[str, str]] = set()
    # histogram structure accumulators, keyed by (family, non-le labels)
    buckets: dict[tuple, list[tuple[str, float]]] = {}
    counts: dict[tuple, float] = {}
    sums: set[tuple] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _TYPES:
                problems.append(f"line {lineno}: bad TYPE line {line!r}")
            elif parts[2] in types:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {parts[2]!r}")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            # Arbitrary comments are legal exposition; skip them.
            continue
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, raw_labels, raw_value = match.groups()
        raw_labels = raw_labels or ""
        labels = _parse_labels(raw_labels) if raw_labels else {}
        if labels is None:
            problems.append(f"line {lineno}: bad labels {raw_labels!r}")
            continue
        family = _base_family(name, types)
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no # TYPE")
        if (name, raw_labels) in seen:
            problems.append(
                f"line {lineno}: duplicate sample {name}{raw_labels}")
        seen.add((name, raw_labels))
        if types.get(family) == "histogram":
            value = float(raw_value)
            key_labels = tuple(sorted((k, v) for k, v in labels.items()
                                      if k != "le"))
            key = (family, key_labels)
            if name == f"{family}_bucket":
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: bucket sample without le label")
                else:
                    buckets.setdefault(key, []).append((labels["le"], value))
            elif name == f"{family}_count":
                counts[key] = value
            elif name == f"{family}_sum":
                sums.add(key)
    for key, series in buckets.items():
        family = key[0]
        if series[-1][0] != "+Inf":
            problems.append(f"{family}: bucket series must end at le=+Inf")
        values = [v for _, v in series]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"{family}: bucket counts must be cumulative")
        if key in counts and counts[key] != values[-1]:
            problems.append(
                f"{family}: _count {counts[key]} != +Inf bucket "
                f"{values[-1]}")
        if key not in counts:
            problems.append(f"{family}: histogram series without _count")
        if key not in sums:
            problems.append(f"{family}: histogram series without _sum")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        with open(argv[0], encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    problems = lint(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        n = sum(1 for line in text.splitlines()
                if line and not line.startswith("#"))
        print(f"ok: {n} samples")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
