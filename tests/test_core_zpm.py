"""Tests for zero-point manipulation (paper Eq. 7, Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zpm import (
    apply_zpm,
    in_skip_fraction,
    manipulate_zero_point,
    skip_range,
)
from repro.quant.uniform import QuantParams, asymmetric_params, quantize


class TestEq7:
    def test_paper_example(self):
        """zp = 161 -> zp' = 16*10 + 8 = 168 (paper Fig. 8)."""
        assert manipulate_zero_point(161, 4) == 168

    def test_already_centred(self):
        assert manipulate_zero_point(168, 4) == 168

    def test_zero_stays_zero(self):
        assert manipulate_zero_point(0, 4) == 0

    def test_negative_clamps_to_zero(self):
        assert manipulate_zero_point(-5, 4) == 0

    def test_l5(self):
        """l = 5: buckets of 32, centre offset 16: 161 -> 32*5 + 16 = 176."""
        assert manipulate_zero_point(161, 5) == 176

    def test_l6(self):
        assert manipulate_zero_point(200, 6) == 64 * 3 + 32

    def test_result_is_bucket_centre(self):
        for zp in range(1, 256):
            zp2 = manipulate_zero_point(zp, 4)
            assert zp2 % 16 == 8


class TestSkipRange:
    def test_paper_range(self):
        """zp' = 168 -> skip range [160, 175] (HO slice 1010b)."""
        assert skip_range(168, 4) == (160, 175)

    def test_width(self):
        lo, hi = skip_range(100, 5)
        assert hi - lo + 1 == 32

    def test_zpm_centres_distribution(self):
        """After ZPM, zp' sits at the centre of its skip range."""
        for zp in (1, 37, 161, 254):
            zp2 = manipulate_zero_point(zp, 4)
            lo, hi = skip_range(zp2, 4)
            assert lo <= zp2 <= hi
            assert zp2 - lo == 8


class TestSparsityGain:
    def test_fig8_shape(self):
        """A zp near a bucket edge gains a lot of skip coverage from ZPM.

        The paper's example: 68% -> 98% for an OPT-2.7B FC layer; we check
        the gain is large for a tight distribution at a bad zp.
        """
        rng = np.random.default_rng(0)
        zp = 161  # one past the bucket edge: skip range barely covers left tail
        codes = np.clip(np.rint(rng.normal(zp, 5.0, 100_000)), 0, 255)
        before = in_skip_fraction(codes, zp, 4)
        zp2 = manipulate_zero_point(zp, 4)
        codes2 = np.clip(codes + (zp2 - zp), 0, 255)
        after = in_skip_fraction(codes2, zp2, 4)
        assert after > before + 0.20
        assert after > 0.85

    def test_never_reduces_for_centred_gaussian(self):
        rng = np.random.default_rng(1)
        for zp in (24, 100, 161, 200):
            codes = np.clip(np.rint(rng.normal(zp, 4.0, 20_000)), 0, 255)
            before = in_skip_fraction(codes, zp, 4)
            zp2 = manipulate_zero_point(zp, 4)
            after = in_skip_fraction(np.clip(codes + (zp2 - zp), 0, 255),
                                     zp2, 4)
            assert after >= before - 0.02


class TestApplyZpm:
    def test_symmetric_params_untouched(self):
        p = QuantParams(scale=1.0, zero_point=0, bits=8, signed=True)
        assert apply_zpm(p) is p

    def test_asymmetric_zero_point_moved(self):
        x = np.linspace(-2.0, 6.0, 1000)
        p = asymmetric_params(x, 8)
        p2 = apply_zpm(p, 4)
        assert int(p2.zero_point) % 16 == 8
        assert float(p2.scale) == float(p.scale)

    def test_quantization_still_valid(self):
        x = np.random.default_rng(2).normal(0, 1, 1000)
        p2 = apply_zpm(asymmetric_params(x, 8), 4)
        q = quantize(x, p2)
        assert q.min() >= 0 and q.max() <= 255


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 255), st.sampled_from([4, 5, 6]))
def test_property_zpm_idempotent(zp, l):
    once = manipulate_zero_point(zp, l)
    assert manipulate_zero_point(once, l) == once


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 255), st.sampled_from([4, 5, 6]))
def test_property_zpm_moves_at_most_half_bucket(zp, l):
    """The ZPM shift is bounded by half a bucket, so the distribution shift
    (and hence accuracy impact) is bounded."""
    shift = abs(manipulate_zero_point(zp, l) - zp)
    assert shift <= (1 << (l - 1))
