"""Tests for the NumPy NN substrate: module system and layers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Embedding, LayerNorm, Linear, RMSNorm, im2col
from repro.nn.module import Module


class TestModuleSystem:
    def test_named_modules_traversal(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(4, 4)
                self.b = Linear(4, 2)

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        names = [n for n, _ in net.named_modules()]
        assert set(names) == {"", "a", "b"}

    def test_replace_child(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(4, 4)

            def forward(self, x):
                return self.a(x)

        net = Net()
        new = Linear(4, 4)
        net.replace_child("a", new)
        assert net.a is new
        assert dict(net.named_modules())["a"] is new

    def test_replace_missing_raises(self):
        net = Linear(4, 4)
        with pytest.raises(KeyError):
            net.replace_child("nope", Linear(4, 4))

    def test_forward_hook_fires_and_removes(self):
        lin = Linear(4, 4)
        seen = []
        remove = lin.register_forward_hook(
            lambda m, args, out: seen.append(args[0].shape))
        lin(np.zeros((2, 4)))
        remove()
        lin(np.zeros((2, 4)))
        assert seen == [(2, 4)]

    def test_n_parameters(self):
        lin = Linear(4, 3)
        assert lin.n_parameters() == 4 * 3 + 3


class TestLinear:
    def test_shapes(self):
        lin = Linear(8, 3)
        assert lin(np.zeros((5, 8))).shape == (5, 3)
        assert lin(np.zeros((2, 7, 8))).shape == (2, 7, 3)

    def test_matches_manual(self):
        lin = Linear(4, 2)
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert np.allclose(lin(x), x @ lin.weight.T + lin.bias)

    def test_no_bias(self):
        lin = Linear(4, 2, bias=False)
        assert lin.bias is None

    def test_gemm_shape(self):
        assert Linear(768, 3072).gemm_shape(128) == (3072, 768, 128)


class TestConv2d:
    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(2, 3, 3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv(x)
        assert out.shape == (1, 3, 5, 5)
        # check one output element by direct correlation
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        manual = float(np.sum(xp[0, :, 1:4, 1:4] * conv.weight[0])
                       + conv.bias[0])
        assert out[0, 0, 1, 1] == pytest.approx(manual)

    def test_stride(self):
        conv = Conv2d(1, 1, 3, stride=2, padding=1)
        assert conv(np.zeros((1, 1, 8, 8))).shape == (1, 1, 4, 4)

    def test_gemm_shape_matches_im2col(self):
        conv = Conv2d(16, 32, 3, stride=2, padding=1)
        m, k, n = conv.gemm_shape(16, 16, batch=2)
        x = np.zeros((2, 16, 16, 16))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        assert (m, k) == (32, 16 * 9)
        assert cols.shape == (k, n)

    def test_im2col_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2, 2, 0)
        assert (oh, ow) == (2, 2)
        assert cols.shape == (4, 4)
        # first patch is [[0,1],[4,5]]
        assert list(cols[:, 0]) == [0, 1, 4, 5]


class TestNorms:
    def test_layernorm_normalizes(self):
        ln = LayerNorm(16)
        x = np.random.default_rng(2).normal(3.0, 2.0, (4, 16))
        out = ln(x)
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1, atol=1e-2)

    def test_rmsnorm_scale(self):
        rn = RMSNorm(8)
        x = np.random.default_rng(3).normal(0, 5.0, (4, 8))
        out = rn(x)
        rms = np.sqrt(np.mean(out ** 2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-2)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 0], emb.weight[1])


class TestFunctional:
    def test_gelu_asymmetric(self):
        """GELU saturates below ~ -0.17 and passes positives — the source
        of the paper's asymmetric activation distributions."""
        x = np.linspace(-6, 6, 1000)
        y = F.gelu(x)
        assert y.min() > -0.2
        assert y.max() == pytest.approx(6.0, abs=0.01)

    def test_relu(self):
        assert F.relu(np.array([-1.0, 2.0])).tolist() == [0.0, 2.0]

    def test_silu_shape(self):
        x = np.array([-100.0, 0.0, 100.0])
        y = F.silu(x)
        assert y[0] == pytest.approx(0.0, abs=1e-6)
        assert y[2] == pytest.approx(100.0)

    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(4).normal(size=(3, 7))
        assert np.allclose(F.softmax(x).sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(out, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[[100.0, 0.0], [0.0, 100.0]]])
        targets = np.array([[0, 1]])
        assert F.cross_entropy(logits, targets) == pytest.approx(0.0, abs=1e-6)

    def test_log_softmax_matches_softmax(self):
        x = np.random.default_rng(5).normal(size=(4, 9))
        assert np.allclose(np.exp(F.log_softmax(x)), F.softmax(x))
