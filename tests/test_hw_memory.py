"""Tests for the SRAM/DRAM traffic planner."""

import pytest

from repro.hw.memory import MemoryConfig, plan_layer_traffic


class TestMemoryConfig:
    def test_partitions_sum(self):
        mem = MemoryConfig(total_sram_kb=192, wmem_fraction=0.5,
                           amem_fraction=0.33)
        total = mem.wmem_bytes + mem.amem_bytes + mem.omem_bytes
        assert total == pytest.approx(192 * 1024)

    def test_dram_cycles(self):
        mem = MemoryConfig(dram_bits_per_cycle=256)
        assert mem.dram_cycles(32) == 1.0  # 32 bytes = 256 bits


class TestTrafficPlan:
    def _mem(self):
        return MemoryConfig(total_sram_kb=192)

    def test_both_fit_single_load(self):
        plan = plan_layer_traffic(10_000, 10_000, 1_000, m=64, tm=64,
                                  mem=self._mem())
        assert plan.weight_loads == 1.0
        assert plan.act_loads == 1.0

    def test_large_activation_reloaded_or_weights_restreamed(self):
        mem = self._mem()
        plan = plan_layer_traffic(400_000, 8_000_000, 1_000, m=4096, tm=64,
                                  mem=mem)
        assert plan.dram_bytes > 400_000 + 8_000_000

    def test_resident_weights_stream_activations_once(self):
        """Weights fit WMEM entirely: one pass over the activations."""
        plan = plan_layer_traffic(50_000, 50_000_000, 1_000, m=12800, tm=64,
                                  mem=self._mem())
        assert plan.weight_loads == 1.0
        assert plan.act_loads == 1.0

    def test_picks_cheaper_orientation(self):
        """Neither fits: smallish weights + huge activations: stream weights
        repeatedly rather than reload the activations per stripe."""
        mem = self._mem()
        plan = plan_layer_traffic(500_000, 50_000_000, 1_000, m=12800, tm=64,
                                  mem=mem)
        act_chunks = 50_000_000 / mem.amem_bytes
        cost_w_stream = 500_000 * act_chunks + 50_000_000
        stripes = 12800 / 64
        cost_a_stream = 500_000 + 50_000_000 * stripes
        assert plan.dram_bytes - 1_000 == pytest.approx(
            min(cost_w_stream, cost_a_stream), rel=0.01)

    def test_compression_reduces_reload_count(self):
        """Compression pays twice: fewer bytes per load and fewer reloads
        (the Fig. 13 'large activations benefit more' effect)."""
        mem = self._mem()
        dense = plan_layer_traffic(500_000, 2_000_000, 1_000, m=2048, tm=64,
                                   mem=mem)
        compressed = plan_layer_traffic(250_000, 600_000, 1_000, m=2048,
                                        tm=64, mem=mem)
        assert compressed.dram_bytes < dense.dram_bytes / 2

    def test_dtp_needs_double_stripe(self):
        mem = self._mem()
        # stripe = weight_bytes / (m/tm); small enough for 2 stripes
        plan = plan_layer_traffic(80_000, 1_000, 1_000, m=128, tm=64,
                                  mem=mem, dtp_capable=True)
        assert plan.dtp_enabled
        plan2 = plan_layer_traffic(8_000_000, 1_000, 1_000, m=128, tm=64,
                                   mem=mem, dtp_capable=True)
        assert not plan2.dtp_enabled

    def test_dtp_disabled_when_not_capable(self):
        plan = plan_layer_traffic(1_000, 1_000, 1_000, m=64, tm=64,
                                  mem=self._mem(), dtp_capable=False)
        assert not plan.dtp_enabled

    def test_dram_bytes_includes_outputs(self):
        plan = plan_layer_traffic(1_000, 1_000, 777, m=64, tm=64,
                                  mem=self._mem())
        assert plan.dram_bytes == 1_000 + 1_000 + 777
