"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "gpt2", "--scheme",
                                          "sibia", "--no-dbs"])
        assert args.model == "gpt2"
        assert args.scheme == "sibia"
        assert args.no_dbs and not args.no_zpm

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_figures_mapped(self):
        assert {"table1", "fig13", "fig16", "fig19"} <= set(EXPERIMENTS)


class TestCommands:
    def test_engines(self):
        out = io.StringIO()
        assert main(["engines"], out=out) == 0
        text = out.getvalue()
        for name in ("fp32", "int8_dense", "sibia", "aqs"):
            assert name in text

    def test_list_models(self):
        out = io.StringIO()
        assert main(["list-models"], out=out) == 0
        text = out.getvalue()
        assert "opt_2p7b" in text and "resnet18" in text

    def test_profile_runs(self):
        out = io.StringIO()
        assert main(["profile", "bert_base", "--stride", "12"], out=out) == 0
        assert "mean rho_x" in out.getvalue()

    def test_profile_dense_scheme(self):
        out = io.StringIO()
        assert main(["profile", "resnet18", "--scheme", "dense"],
                    out=out) == 0

    def test_simulate_runs(self):
        out = io.StringIO()
        assert main(["simulate", "bert_base", "--stride", "12"], out=out) == 0
        text = out.getvalue()
        assert "panacea" in text and "TOPS/W" in text

    def test_experiment_table1(self):
        out = io.StringIO()
        assert main(["experiment", "table1"], out=out) == 0
        assert "Table I" in out.getvalue()

    def test_experiment_fig08(self):
        out = io.StringIO()
        assert main(["experiment", "fig08"], out=out) == 0
        assert "ZPM" in out.getvalue()
