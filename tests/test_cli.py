"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "gpt2", "--scheme",
                                          "sibia", "--no-dbs"])
        assert args.model == "gpt2"
        assert args.scheme == "sibia"
        assert args.no_dbs and not args.no_zpm

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_batching_knobs(self):
        args = build_parser().parse_args(
            ["serve", "bert_base", "--max-batch", "8",
             "--max-delay-ms", "5"])
        assert args.max_batch == 8
        assert args.max_delay_ms == 5.0

    def test_serve_concurrency_knobs(self):
        args = build_parser().parse_args(
            ["serve", "bert_base", "--workers", "4", "--cache-kib", "256",
             "--repeats", "2"])
        assert args.workers == 4
        assert args.cache_kib == 256
        assert args.repeats == 2

    def test_serve_concurrency_defaults_off(self):
        args = build_parser().parse_args(["serve", "bert_base"])
        assert args.workers == 0
        assert args.cache_kib == 0
        assert args.repeats == 1

    def test_plan_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_plan_export_args(self):
        args = build_parser().parse_args(
            ["plan", "export", "gpt2", "--out", "x.npz", "--scheme",
             "sibia"])
        assert args.plan_command == "export"
        assert args.model == "gpt2" and args.out == "x.npz"
        assert args.scheme == "sibia"

    def test_plan_load_args(self):
        args = build_parser().parse_args(
            ["plan", "load", "x.npz", "--requests", "3"])
        assert args.plan_command == "load"
        assert args.path == "x.npz" and args.requests == 3
        assert args.mmap is False
        assert build_parser().parse_args(
            ["plan", "load", "x.npz", "--mmap"]).mmap is True

    def test_all_figures_mapped(self):
        assert {"table1", "fig13", "fig16", "fig19"} <= set(EXPERIMENTS)


class TestCommands:
    def test_engines(self):
        out = io.StringIO()
        assert main(["engines"], out=out) == 0
        text = out.getvalue()
        for name in ("fp32", "int8_dense", "sibia", "aqs"):
            assert name in text

    def test_list_models(self):
        out = io.StringIO()
        assert main(["list-models"], out=out) == 0
        text = out.getvalue()
        assert "opt_2p7b" in text and "resnet18" in text

    def test_profile_runs(self):
        out = io.StringIO()
        assert main(["profile", "bert_base", "--stride", "12"], out=out) == 0
        assert "mean rho_x" in out.getvalue()

    def test_profile_dense_scheme(self):
        out = io.StringIO()
        assert main(["profile", "resnet18", "--scheme", "dense"],
                    out=out) == 0

    def test_simulate_runs(self):
        out = io.StringIO()
        assert main(["simulate", "bert_base", "--stride", "12"], out=out) == 0
        text = out.getvalue()
        assert "panacea" in text and "TOPS/W" in text

    def test_experiment_table1(self):
        out = io.StringIO()
        assert main(["experiment", "table1"], out=out) == 0
        assert "Table I" in out.getvalue()

    def test_experiment_fig08(self):
        out = io.StringIO()
        assert main(["experiment", "fig08"], out=out) == 0
        assert "ZPM" in out.getvalue()

    def test_serve_runs_through_server(self):
        out = io.StringIO()
        assert main(["serve", "bert_base", "--requests", "4", "--batch",
                     "1", "--max-batch", "2"], out=out) == 0
        text = out.getvalue()
        assert "engine batches" in text and "mean coalesce 2.0" in text

    def test_serve_unknown_model(self):
        out = io.StringIO()
        assert main(["serve", "not_a_model"], out=out) == 2

    def test_serve_negative_knobs_exit_cleanly(self):
        out = io.StringIO()
        assert main(["serve", "bert_base", "--workers", "-1"], out=out) == 2
        assert "--workers must be >= 0" in out.getvalue()
        out = io.StringIO()
        assert main(["serve", "bert_base", "--cache-kib", "-5"],
                    out=out) == 2
        assert "--cache-kib must be >= 0" in out.getvalue()

    def test_serve_with_workers_and_cache(self):
        out = io.StringIO()
        assert main(["serve", "bert_base", "--requests", "3", "--batch",
                     "1", "--max-batch", "2", "--workers", "2",
                     "--cache-kib", "256", "--repeats", "2"], out=out) == 0
        text = out.getvalue()
        assert "served 6 requests" in text
        assert "worker pool: 2 workers" in text
        assert "hit rate 50%" in text

    def test_plan_export_then_load(self, tmp_path):
        path = str(tmp_path / "bert.plans.npz")
        out = io.StringIO()
        assert main(["plan", "export", "bert_base", "--out", path],
                    out=out) == 0
        assert "exported bert_base/aqs" in out.getvalue()
        out = io.StringIO()
        assert main(["plan", "load", path, "--requests", "2", "--batch",
                     "1"], out=out) == 0
        text = out.getvalue()
        assert "no calibration, no engine prepare" in text
        assert "served 2 requests" in text


class TestShardCli:
    def test_shard_args(self):
        args = build_parser().parse_args(
            ["shard", "bert_base", "--stages", "4", "--depth", "3",
             "--modeled"])
        assert args.model == "bert_base"
        assert args.stages == 4 and args.depth == 3 and args.modeled

    def test_serve_shard_knobs(self):
        args = build_parser().parse_args(
            ["serve", "bert_base", "--shards", "3", "--depth", "4",
             "--stage-workers", "2"])
        assert args.shards == 3 and args.depth == 4
        assert args.stage_workers == 2
        defaults = build_parser().parse_args(["serve", "bert_base"])
        assert defaults.shards == 0 and defaults.stage_workers is None

    def test_profile_measure_flag(self):
        args = build_parser().parse_args(
            ["profile", "bert_base", "--measure", "--repeats", "2"])
        assert args.measure and args.repeats == 2

    def test_shard_runs_pipelined_demo(self):
        out = io.StringIO()
        assert main(["shard", "bert_base", "--stages", "2", "--requests",
                     "3", "--batch", "1", "--modeled"], out=out) == 0
        text = out.getvalue()
        assert "2 stages (modeled costs" in text
        assert "bit-exact vs session.run" in text
        assert "stage 1:" in text

    def test_shard_unknown_model(self):
        out = io.StringIO()
        assert main(["shard", "not_a_model"], out=out) == 2

    def test_shard_too_many_stages_reports_error(self):
        out = io.StringIO()
        assert main(["shard", "bert_base", "--stages", "0"], out=out) == 2
        assert "--stages must be >= 1" in out.getvalue()

    def test_serve_with_shards(self):
        out = io.StringIO()
        assert main(["serve", "bert_base", "--requests", "3", "--batch",
                     "1", "--max-batch", "3", "--shards", "2"],
                    out=out) == 0
        text = out.getvalue()
        assert "pipeline: 2 stages" in text

    def test_serve_negative_shards_exit_cleanly(self):
        out = io.StringIO()
        assert main(["serve", "bert_base", "--shards", "-1"], out=out) == 2
        assert "--shards must be >= 0" in out.getvalue()

    def test_serve_process_backend_with_shards(self):
        """backend=process + --shards deploys process-per-stage now."""
        out = io.StringIO()
        assert main(["serve", "bert_base", "--requests", "3", "--batch",
                     "1", "--max-batch", "3", "--backend", "process",
                     "--workers", "2", "--blas-threads", "1",
                     "--shards", "2"], out=out) == 0
        text = out.getvalue()
        assert "pipeline: 2 stages" in text
        assert "process pool: 2 workers" in text

    def test_plan_load_mmap(self, tmp_path):
        path = str(tmp_path / "bert.plans.npz")
        out = io.StringIO()
        assert main(["plan", "export", "bert_base", "--out", path],
                    out=out) == 0
        out = io.StringIO()
        assert main(["plan", "load", path, "--mmap", "--requests", "2",
                     "--batch", "1"], out=out) == 0
        text = out.getvalue()
        assert "mmap'd from the blob sidecar" in text
        assert "served 2 requests" in text

    def test_profile_measure_prints_latency_and_bounds(self):
        out = io.StringIO()
        assert main(["profile", "bert_base", "--stride", "12", "--measure",
                     "--repeats", "1"], out=out) == 0
        text = out.getvalue()
        assert "measured per-layer latency" in text
        assert "bound classification" in text
        assert "machine balance" in text

    def test_profile_measure_rejects_dense_scheme(self):
        out = io.StringIO()
        assert main(["profile", "resnet18", "--scheme", "dense",
                     "--measure"], out=out) == 2
        assert "aqs or sibia" in out.getvalue()
