"""Two-phase serving: prepare layer plans once, stream request batches.

Panacea computes every weight-side artifact of the AQS-GEMM offline — SBR
slices, all-zero HO vector masks, RLE indices, the Eq. 6 compensation bias.
:class:`PanaceaSession` mirrors that split for a whole model:

1. **offline** — calibrate on a held-out set; conversion runs each layer's
   engine ``prepare`` exactly once and caches a ``LayerPlan``;
2. **online** — ``session.run(batch)`` executes only the activation path,
   recording a per-request trace (ops, sparsities) for the hardware model.

The demo serves a stream of batches through an AQS-quantized transformer
block stack and shows that repeated requests re-use the cached plans.  The
session uses the default ``exec_path="fast"`` (collapsed-BLAS online path;
pass ``PtqConfig(exec_path="sliced")`` for the plane-pair reference) and
bounds trace retention with ``max_records`` so an unbounded request stream
serves in constant memory.

Run:  PYTHONPATH=src python examples/serving_session.py
"""

import time

import numpy as np

from repro.core import PtqConfig
from repro.engine import PanaceaSession
from repro.nn.transformer import CausalLM

rng = np.random.default_rng(0)

# --- a small causal LM and a calibration set ------------------------------
model = CausalLM(vocab=256, dim=64, n_layers=2, n_heads=4, mlp_hidden=128)
calibration = [rng.integers(0, 256, (2, 32)) for _ in range(4)]

# --- offline phase: calibrate + build every layer plan --------------------
session = PanaceaSession(model, PtqConfig(scheme="aqs"), max_records=4)
t0 = time.perf_counter()
session.calibrate(calibration)
prepare_s = time.perf_counter() - t0
print(f"offline: calibrated and prepared {len(session.plans)} layer plans "
      f"in {prepare_s * 1e3:.0f} ms")
for name, plan in list(session.plans.items())[:3]:
    print(f"  {name}: engine={plan.engine}, W {plan.m}x{plan.k}")

# --- online phase: stream request batches ---------------------------------
requests = (rng.integers(0, 256, (2, 32)) for _ in range(8))
t0 = time.perf_counter()
outputs = list(session.run_many(requests))
serve_s = time.perf_counter() - t0
print(f"\nonline: served {len(outputs)} requests in {serve_s * 1e3:.0f} ms "
      f"({serve_s / len(outputs) * 1e3:.1f} ms/request, weight path cached)")

# --- observability: per-request traces and aggregate stats ----------------
newest = session.requests[-1]
print(f"\nrequest {newest.request_id}: batch {newest.batch_shape}, "
      f"{len(newest.layers)} layer executions, "
      f"{newest.total_ops().mul4 / 1e6:.1f}M 4-bit multiplies")
stats = session.stats()
print(f"session: {stats['n_requests']} requests served "
      f"({stats['n_retained']} retained under max_records), "
      f"{stats['n_layer_calls']} layer calls, "
      f"mean rho_x {stats['mean_rho_x']:.1%}, "
      f"mean rho_w {stats['mean_rho_w']:.1%}")
