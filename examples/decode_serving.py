"""KV-cached autoregressive decode with continuous batching.

Token-by-token generation naively re-runs the whole prefix every step —
O(T^2) work for T generated tokens.  The decode stack kills that:

1. **KV cache** — each transformer block keeps its per-layer K/V in a
   :class:`~repro.nn.attention.LayerKVCache`; ``forward_step`` attends new
   tokens against the cache, so a step costs O(T), not O(T^2).  Through
   the quantized engines the stepped logits are *bit-exact* against the
   one-shot forward (the attention einsums fix the reduction order).
2. **Continuous batching** — :class:`~repro.serve.batching.DecodeBatcher`
   admits new requests into K/V slots the moment earlier ones finish, so
   a long generation never stalls the queue behind it.
3. **Prefix reuse** — a :class:`~repro.serve.cache.PrefixKVCache` seeds a
   follow-up prompt's K/V from the longest cached proper prefix (the
   multi-turn pattern), skipping the shared prefill entirely.

The demo serves a mixed decode workload through a quantized GPT-2 proxy,
streams one request token by token, then shows the prefix cache paying
off on a follow-up turn.

Run:  PYTHONPATH=src python examples/decode_serving.py
"""

import time


def main():
    import numpy as np

    from repro.models import proxy_prompts
    from repro.serve import DecodePolicy, ModelServer

    # --- deploy the GPT-2 proxy with a decode policy ----------------------
    server = ModelServer()
    t0 = time.perf_counter()
    server.deploy_proxy(
        "gpt2", "gpt2", scheme="aqs",
        decode_policy=DecodePolicy(max_batch=4, max_new_tokens=12,
                                   refill="continuous",
                                   prefix_cache_bytes=16 << 20))
    print(f"deployed gpt2 proxy (calibrated + plans prepared) "
          f"in {(time.perf_counter() - t0) * 1e3:.0f} ms")

    # --- a ragged prompt mix, decoded continuously ------------------------
    prompts = proxy_prompts("gpt2", 8, min_len=4, max_len=20,
                            heavy_tail=True, seed=2)
    t0 = time.perf_counter()
    tickets = [server.submit_decode("gpt2", p) for p in prompts]
    outputs = [t.result() for t in tickets]
    wall = time.perf_counter() - t0
    n_tokens = sum(len(out) for out in outputs)
    stats = server.stats("gpt2")["decode"]
    print(f"decoded {len(prompts)} requests / {n_tokens} tokens "
          f"in {wall * 1e3:.0f} ms ({n_tokens / wall:.0f} tok/s), "
          f"mean batch width {stats['mean_step_width']:.2f}, "
          f"peak active {stats['peak_active']}")

    # --- streaming: tokens arrive as steps complete -----------------------
    print("streamed:", end=" ", flush=True)
    for tok in server.decode_stream("gpt2", prompts[0], max_new_tokens=8):
        print(tok, end=" ", flush=True)
    print()

    # --- multi-turn prefix reuse ------------------------------------------
    stem = prompts[0]
    followup = np.concatenate([stem, outputs[0][:4]])
    ticket = server.submit_decode("gpt2", followup)
    ticket.result()
    pc = server.stats("gpt2")["decode"]["prefix_cache"]
    print(f"follow-up turn: {ticket.seeded_tokens} prompt tokens seeded "
          f"from the prefix cache ({pc['hits']} hits, "
          f"{pc['seeded_tokens']} tokens total)")

    server.close()


if __name__ == "__main__":
    main()
