"""Observability end to end: traces over HTTP, Prometheus, JSONL export.

One request through the gateway becomes one span tree on the driver's
monotonic clock::

    request                      <- root, closed after the response
    |-- queue_wait               <- submit .. batch fire
    |-- batch_release            <- fire .. engine dispatch
    |-- engine_execute           <- the fused forward
    |   |-- stage[k]             <- sharded pipelines only
    `-- respond                  <- serialization / socket write

The demo deploys a model behind the gateway, serves a few requests, then
walks the whole surface a real operator would: fetch one request's span
tree from ``GET /v1/trace/<id>``, scrape ``GET /metrics?format=prometheus``
(validating it with the same line-format checker CI uses), and export the
trace as JSONL.  ``--out-dir`` writes the scrape and the export to files —
the CI smoke step archives them as artifacts.

Run:  PYTHONPATH=src python examples/tracing.py [--out-dir DIR]
"""

import argparse
import http.client
import json
import pathlib


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=None,
                        help="also write metrics.prom / trace.jsonl here")
    args = parser.parse_args(argv)

    import numpy as np

    from repro.core.pipeline import PtqConfig
    from repro.engine import PanaceaSession
    from repro.nn.layers import Linear
    from repro.nn.module import Module
    from repro.serve import Gateway, ModelServer

    class TraceNet(Module):
        def __init__(self, seed=0):
            super().__init__()
            rng = np.random.default_rng(seed)
            self.fc1 = Linear(16, 32, rng=rng)
            self.fc2 = Linear(32, 8, rng=rng)

        def forward(self, x):
            return self.fc2(np.maximum(self.fc1(x), 0.0))

    rng = np.random.default_rng(3)
    session = PanaceaSession(
        TraceNet(), PtqConfig.for_scheme("aqs"),
        calibration=[rng.normal(0, 1, (4, 16)) for _ in range(3)])

    # trace_sample=1.0 is the default: every request is traced.
    server = ModelServer(trace_sample=1.0)
    server.register("tiny", session)

    with Gateway.launch(server) as handle:
        host, port = handle.host, handle.port
        print(f"gateway on {host}:{port}, tracing every request")

        # --- serve a few requests; each response carries its trace id ----
        trace_id = None
        for i in range(3):
            x = rng.normal(0, 1, (2, 16))
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("POST", "/v1/infer/tiny",
                         body=json.dumps({"input": x.tolist()}),
                         headers={"Content-Type": "application/json"})
            body = json.loads(conn.getresponse().read())
            conn.close()
            trace_id = body["trace_id"]
            print(f"request {i}: trace_id={trace_id}")

        # --- fetch the last request's span tree ---------------------------
        status, raw = _get(host, port, f"/v1/trace/{trace_id}")
        tree = json.loads(raw)
        assert status == 200 and tree["status"] == "ok", tree
        print(f"\nspan tree for {trace_id} ({tree['n_spans']} spans):")
        by_parent = {}
        spans = {s["span_id"]: s for s in tree["spans"]}
        for s in tree["spans"]:
            by_parent.setdefault(s["parent_id"], []).append(s)

        def render(span, depth=0):
            print(f"  {'  ' * depth}{span['name']:<16} "
                  f"{span['duration_s'] * 1e3:8.3f} ms  {span['status']}")
            for child in sorted(by_parent.get(span["span_id"], []),
                                key=lambda s: s["start_s"]):
                render(child, depth + 1)

        root, = by_parent[None]
        render(root)

        # --- scrape Prometheus and validate it like CI does ---------------
        status, prom_text = _get(host, port, "/metrics?format=prometheus")
        assert status == 200
        import sys
        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                               / "tests"))
        from prom_lint import lint
        problems = lint(prom_text)
        assert problems == [], problems
        n_samples = sum(1 for line in prom_text.splitlines()
                        if line and not line.startswith("#"))
        invariants = [line for line in prom_text.splitlines()
                      if "_invariant{" in line]
        print(f"\nprometheus scrape: {n_samples} samples, lint clean")
        for line in invariants:
            print(f"  {line}")
        assert all(line.endswith(" 1") for line in invariants), invariants

        # --- JSONL export --------------------------------------------------
        status, jsonl = _get(host, port,
                             f"/v1/trace/{trace_id}?format=jsonl")
        assert status == 200
        print(f"\njsonl export: {len(jsonl.splitlines())} span records")

        if args.out_dir:
            out = pathlib.Path(args.out_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / "metrics.prom").write_text(prom_text)
            (out / "trace.jsonl").write_text(jsonl)
            (out / "trace.json").write_text(raw)
            print(f"wrote {out}/metrics.prom, trace.jsonl, trace.json")

    server.close()
    print("\ndone: every invariant held and every span closed")


if __name__ == "__main__":
    main()
