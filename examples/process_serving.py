"""Process-backed serving: escape the GIL without changing a bit.

The thread backend's workers share one interpreter lock, so pure-Python
engine batches interleave instead of overlapping.  `backend="process"`
moves deployment execution into spawned worker processes:

1. **Plan-store snapshots** — each worker rehydrates its session from a
   pickle-free `.npz` snapshot (the same `PlanStore` format `repro plan
   export` writes); no pickled sessions cross the boundary.
2. **Shared-memory activations** — request/response arrays travel through
   framed `ShmRing` segments; only a frame offset crosses the pipe.
3. **BLAS pinning** — every worker comes up with its BLAS pools capped to
   an even core split (inspect with `ProcessWorkerPool.ping()`).
4. **Crash containment** — a worker dying mid-batch fails only that
   batch (`WorkerCrashError`); the pool respawns and replays deployments.

Everything stays bit-exact vs serial in-process execution: the quantized
engines accumulate in int64, so a process boundary cannot change a bit.

Run:  PYTHONPATH=src python examples/process_serving.py

The `__main__` guard below is load-bearing: worker processes start via
`spawn`, which re-imports this file — unguarded module-level code would
recursively spawn.
"""

import numpy as np


def main():
    from repro.core.pipeline import PtqConfig
    from repro.engine import PanaceaSession
    from repro.models.zoo import build_proxy, proxy_batches
    from repro.serve import BatchPolicy, ModelServer

    stream = proxy_batches("bert_base", 2, 8, seed=3)

    # --- serial reference: the exactness oracle ---------------------------
    model, _ = build_proxy("bert_base", seed=0)
    reference = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    reference.calibrate(proxy_batches("bert_base", 2, 2, seed=1))
    expected = [reference.run(x) for x in stream]

    # --- the same stream through process workers --------------------------
    with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                     workers=2, backend="process") as server:
        server.deploy_proxy("bert/aqs", "bert_base", scheme="aqs", seed=0)
        server.deploy_proxy("bert/sibia", "bert_base", scheme="sibia",
                            seed=0)
        print(f"deployments: {server.models()} "
              f"(executing in pids {server.process_pool.pids})")

        for report in server.process_pool.ping():
            print(f"worker pid {report['pid']}: "
                  f"OMP_NUM_THREADS={report['env']['OMP_NUM_THREADS']}")

        futures = [server.submit_async("bert/aqs", x) for x in stream]
        outputs = [f.result() for f in futures]
        exact = all(np.array_equal(got, expect)
                    for got, expect in zip(outputs, expected))
        print(f"bert/aqs: {len(outputs)} requests served in worker "
              f"processes, bit-exact vs serial run = {exact}")

        sibia = [f.result() for f
                 in server.submit_many_async("bert/sibia", stream)]
        print(f"bert/sibia: {len(sibia)} requests served side by side")

        metrics = server.metrics()
        proc = metrics.process_workers
        print(f"process pool: {proc['workers']} workers x "
              f"{proc['blas_threads']} BLAS threads, {proc['n_tasks']} "
              f"tasks, {proc['n_crashes']} crashes, "
              f"{proc['n_pipe_fallback']} ring fallbacks")
        sched = server.stats("bert/aqs")["scheduler"]
        print(f"scheduler stayed in the parent: {sched['n_requests']} "
              f"requests in {sched['n_batches']} engine batches "
              f"(mean coalesce {sched['mean_batch_size']:.1f})")


if __name__ == "__main__":
    main()
