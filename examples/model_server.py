"""Multi-model serving: PlanStore + ModelServer + dynamic micro-batching.

The serving subsystem stacks on the two-phase engine split:

1. **PlanStore** — persist a converted model's layer plans once, offline;
   any later process rehydrates a ready-to-execute session with zero
   re-prepare work.
2. **ModelServer** — host many (model x scheme x exec_path) deployments
   behind one submit API, each with its own session and policy.
3. **MicroBatcher** — coalesce queued single requests into engine batches
   (bit-exact vs solo runs) under `max_batch`/`max_delay` knobs.
4. **WorkerPool + submit_async** — drain all deployments' micro-batches in
   parallel; futures resolve to outputs bit-exact vs serial execution.
5. **ResultCache** — duplicate requests short-circuit through a
   content-addressed per-deployment LRU (byte-budgeted, hit/miss metered).

Run:  PYTHONPATH=src python examples/model_server.py
"""

import tempfile
import pathlib

import numpy as np

from repro.models.zoo import proxy_batches
from repro.serve import BatchPolicy, ModelServer, PlanStore

rng = np.random.default_rng(0)

# --- host two deployments of the zoo side by side -------------------------
server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.002))
server.deploy_proxy("bert/aqs", "bert_base", scheme="aqs")
server.deploy_proxy("gpt2/aqs", "gpt2", scheme="aqs")   # gets pad_axis=1
print(f"deployments: {server.models()}")

# --- single requests coalesce into engine batches --------------------------
bert_reqs = proxy_batches("bert_base", 1, 8, seed=3)
tickets = server.submit_many("bert/aqs", bert_reqs)
server.flush("bert/aqs")
sched = server.stats("bert/aqs")["scheduler"]
print(f"bert/aqs: {sched['n_requests']} requests in {sched['n_batches']} "
      f"engine batches (mean coalesce {sched['mean_batch_size']:.1f}), "
      f"queue wait p95 {sched['queue_wait']['p95_ms']:.2f} ms")

# --- ragged causal-LM requests ride the padded split path ------------------
lm_tickets = [server.submit("gpt2/aqs", rng.integers(0, 512, (1, length)))
              for length in (18, 40, 9, 27)]
server.flush("gpt2/aqs")
print("gpt2/aqs: ragged lengths", [t.result().shape[1] for t in lm_tickets],
      f"served in {server.stats('gpt2/aqs')['scheduler']['n_batches']} batch")

# --- persist the offline phase, serve from disk ----------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = pathlib.Path(tmp) / "bert.aqs.plans.npz"
    PlanStore(path).save(server.entry("bert/aqs").session,
                         model_name="bert_base")
    restored = PlanStore(path).load()      # no calibration, no prepare
    a = server.entry("bert/aqs").session.run(bert_reqs[0])
    b = restored.run(bert_reqs[0])
    print(f"plan store round-trip: {path.stat().st_size / 1024:.0f} KiB, "
          f"bit-exact={np.array_equal(a, b)}")

# --- concurrent runtime: worker pool + async submit + result cache ---------
with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                 workers=4, cache_bytes=16 << 20) as concurrent:
    concurrent.deploy_proxy("bert/aqs", "bert_base", scheme="aqs")
    concurrent.deploy_proxy("bert/sibia", "bert_base", scheme="sibia")
    concurrent.deploy_proxy("gpt2/aqs", "gpt2", scheme="aqs")

    futures = [concurrent.submit_async(name, x)
               for name in ("bert/aqs", "bert/sibia")
               for x in bert_reqs[:4]]
    outputs = [f.result() for f in futures]          # pool-served futures
    replays = [concurrent.submit_async(name, x)      # duplicates hit cache
               for name in ("bert/aqs", "bert/sibia")
               for x in bert_reqs[:4]]
    exact = all(np.array_equal(f.result(), out)
                for f, out in zip(replays, outputs))

    metrics = concurrent.metrics()
    print(f"concurrent: {metrics.n_deployments} deployments, "
          f"{metrics.n_requests} engine-served + {metrics.n_cache_hits} "
          f"cached requests (hit rate {metrics.cache_hit_rate:.0%}, "
          f"replay bit-exact={exact})")
    print(f"worker pool: {metrics.workers['workers']} workers, "
          f"mean utilization {metrics.workers['mean_utilization']:.0%}")
