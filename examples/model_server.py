"""Multi-model serving: PlanStore + ModelServer + dynamic micro-batching.

The serving subsystem stacks three layers on the two-phase engine split:

1. **PlanStore** — persist a converted model's layer plans once, offline;
   any later process rehydrates a ready-to-execute session with zero
   re-prepare work.
2. **ModelServer** — host many (model x scheme x exec_path) deployments
   behind one submit API, each with its own session and policy.
3. **MicroBatcher** — coalesce queued single requests into engine batches
   (bit-exact vs solo runs) under `max_batch`/`max_delay` knobs.

Run:  PYTHONPATH=src python examples/model_server.py
"""

import tempfile
import pathlib

import numpy as np

from repro.models.zoo import proxy_batches
from repro.serve import BatchPolicy, ModelServer, PlanStore

rng = np.random.default_rng(0)

# --- host two deployments of the zoo side by side -------------------------
server = ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.002))
server.deploy_proxy("bert/aqs", "bert_base", scheme="aqs")
server.deploy_proxy("gpt2/aqs", "gpt2", scheme="aqs")   # gets pad_axis=1
print(f"deployments: {server.models()}")

# --- single requests coalesce into engine batches --------------------------
bert_reqs = proxy_batches("bert_base", 1, 8, seed=3)
tickets = server.submit_many("bert/aqs", bert_reqs)
server.flush("bert/aqs")
sched = server.stats("bert/aqs")["scheduler"]
print(f"bert/aqs: {sched['n_requests']} requests in {sched['n_batches']} "
      f"engine batches (mean coalesce {sched['mean_batch_size']:.1f}), "
      f"queue wait p95 {sched['queue_wait']['p95_ms']:.2f} ms")

# --- ragged causal-LM requests ride the padded split path ------------------
lm_tickets = [server.submit("gpt2/aqs", rng.integers(0, 512, (1, length)))
              for length in (18, 40, 9, 27)]
server.flush("gpt2/aqs")
print("gpt2/aqs: ragged lengths", [t.result().shape[1] for t in lm_tickets],
      f"served in {server.stats('gpt2/aqs')['scheduler']['n_batches']} batch")

# --- persist the offline phase, serve from disk ----------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = pathlib.Path(tmp) / "bert.aqs.plans.npz"
    PlanStore(path).save(server.entry("bert/aqs").session,
                         model_name="bert_base")
    restored = PlanStore(path).load()      # no calibration, no prepare
    a = server.entry("bert/aqs").session.run(bert_reqs[0])
    b = restored.run(bert_reqs[0])
    print(f"plan store round-trip: {path.stat().st_size / 1024:.0f} KiB, "
          f"bit-exact={np.array_equal(a, b)}")
