"""Architect's scenario: explore Panacea's operator design space.

Reproduces the paper's Fig. 13 reasoning interactively: how should the 12
operators per PEA be split between dynamic-workload operators (DWOs, the
sparse slice products) and static-workload operators (SWOs, the dense
``W_LO x_LO``), and when does double-tile processing pay?

Run:  python examples/design_space.py
"""

from repro.eval import format_table
from repro.hw import HwConfig, MemoryConfig, PanaceaConfig, PanaceaModel
from repro.models import synthetic_profile

hw = HwConfig(mem=MemoryConfig(dram_bits_per_cycle=2048))  # compute-bound

# --- sweep DWO/SWO splits across sparsity levels --------------------------
print("== throughput (TOPS) by operator split and HO vector sparsity")
splits = [(2, 10), (4, 8), (6, 6), (8, 4)]
sparsities = [0.0, 0.5, 0.8, 0.95]
rows = []
for n_dwo, n_swo in splits:
    model = PanaceaModel(hw, PanaceaConfig(n_dwo=n_dwo, n_swo=n_swo,
                                           dtp=False, sample_steps=192))
    row = [f"{n_dwo} DWO + {n_swo} SWO"]
    for rho in sparsities:
        prof = synthetic_profile(1024, 1024, 512, rho, rho, seed=0)
        row.append(model.simulate_model([prof], "sweep").tops)
    rows.append(row)
print(format_table(["config"] + [f"rho={r}" for r in sparsities], rows))
print("-> few DWOs lose at low sparsity (dense slice products queue on"
      "\n   them); few SWOs cap the speedup at high sparsity.  The paper"
      "\n   ships 4+8 because real transformer activations sit at high rho"
      "\n   (Fig. 14) while weights vary.\n")

# --- DTP: filling idle operators at high sparsity --------------------------
print("== double-tile processing at high sparsity (rho_w = rho_x = 0.9)")
rows = []
for n_dwo, n_swo in splits:
    prof = synthetic_profile(1024, 1024, 512, 0.9, 0.9, seed=1)
    off = PanaceaModel(hw, PanaceaConfig(n_dwo=n_dwo, n_swo=n_swo,
                                         dtp=False, sample_steps=192))
    on = PanaceaModel(hw, PanaceaConfig(n_dwo=n_dwo, n_swo=n_swo,
                                        dtp=True, sample_steps=192))
    t_off = off.simulate_model([prof], "sweep").tops
    t_on = on.simulate_model([prof], "sweep").tops
    rows.append([f"{n_dwo} DWO + {n_swo} SWO", t_off, t_on, t_on / t_off])
print(format_table(["config", "TOPS (no DTP)", "TOPS (DTP)", "gain"], rows))
print("-> DTP matters most where SWOs bound the schedule: the second"
      "\n   tile's dense products overflow onto otherwise-idle DWOs.")
