"""Vision scenario: DeiT-style calibration with ZPM + DBS, layer by layer.

Shows the co-optimization story of paper Section III-C on a vision
transformer: which layers get which DBS type, what the skip-range sparsity
looks like before/after each optimization, and what it costs in accuracy.

Run:  python examples/vision_calibration.py
"""

import numpy as np

from repro.core import PtqConfig, PtqPipeline
from repro.eval import classification_agreement, format_table
from repro.eval.experiments.fig14_sparsity import run_part_a
from repro.models import build_proxy, classification_set

# --- per-layer sparsity under four GEMM methods (paper Fig. 14a) ----------
print("== DeiT-base, one mid-depth block: activation HO vector sparsity")
rows = run_part_a(model="deit_base", block=3, seed=0)
print(format_table(
    ["layer", "previous bit-slice [53]", "AQS", "AQS+ZPM", "AQS+ZPM+DBS"],
    [[r.layer, r.previous_bitslice, r.aqs_plain, r.aqs_zpm, r.aqs_full]
     for r in rows]))
print("-> the zero-only skipper finds work only after GELU (mlp.fc2); the"
      "\n   AQS-GEMM plus ZPM/DBS unlocks every layer.\n")

# --- calibrate the runnable proxy and inspect the DBS decisions ----------
print("== proxy calibration: DBS types chosen per layer")
fp, _ = build_proxy("deit_base", seed=0)
to_quantize, _ = build_proxy("deit_base", seed=0)
batches = classification_set(16, 24, 192, 6, seed=1)
pipe = PtqPipeline(to_quantize, PtqConfig(scheme="aqs"))
records = pipe.calibrate(batches[:2])
table = []
for name, rec in list(records.items())[:10]:
    table.append([name, rec.zp, rec.dbs.dbs_type.type_id, rec.lo_bits,
                  f"{rec.dbs.std:.1f}"])
print(format_table(["layer", "zp''", "DBS type", "l", "std(codes)"], table))

# --- accuracy cost of the whole pipeline ----------------------------------
quantized = pipe.convert()
result = classification_agreement(fp, quantized, batches)
print(f"\ntop-1 agreement with FP after full AQS+ZPM+DBS quantization: "
      f"{result.agreement:.1%} "
      f"(loss {result.accuracy_loss_points:.1f} pts; paper reports ~0.6 pts "
      f"for DeiT-base at full scale)")
