"""Sharded pipeline serving: auto-partition -> pipelined deploy -> metrics.

The shard subsystem reproduces Panacea's pipelined-stage idea at the
serving level:

1. **auto_partition** — split a prepared session's layer chain into
   cost-balanced stages (measured per-layer latency via
   ``session.profile``, or modeled MAC volume without a sample).
2. **ShardedSession** — stream micro-batches through the stages with a
   bounded in-flight depth: stage k of request i overlaps stage k-1 of
   request i+1, bit-exact vs ``session.run``.
3. **ModelServer.deploy_proxy(..., shards=N)** — the same pipeline behind
   the micro-batching scheduler, with per-stage execution/stall metrics
   in ``server.metrics().pipelines``.
4. **PlanStore** — persist the shard plan next to the layer plans and
   redeploy with ``shards="stored"``, zero re-balancing.
5. **backend="process"** — the same ``shards=N`` deploy with every stage
   hosted in a spawned worker process: plans rehydrated per worker
   (mmap'd from the store's blob sidecar, so the bytes live once in page
   cache), activations hopping stages over shared-memory rings — still
   bit-exact, with per-edge ring counters in the metrics.

The process backend spawns workers that re-import ``__main__``, so the
script body lives under ``if __name__ == "__main__":`` — copy that shape
into anything that deploys with ``backend="process"``.

Run:  PYTHONPATH=src python examples/pipeline_serving.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.models.zoo import build_proxy, proxy_batches
from repro.serve import BatchPolicy, ModelServer, PlanStore
from repro.shard import ShardedSession, auto_partition


def main():
    # --- prepare one session, measure it, balance the stages ---------------
    model, _ = build_proxy("bert_base", seed=0)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches("bert_base", 2, 2, seed=1))

    sample = proxy_batches("bert_base", 2, 1, seed=2)[0]
    report = session.profile(sample, repeats=2)
    print(f"profiled {len(report.layers)} GEMM layers: "
          f"{report.layer_s / report.repeats * 1e3:.1f} ms/forward in "
          f"layers, {report.other_s / report.repeats * 1e3:.1f} ms glue")

    plan = auto_partition(session, 3, sample=sample)
    print(f"{plan.n_stages}-stage split ({plan.source} costs, "
          f"balance {plan.balance:.2f}):")
    for row in plan.summary():
        print(f"  stage {row['stage']}: {' '.join(row['segments'])} "
              f"({row['n_layers']} layers, {row['cost_share']:.0%} of cost)")

    # --- pipelined execution is bit-exact vs session.run -------------------
    requests = proxy_batches("bert_base", 1, 8, seed=3)
    expected = [session.run(x) for x in requests]
    with ShardedSession(session, plan, depth=4) as sharded:
        t0 = time.perf_counter()
        outputs = sharded.run_pipelined(requests)
        pipe_s = time.perf_counter() - t0
    for got, expect in zip(outputs, expected):
        assert np.array_equal(got, expect)
    print(f"pipelined {len(requests)} requests in {pipe_s * 1e3:.0f} ms, "
          "bit-exact vs serial session.run")

    # --- the same pipeline behind the ModelServer --------------------------
    with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0)) as server:
        server.deploy_proxy("bert/pipelined", "bert_base", scheme="aqs",
                            seed=0, shards=3, depth=4)
        tickets = server.submit_many("bert/pipelined", requests)
        server.flush("bert/pipelined")
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)
        pipe = server.metrics().pipelines["bert/pipelined"]
        print(f"served through a {pipe['n_stages']}-stage deployment "
              f"(depth {pipe['depth']}, {pipe['source']} costs):")
        for stage in pipe["stages"]:
            print(f"  stage {stage['stage']}: {stage['n_batches']} batches, "
                  f"exec p50 {stage['exec']['p50_ms']:.1f} ms, "
                  f"stall p50 {stage['stall']['p50_ms']:.2f} ms")

    # --- persist the shard plan with the layer plans -----------------------
    path = pathlib.Path(tempfile.mkdtemp()) / "bert_base.aqs.plans.npz"
    PlanStore(path).save(session, model_name="bert_base", seed=0,
                         shard_plan=plan)
    print(f"stored layer plans + shard plan -> {path.name} "
          f"({PlanStore(path).describe()['n_shards']} shards)")
    with ModelServer() as server:
        server.load("bert/restored", path, shards="stored")
        ticket = server.submit("bert/restored", requests[0])
        assert np.array_equal(ticket.result(), expected[0])
    print("redeployed from the store with the stored stage split, bit-exact")

    # --- the same pipeline with stages in worker processes -----------------
    # shards=N on backend="process" hosts each stage in a spawned worker:
    # the server snapshots the session to a plan store, every worker
    # mmaps the plan blob (one copy in page cache however many workers),
    # and activations cross the stage edges through shared-memory rings.
    with ModelServer(BatchPolicy(max_batch=4, max_delay_s=0.0),
                     workers=2, backend="process") as server:
        server.deploy_proxy("bert/procstages", "bert_base", scheme="aqs",
                            seed=0, shards=2, depth=2)
        tickets = server.submit_many("bert/procstages", requests)
        server.flush("bert/procstages")
        for ticket, expect in zip(tickets, expected):
            assert np.array_equal(ticket.result(), expect)
        pipe = server.metrics().pipelines["bert/procstages"]
        print(f"process-hosted {pipe['n_stages']}-stage deployment, "
              "bit-exact again; activations crossed the rings:")
        for edge in pipe["stage_edges"]:
            print(f"  stage {edge['stage']} on worker {edge['worker']}: "
                  f"{edge['n_frames']} ring frames, "
                  f"{edge['n_pipe_fallback']} pipe fallbacks")


if __name__ == "__main__":
    main()
