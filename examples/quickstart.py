"""Quickstart: the AQS-GEMM in five minutes.

Walks the paper's core idea end to end on one layer:

1. quantize a weight matrix symmetrically (Eq. 1) and an activation matrix
   asymmetrically (Eq. 2);
2. look at the high-order bit-slices: almost no *zero* slices (nothing for a
   conventional bit-slice GEMM to skip), but lots of ``r = zp >> 4`` slices;
3. apply the ZPM (Eq. 7) to centre the distribution in the skip range;
4. run the AQS-GEMM — skipping compressed slices *and* getting the exact
   integer result back through the Eq. 6 compensation;
5. compare the operation counts against a dense GEMM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bitslice import slice_unsigned
from repro.core import AqsGemmConfig, aqs_gemm, manipulate_zero_point
from repro.core.zpm import in_skip_fraction
from repro.quant import asymmetric_params, quantize, symmetric_params

rng = np.random.default_rng(0)

# --- 1. a layer's worth of data -----------------------------------------
M, K, N = 256, 1024, 64
weights = rng.standard_t(5, (M, K)) / np.sqrt(K)       # trained-looking
# An LLM-like activation: a narrow near-zero bulk with a positive skew
# (so min != -max and the zero-point floats) plus a few outlier channels
# that pin the quantization range (see DESIGN.md §4).  The quantized codes
# then pile up around zp — the paper's Fig. 5(a)/8 situation.
activations = rng.standard_t(4, (K, N)) * 0.15
activations += 0.1 * np.abs(rng.standard_t(4, (K, N)))
activations[rng.choice(K, 8, replace=False)] *= 12.0

w_params = symmetric_params(weights, bits=7)
x_params = asymmetric_params(activations, bits=8)
w_q = quantize(weights, w_params)
x_q = quantize(activations, x_params)
zp = int(x_params.zero_point)
print(f"weight scale  {float(w_params.scale):.5f} (7-bit symmetric)")
print(f"activation zp {zp}, scale {float(x_params.scale):.5f} (8-bit asym)")

# --- 2. why conventional bit-slice skipping fails here -------------------
ho = slice_unsigned(x_q, 8).ho
print(f"\nzero HO slices: {np.mean(ho == 0):6.1%}  <- a zero-skipper sees this")
print(f"r={zp >> 4} HO slices: {np.mean(ho == (zp >> 4)):6.1%}  <- the AQS-GEMM sees this")

# --- 3. zero-point manipulation ------------------------------------------
zp_adj = manipulate_zero_point(zp, lo_bits=4)
x_q_adj = quantize(activations, x_params.with_zero_point(zp_adj))
before = in_skip_fraction(x_q, zp, 4)
after = in_skip_fraction(x_q_adj, zp_adj, 4)
print(f"\nZPM: zp {zp} -> {zp_adj}; in-skip-range {before:.1%} -> {after:.1%}")

# --- 4. the AQS-GEMM ------------------------------------------------------
result = aqs_gemm(w_q, x_q_adj, zp_adj, AqsGemmConfig())
reference = w_q.astype(np.int64) @ x_q_adj
assert np.array_equal(result.acc, reference), "compensation must be exact"
print(f"\nAQS-GEMM output matches the dense integer GEMM bit-exactly: "
      f"{np.array_equal(result.acc, reference)}")
print(f"HO vector sparsity: weights {result.rho_w:.1%}, "
      f"activations {result.rho_x:.1%}")

# --- 5. the payoff ---------------------------------------------------------
dense_mul4 = 4 * M * K * N          # an 8b MAC = four 4b multiplies
saved = 1.0 - result.ops.mul4 / dense_mul4
print(f"\n4b multiplies: {result.ops.mul4:,} vs dense {dense_mul4:,} "
      f"({saved:.1%} fewer; paper reports ~61%)")
print(f"compensation overhead: {result.ops.comp_mul4:,} multiplies "
      f"({result.ops.comp_mul4 / result.ops.mul4:.2%} of the total)")
print(f"EMA: {result.ops.ema_nibbles / 2 / 1024:.0f} KiB compressed vs "
      f"{(M * K + K * N) / 1024:.0f} KiB dense")
