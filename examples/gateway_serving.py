"""Network serving: the asyncio HTTP gateway end to end.

Everything below the wire is the same serving stack the in-process
examples use — what the gateway adds is the *front door*:

1. **Admission control** — a bounded per-deployment queue sheds overload
   with typed 503s before work queues unboundedly, and per-tenant
   token-bucket quotas reject abusers with 429 + Retry-After while the
   reserve fraction keeps priority tenants admissible.
2. **Deadline-driven micro-batch release** — a
   :class:`~repro.serve.batching.DeadlinePolicy` fitted to a measured
   profile releases each micro-batch when the oldest request's SLO slack
   hits the batch's expected service time: light load waits for riders,
   heavy load releases early, and p99 stops hugging the SLO cliff.
3. **Bit-exactness over HTTP** — responses round-trip base64 raw bytes
   (or repr-exact JSON floats), so the networked output equals the
   serial ``session.run`` bit for bit; the conformance suite
   (``tests/test_conformance_random.py::TestGatewayFuzz``) holds that
   line for all four engines.

The demo deploys a BERT proxy behind the gateway, fires a seeded
open-loop two-tenant mix (steady Poisson + bursty MMPP) at it, and
prints the SLO dashboard plus the conservation ledger.

Run:  PYTHONPATH=src python examples/gateway_serving.py
"""


def main():
    from repro.eval import format_table
    from repro.models import proxy_batches
    from repro.serve import (
        DeadlinePolicy,
        Gateway,
        MMPPArrivals,
        ModelServer,
        PoissonArrivals,
        TenantQuota,
        TenantSpec,
        build_schedule,
        run_schedule,
        summarize,
    )

    # The scheduler targets a tighter release budget than the request SLO:
    # the difference is headroom for queueing and the network hop.
    slo_s = 0.15
    release_budget_s = 0.06

    # --- deploy a proxy and fit the deadline policy to its profile --------
    server = ModelServer()
    entry = server.deploy_proxy("bert/aqs", "bert_base", scheme="aqs")
    report = entry.session.profile(proxy_batches("bert_base", 2, 1)[0])
    entry.batcher.policy = DeadlinePolicy.from_profile(
        report, slo_s=release_budget_s, max_batch=8)
    service = entry.batcher.policy.service
    print(f"bert/aqs: measured service {service.base_s * 1e3:.1f} ms + "
          f"{service.per_item_s * 1e3:.1f} ms/request; deadline release "
          f"at a {release_budget_s * 1e3:.0f} ms budget inside the "
          f"{slo_s * 1e3:.0f} ms SLO")

    # --- the front door: bounded queue + per-tenant quotas ----------------
    quotas = {
        "steady": TenantQuota(rate_rps=40.0, burst=16.0, priority=0),
        "bursty": TenantQuota(rate_rps=10.0, burst=4.0, priority=1),
    }
    with Gateway.launch(server, quotas=quotas, max_pending=16) as handle:
        print(f"gateway listening on http://{handle.host}:{handle.port}")

        # --- seeded open-loop mix: steady majority + bursty minority ------
        tenants = [
            TenantSpec("steady", "bert/aqs", PoissonArrivals(6.0),
                       kind="infer", feature_shape=(24, 192), slo_s=slo_s),
            TenantSpec("bursty", "bert/aqs",
                       MMPPArrivals(base_rps=1.0, burst_rps=15.0),
                       kind="infer", feature_shape=(24, 192),
                       heavy_tail=True, slo_s=slo_s),
        ]
        duration_s = 2.0
        schedule = build_schedule(tenants, duration_s, seed=7)
        print(f"replaying {len(schedule)} scheduled requests over "
              f"{duration_s:.0f} s (open loop: arrivals fire on time even "
              f"if the server falls behind)")
        outcomes = run_schedule(handle.host, handle.port, schedule,
                                keep_outputs=False)

        # --- the dashboard ------------------------------------------------
        summary = summarize(outcomes, duration_s)
        print(format_table(
            ["offered rps", "goodput rps", "slo", "shed", "rejected",
             "p50 ms", "p99 ms"],
            [[f"{summary['offered_rps']:.1f}",
              f"{summary['goodput_rps']:.1f}",
              f"{summary['slo_attainment']:.0%}",
              f"{summary['shed_rate']:.0%}", summary["rejected"],
              f"{summary['p50_ms']:.1f}", f"{summary['p99_ms']:.1f}"]],
            title="open-loop load summary"))

        stats = handle.stats()
        adm = stats["admission"]
        print(f"admission ledger: offered={adm['offered']} = "
              f"accepted={adm['accepted']} + shed={adm['shed']} + "
              f"rejected={adm['rejected']} "
              f"(conserved={adm['conserved']})")
        for tenant, counts in sorted(adm["tenants"].items()):
            print(f"  {tenant}: offered={counts['offered']} "
                  f"rejected={counts['rejected']} (quota "
                  f"{quotas[tenant].rate_rps:.0f} rps)")
    server.close()


if __name__ == "__main__":
    main()
