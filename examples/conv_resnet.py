"""CNN scenario: ResNet-18 through im2col on the bit-slice accelerators.

The paper's one non-transformer benchmark.  Shows (1) convolution-as-GEMM
workload extraction, (2) why post-ReLU activations suit the AQS-GEMM
(zp near 0, heavy near-zero mass), and (3) the accelerator comparison.

Run:  python examples/conv_resnet.py
"""

import numpy as np

from repro.core import PtqConfig, PtqPipeline
from repro.eval import classification_agreement, format_table
from repro.hw import HwConfig, PanaceaModel, SibiaModel, SimdModel
from repro.models import (
    build_proxy,
    gaussian_images,
    get_config,
    policy_for_model,
    profile_model,
)

config = get_config("resnet18")

# --- 1. the conv GEMM inventory -------------------------------------------
print("== ResNet-18 as im2col GEMMs (224x224 input)")
print(format_table(
    ["layer", "M (out ch)", "K (in ch * k^2)", "N (out pixels)", "MACs (M)"],
    [[l.name, l.m, l.k, l.n, l.macs / 1e6] for l in config.layers[:8]]))
print(f"total: {len(config.layers)} GEMMs, "
      f"{config.total_macs / 1e9:.2f} GMACs per image\n")

# --- 2. post-ReLU distributions under asymmetric quantization -------------
print("== why ReLU activations suit the AQS-GEMM")
profiles = profile_model(config, policy_for_model(config, "aqs"),
                         n_sample=96, m_cap=384, seed=0)
print(format_table(
    ["layer", "zp''", "r", "rho_x (vectors)", "DBS type"],
    [[p.name, p.zp, p.r, p.rho_x, p.dbs_type] for p in profiles[1:7]]))
print("-> zp sits near 0 (inputs are non-negative), r is small, and the "
      "near-zero\n   bulk compresses; mean rho_x = "
      f"{np.mean([p.rho_x for p in profiles]):.1%}\n")

# --- 3. accuracy + accelerator projection ----------------------------------
fp, _ = build_proxy("resnet18", seed=0)
images = [gaussian_images(6, 3, 32, seed=i) for i in range(5)]
quant, _ = build_proxy("resnet18", seed=0)
pipe = PtqPipeline(quant, PtqConfig(scheme="aqs"))
pipe.calibrate(images[:2])
agreement = classification_agreement(fp, pipe.convert(), images)
print(f"== proxy top-1 agreement after quantization: "
      f"{agreement.agreement:.1%}")

hw = HwConfig()
prof_sib = profile_model(config, policy_for_model(config, "sibia"),
                         n_sample=96, m_cap=384, seed=0)
prof_dense = profile_model(config, policy_for_model(config, "dense"),
                           n_sample=32, m_cap=128, seed=0)
perfs = [
    PanaceaModel(hw).simulate_model(profiles, "resnet18"),
    SibiaModel(hw).simulate_model(prof_sib, "resnet18"),
    SimdModel(hw).simulate_model(prof_dense, "resnet18"),
]
print(format_table(
    ["design", "latency (ms)", "TOPS", "TOPS/W"],
    [[p.accelerator, p.latency_s * 1e3, p.tops, p.tops_per_watt]
     for p in perfs]))
pan, sib, _ = perfs
print(f"\npanacea vs sibia: {pan.tops / sib.tops:.2f}x throughput, "
      f"{pan.tops_per_watt / sib.tops_per_watt:.2f}x efficiency "
      f"(paper: 1.37x / 1.49x)")
