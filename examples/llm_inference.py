"""LLM inference scenario: quantize an OPT-class model and project it onto
the accelerators.

Mirrors the paper's headline workflow (Section IV, Figs. 16-17):

1. build an OPT-2.7B proxy, calibrate it with the full Panacea PTQ pipeline
   (asymmetric activations + ZPM + DBS), and check perplexity against FP;
2. profile the *full-shape* OPT-2.7B workload (every GEMM at its real
   dimensions) for per-layer bit-slice sparsity;
3. run the Panacea, Sibia and SIMD performance models on that workload and
   report the throughput / energy-efficiency comparison.

Run:  python examples/llm_inference.py
"""

import numpy as np

from repro.core import PtqConfig, PtqPipeline
from repro.eval import format_table, lm_perplexity
from repro.hw import HwConfig, PanaceaModel, SibiaModel, SimdModel
from repro.models import (
    build_proxy,
    get_config,
    policy_for_model,
    profile_model,
    teacher_sample,
    token_batches,
)
from repro.eval.experiments.common import subsample_blocks

MODEL = "opt_2p7b"

# --- 1. algorithm side: PTQ quality ---------------------------------------
print(f"== {MODEL}: PTQ quality on the runnable proxy")
fp_model, config = build_proxy(MODEL, seed=0)
eval_ids = teacher_sample(fp_model, 512, batch=2, seq=48, seed=1)
ppl_fp = lm_perplexity(fp_model, eval_ids)

rows = []
for label, cfg in (
    ("panacea (asym + ZPM + DBS)", PtqConfig(scheme="aqs")),
    ("sibia (symmetric 7-bit)", PtqConfig(scheme="sibia", x_bits=7)),
    ("dense int8 (asym)", PtqConfig(scheme="int8_dense")),
):
    model, _ = build_proxy(MODEL, seed=0)
    pipe = PtqPipeline(model, cfg)
    pipe.calibrate(token_batches(512, 2, 48, 2, seed=2))
    ppl = lm_perplexity(pipe.convert(), eval_ids)
    rows.append([label, ppl, ppl / ppl_fp])
print(format_table(["scheme", "perplexity", "vs FP"],
                   [["fp32 reference", ppl_fp, 1.0]] + rows))

# --- 2. hardware side: full-shape workload profile -------------------------
print(f"\n== {MODEL}: full-shape sparsity profile (sampled)")
sub = subsample_blocks(config, stride=8)      # every 8th block, scaled
profiles = profile_model(sub, policy_for_model(sub, "aqs"),
                         n_sample=96, m_cap=384, seed=0)
print(format_table(
    ["layer", "M", "K", "rho_w", "rho_x", "DBS type"],
    [[p.name, p.layer.m, p.layer.k, p.rho_w, p.rho_x, p.dbs_type]
     for p in profiles[:6]]))
print(f"mean activation HO-vector sparsity: "
      f"{np.mean([p.rho_x for p in profiles]):.1%}")

# --- 3. accelerator comparison ---------------------------------------------
print(f"\n== {MODEL}: accelerator projection (3072 muls, 192KB SRAM, "
      f"256b/cyc DRAM)")
hw = HwConfig()
prof_sibia = profile_model(sub, policy_for_model(sub, "sibia"),
                           n_sample=96, m_cap=384, seed=0)
prof_dense = profile_model(sub, policy_for_model(sub, "dense"),
                           n_sample=32, m_cap=128, seed=0)
perfs = [
    PanaceaModel(hw).simulate_model(profiles, MODEL),
    SibiaModel(hw).simulate_model(prof_sibia, MODEL),
    SimdModel(hw).simulate_model(prof_dense, MODEL),
]
print(format_table(
    ["design", "latency (ms)", "TOPS", "TOPS/W", "EMA (MB)"],
    [[p.accelerator, p.latency_s * 1e3, p.tops, p.tops_per_watt,
      p.ema_bytes / 2 ** 20] for p in perfs]))
pan, sib, simd = perfs
print(f"\npanacea vs sibia: {pan.tops / sib.tops:.2f}x throughput, "
      f"{pan.tops_per_watt / sib.tops_per_watt:.2f}x energy efficiency "
      f"(paper: 1.88x / 1.97x on OPT-2.7B)")
print(f"panacea vs simd:  {pan.tops / simd.tops:.2f}x throughput, "
      f"{pan.tops_per_watt / simd.tops_per_watt:.2f}x energy efficiency "
      f"(paper: 2.41x / 3.26x)")
