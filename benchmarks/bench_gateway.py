"""Open-loop gateway benchmark: overload behaviour + deadline vs fixed delay.

The serving stack's network story has to survive an *open-loop* world:
clients keep sending at the offered rate no matter how the server is
doing.  This bench drives :class:`repro.serve.gateway.Gateway` with the
seeded :mod:`repro.serve.loadgen` traffic (Poisson + bursty MMPP,
heavy-tail request sizes, multiple tenants) and measures the numbers that
matter under overload:

* **offered-load sweep** — goodput (within-SLO completions/s), p50/p95/p99
  latency, SLO attainment and shed rate as the offered rate climbs past
  capacity: goodput should plateau while the shed rate absorbs the excess,
  never the tails alone;
* **policy comparison** — the PR's perf criterion: a
  :class:`~repro.serve.batching.DeadlinePolicy` (release a micro-batch
  when the oldest request's SLO slack hits the batch's expected service
  time, from a measured :class:`~repro.engine.ServiceModel`) against the
  *fixed* ``max_delay`` tuned to the same worst-case wait
  (``slo - expected_service(1)``).  The fixed policy always waits its full
  delay when the batch is not full; the deadline policy releases earlier
  as riders deepen (a fuller batch costs more service time, so the same
  SLO leaves less room to wait) — so its p99 must come out lower at
  equal-or-better goodput;
* **bit-exactness at every measured point** — each completed response
  that crossed the wire is compared against a serial ``session.run``
  replay on a freshly built reference session; a scheduler or transport
  that changed a single bit fails the bench, not just the conformance
  suite.

Wall-clock assertions are opt-in (``REPRO_RUN_THROUGHPUT_GATE=1``, skip
with an explicit core-count reason otherwise); the exactness asserts run
everywhere, every time.  JSON artifacts: ``results/gateway.json`` (full),
``results/gateway_smoke.json`` (``--smoke``) and the perf-trajectory
record ``results/BENCH_gateway.json``.
"""

import argparse
import os
import time

from _util import (blas_report, emit, emit_json, pin_blas_threads,
                   throughput_gate_or_skip)

pin_blas_threads(1)

import numpy as np  # noqa: E402  (after pin_blas_threads, deliberately)

from repro.core.pipeline import PtqConfig  # noqa: E402
from repro.engine import PanaceaSession  # noqa: E402
from repro.eval.tables import format_table  # noqa: E402
from repro.nn.layers import Linear  # noqa: E402
from repro.nn.module import Module  # noqa: E402
from repro.serve import (BatchPolicy, DeadlinePolicy, Gateway,  # noqa: E402
                         ModelServer, PoissonArrivals, MMPPArrivals,
                         TenantQuota, TenantSpec, build_schedule,
                         run_schedule, summarize)

SCHEME = "aqs"
IN_F, HID_F, OUT_F = 256, 512, 128
SLO_S = 0.05
MAX_BATCH = 8


class GatewayNet(Module):
    """A middling MLP: big enough that batch service time is measurable
    (so deadline release has slack to spend), small enough for CI."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(IN_F, HID_F, rng=rng)
        self.fc2 = Linear(HID_F, OUT_F, rng=rng)

    def forward(self, x):
        return self.fc2(np.maximum(self.fc1(x), 0.0))


def _session(seed=0):
    rng = np.random.default_rng(seed + 100)
    calib = [rng.normal(0.0, 1.0, (4, IN_F)) for _ in range(3)]
    return PanaceaSession(GatewayNet(seed), PtqConfig(scheme=SCHEME),
                         calibration=calib)


def _tenants(offered_rps):
    """The standard mix: a bursty heavy-tail tenant plus steady fill-in
    (two tenants, one deployment, both SLO-scored)."""
    return [
        TenantSpec(name="steady", deployment="mlp",
                   arrivals=PoissonArrivals(offered_rps * 0.6),
                   kind="infer", feature_shape=(IN_F,), min_rows=1,
                   max_rows=4, heavy_tail=True, slo_s=SLO_S),
        TenantSpec(name="bursty", deployment="mlp",
                   arrivals=MMPPArrivals(offered_rps * 0.2,
                                         offered_rps * 1.2,
                                         mean_dwell_s=0.4,
                                         mean_burst_s=0.15),
                   kind="infer", feature_shape=(IN_F,), min_rows=1,
                   max_rows=4, heavy_tail=True, slo_s=SLO_S),
    ]


def _verify_bit_exact(outcomes, reference):
    """Every completed networked response equals serial session.run."""
    checked = 0
    for outcome in outcomes:
        if outcome.ok and outcome.output is not None:
            expect = reference.run(outcome.request.x)
            assert np.array_equal(outcome.output, expect), (
                f"gateway response diverged from serial run for tenant "
                f"{outcome.request.tenant} at t={outcome.request.t:.3f}")
            checked += 1
    return checked


def _policy(kind, service):
    """The two contenders, tuned to the same worst-case wait."""
    fixed_delay = max(0.001, SLO_S - service.expected_s(1))
    if kind == "deadline":
        return DeadlinePolicy(max_batch=MAX_BATCH, max_delay_s=fixed_delay,
                              slo_s=SLO_S, service=service)
    return BatchPolicy(max_batch=MAX_BATCH, max_delay_s=fixed_delay)


def run_policy(kind, schedule, duration_s, *, service, max_pending=48,
               seed=0):
    """One gateway run under ``kind`` policy; summary + exactness count."""
    session = _session(seed)
    reference = _session(seed)
    server = ModelServer(_policy(kind, service))
    server.register("mlp", session)
    handle = Gateway.launch(server, max_pending=max_pending,
                            executor_threads=16)
    try:
        outcomes = run_schedule(handle.host, handle.port, schedule)
    finally:
        stats = handle.stats()
        handle.close()
        server.close()
    summary = summarize(outcomes, duration_s)
    summary["policy"] = kind
    summary["bit_exact_responses"] = _verify_bit_exact(outcomes, reference)
    summary["admission"] = {
        key: stats["admission"][key]
        for key in ("offered", "accepted", "shed", "rejected", "completed",
                    "failed", "cancelled", "conserved")}
    assert stats["admission"]["conserved"], stats["admission"]
    return summary


def measure_service(seed=0):
    """The DeadlinePolicy input: a ServiceModel from a measured profile."""
    session = _session(seed)
    rng = np.random.default_rng(seed + 200)
    report = session.profile(rng.normal(0.0, 1.0, (4, IN_F)), repeats=3)
    return report.service_model()


def run_compare(offered_rps=220.0, duration_s=2.0, seed=0):
    """Same seeded open-loop traffic through both policies."""
    service = measure_service(seed)
    schedule = build_schedule(_tenants(offered_rps), duration_s, seed=seed)
    results = [run_policy(kind, schedule, duration_s, service=service,
                          seed=seed)
               for kind in ("fixed", "deadline")]
    return {"offered_rps_target": offered_rps, "duration_s": duration_s,
            "slo_ms": SLO_S * 1e3, "max_batch": MAX_BATCH,
            "service_model": {"base_ms": service.base_s * 1e3,
                              "per_item_ms": service.per_item_s * 1e3},
            "n_requests": len(schedule), "results": results}


def run_overload(offered_sweep=(80.0, 240.0, 480.0), duration_s=1.5,
                 seed=0):
    """Goodput / tails / shed rate vs offered load (deadline policy)."""
    service = measure_service(seed)
    points = []
    for offered in offered_sweep:
        schedule = build_schedule(_tenants(offered), duration_s,
                                  seed=seed + int(offered))
        summary = run_policy("deadline", schedule, duration_s,
                             service=service, max_pending=24,
                             seed=seed)
        summary["offered_rps_target"] = offered
        points.append(summary)
    return {"duration_s": duration_s, "slo_ms": SLO_S * 1e3,
            "points": points}


def run(offered_rps=220.0, duration_s=2.0):
    compare = run_compare(offered_rps=offered_rps, duration_s=duration_s)
    overload = run_overload()
    payload = {"model": f"mlp-{IN_F}x{HID_F}x{OUT_F}", "scheme": SCHEME,
               "cpu_count": os.cpu_count(), "blas": blas_report(),
               "compare": compare, "overload": overload}
    emit("gateway", format_table(
        ["policy", "goodput rps", "p50 ms", "p95 ms", "p99 ms",
         "SLO att.", "shed rate"],
        [[r["policy"], r["goodput_rps"], r["p50_ms"], r["p95_ms"],
          r["p99_ms"], r["slo_attainment"], r["shed_rate"]]
         for r in compare["results"]],
        title=f"deadline vs fixed micro-batch release at "
              f"~{compare['offered_rps_target']:.0f} rps offered "
              f"(SLO {compare['slo_ms']:.0f} ms; every response bit-exact "
              "vs serial run)")
        + "\n\n" + format_table(
            ["offered rps", "goodput rps", "p99 ms", "SLO att.",
             "shed rate"],
            [[p["offered_rps"], p["goodput_rps"], p["p99_ms"],
              p["slo_attainment"], p["shed_rate"]]
             for p in overload["points"]],
            title="open-loop overload sweep (deadline policy): goodput "
                  "plateaus, shed rate absorbs the excess"))
    emit_json("gateway", payload)
    emit_json("BENCH_gateway", _trajectory(payload))
    return payload


def _trajectory(payload):
    """The consolidated perf-trajectory record: one flat dict per run."""
    by_kind = {r["policy"]: r for r in payload["compare"]["results"]}
    return {
        "bench": "gateway",
        "model": payload["model"],
        "cpu_count": payload["cpu_count"],
        "slo_ms": payload["compare"]["slo_ms"],
        "fixed_p99_ms": by_kind["fixed"]["p99_ms"],
        "deadline_p99_ms": by_kind["deadline"]["p99_ms"],
        "p99_improvement": (by_kind["fixed"]["p99_ms"]
                            / max(by_kind["deadline"]["p99_ms"], 1e-9)),
        "fixed_goodput_rps": by_kind["fixed"]["goodput_rps"],
        "deadline_goodput_rps": by_kind["deadline"]["goodput_rps"],
        "overload_shed_rates": {str(p["offered_rps_target"]): p["shed_rate"]
                                for p in payload["overload"]["points"]},
        "overload_goodput_rps": {str(p["offered_rps_target"]):
                                 p["goodput_rps"]
                                 for p in payload["overload"]["points"]},
        "bit_exact_responses": sum(r["bit_exact_responses"]
                                   for r in payload["compare"]["results"]),
    }


# -- pytest gates (wrapped by tests/test_gateway_bench_gates.py) --------------

def test_gateway_responses_bit_exact():
    """The non-negotiable invariant through the network path: a short
    open-loop run where every completed response must equal serial
    ``session.run`` (asserted inside run_policy)."""
    service = measure_service()
    schedule = build_schedule(_tenants(60.0), 0.5, seed=3)
    summary = run_policy("deadline", schedule, 0.5, service=service)
    assert summary["bit_exact_responses"] == summary["completed"]
    assert summary["completed"] > 0


def test_gateway_admission_conserved_under_shed():
    """Overload hard enough to shed: conservation still holds (asserted
    inside run_policy) and the shed shows up in the summary."""
    service = measure_service()
    schedule = build_schedule(_tenants(400.0), 0.5, seed=4)
    summary = run_policy("deadline", schedule, 0.5, service=service,
                         max_pending=4)
    total = (summary["completed"] + summary["shed"] + summary["rejected"]
             + summary["failed"])
    assert total == summary["offered"]


def test_deadline_beats_fixed_delay_p99():
    """The PR's perf criterion: deadline-driven release beats the fixed
    ``max_delay`` tuned to the same worst-case wait on p99, at
    equal-or-better goodput, on identical seeded open-loop traffic.

    Wall-clock comparison, so opt-in; few-core hosts skip explicitly with
    their core count (the policy difference is scheduling-level, so two
    cores — loop + serve — are enough to measure it honestly).  The
    bit-exactness asserts ran in test_gateway_responses_bit_exact
    regardless.
    """
    throughput_gate_or_skip(
        min_cores=2, purpose="overlapping the event loop with batch service")
    payload = run_compare(offered_rps=220.0, duration_s=2.0)
    by_kind = {r["policy"]: r for r in payload["results"]}
    fixed, deadline = by_kind["fixed"], by_kind["deadline"]
    assert deadline["p99_ms"] < fixed["p99_ms"], (fixed, deadline)
    assert deadline["goodput_rps"] >= 0.95 * fixed["goodput_rps"], (
        fixed, deadline)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short run, exactness asserts + JSON only")
    parser.add_argument("--rps", type=float, default=220.0)
    parser.add_argument("--duration", type=float, default=2.0)
    args = parser.parse_args()
    if args.smoke:
        compare = run_compare(offered_rps=80.0, duration_s=0.75)
        by_kind = {r["policy"]: r for r in compare["results"]}
        emit_json("gateway_smoke",
                  {"model": f"mlp-{IN_F}x{HID_F}x{OUT_F}",
                   "cpu_count": os.cpu_count(), "blas": blas_report(),
                   "compare": compare})
        print("gateway smoke: "
              f"{sum(r['bit_exact_responses'] for r in compare['results'])} "
              "networked responses bit-exact vs serial run; p99 fixed "
              f"{by_kind['fixed']['p99_ms']:.1f} ms vs deadline "
              f"{by_kind['deadline']['p99_ms']:.1f} ms at goodput "
              f"{by_kind['fixed']['goodput_rps']:.0f}/"
              f"{by_kind['deadline']['goodput_rps']:.0f} rps on "
              f"{os.cpu_count()} cores (gate binds only with "
              "REPRO_RUN_THROUGHPUT_GATE=1 and >= 2 cores)")
    else:
        run(offered_rps=args.rps, duration_s=args.duration)
