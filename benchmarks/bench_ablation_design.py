"""Ablation benches for design choices DESIGN.md calls out (not paper
figures): slice-vector length ``v``, RLE index width, and the DBS z-score.

These answer "why did the paper pick v=4, 4-bit indices, and this typing
rule?" with measurements from our own substrate.
"""

import numpy as np
from _util import emit

from repro.bitslice.rle import rle_index_bits_batch
from repro.bitslice.slicing import slice_unsigned
from repro.bitslice.vectors import activation_vector_mask, vector_sparsity
from repro.eval.tables import format_table
from repro.models.configs import get_config
from repro.models.distributions import sample_activation
from repro.models.workloads import QuantPolicy, profile_model
from repro.quant.uniform import asymmetric_params, quantize


def _codes(seed=0, k=2048, n=128):
    cfg = get_config("opt_2p7b")
    layer = cfg.layers[3]
    rng = np.random.default_rng(seed)
    x = sample_activation(layer.act, k, n, rng)
    params = asymmetric_params(x, 8)
    return quantize(x, params), int(params.zero_point)


def test_vector_length_tradeoff(benchmark):
    """v sweep: longer vectors cut index overhead but lose sparsity.

    The paper's v=4 sits where vector sparsity is still close to the
    slice-level ceiling.
    """
    codes, zp = _codes()
    ho = slice_unsigned(codes, 8).ho
    r = zp >> 4
    slice_sparsity = float(np.mean(ho == r))

    def sweep():
        rows = []
        for v in (1, 2, 4, 8, 16):
            mask = activation_vector_mask(ho, v=v, compress_value=r)
            rho = vector_sparsity(mask)
            idx_bits = int(rle_index_bits_batch(mask.T).sum())
            payload_bits = int(mask.sum()) * v * 4
            rows.append([v, rho, rho / slice_sparsity,
                         (payload_bits + idx_bits) / 1024.0])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_vector_length", format_table(
        ["v", "vector rho", "vs slice ceiling", "HO wire KiB"], rows,
        title=f"vector-length ablation (slice sparsity {slice_sparsity:.3f})"))
    rho_by_v = {row[0]: row[1] for row in rows}
    assert rho_by_v[1] >= rho_by_v[4] >= rho_by_v[16]
    # v=4 retains a healthy share of the slice-level ceiling (~3/4 here);
    # the rest of its justification is the 4x4-outer-product OPC mapping
    assert rho_by_v[4] > 0.65 * rho_by_v[1]
    assert rho_by_v[16] < 0.6 * rho_by_v[1]


def test_rle_index_width(benchmark):
    """Index-width sweep at two sparsity regimes.

    Narrow indices win when payloads dominate (every payload carries one
    index); wide indices win when long compressed runs dominate (fewer
    continuation tokens).  4-bit indices are the compromise that stays
    near-optimal in the high-sparsity regime the AQS-GEMM targets.
    """
    rng = np.random.default_rng(1)

    def sweep():
        rows = []
        for label, rho in (("moderate (rho=0.65)", 0.65),
                           ("high (rho=0.97)", 0.97)):
            mask = rng.random((2048, 64)) >= rho
            for bits in (2, 4, 8):
                total = int(rle_index_bits_batch(mask.T, bits).sum())
                rows.append([label, bits, total / 1024.0])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_rle_bits", format_table(
        ["regime", "index bits", "index KiB"], rows,
        title="RLE index-width ablation"))
    high = {row[1]: row[2] for row in rows if row[0].startswith("high")}
    moderate = {row[1]: row[2] for row in rows if row[0].startswith("mod")}
    # at high sparsity, 4-bit indices beat 2-bit (fewer continuation
    # tokens); at moderate sparsity they beat 8-bit (cheaper payload
    # indices) — the compromise the paper ships
    assert high[4] < high[2]
    assert moderate[4] < moderate[8]


def test_dbs_z_score(benchmark):
    """z sweep: higher z escalates more layers to wide slicing.

    Sparsity rises monotonically with z; the accuracy cost (LSB truncation)
    rises with it — the calibration-time dial the paper's z-table encodes.
    """
    cfg = get_config("deit_base")
    import dataclasses

    small = dataclasses.replace(cfg, layers=tuple(cfg.layers[:12]))

    def sweep():
        rows = []
        for z in (1.0, 2.0, 4.0):
            profiles = profile_model(
                small, QuantPolicy(scheme="aqs", z=z),
                n_sample=64, m_cap=256, seed=0, keep_masks=False)
            types = [p.dbs_type for p in profiles]
            rows.append([z, float(np.mean([p.rho_x for p in profiles])),
                         types.count(2) + types.count(3)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_dbs_z", format_table(
        ["z", "mean rho_x", "wide-typed layers"], rows,
        title="DBS z-score ablation (DeiT-base, first 2 blocks)"))
    rhos = [row[1] for row in rows]
    assert rhos[-1] >= rhos[0] - 0.02
