"""Bench F15 — Fig. 15: energy breakdown, throughput, ablations and area."""

from _util import emit

from repro.eval.experiments import fig15_breakdown


def test_fig15_breakdown(benchmark):
    result = benchmark.pedantic(fig15_breakdown.run, rounds=1, iterations=1)
    emit("fig15_breakdown", result.format())

    # Panacea uses the least energy and the most throughput on every model
    for model in result.breakdowns:
        energies = {d: sum(parts.values())
                    for d, parts in result.breakdowns[model].items()}
        assert energies["panacea"] == min(energies.values())
        assert result.throughput[model]["panacea"] == max(
            result.throughput[model].values())

    # each optimization step helps both energy and throughput
    for step, gains in result.ablation.items():
        assert gains["energy_gain"] >= 0.99, step
        assert gains["throughput_gain"] >= 0.99, step

    # area: ZPM free, DBS cheap, DTP visible but modest
    assert result.area["+zpm"] == 1.0
    assert result.area["+dbs"] < 1.01
    assert 1.0 < result.area["+dtp"] < 1.15


if __name__ == "__main__":
    print(fig15_breakdown.run().format())
