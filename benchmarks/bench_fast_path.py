"""Bench E1 — collapsed-BLAS fast path vs the sliced plane-pair loop.

The sliced AQS execute issues ``n_w_planes x n_x_planes`` BLAS calls plus
the compensation call per request; the fast path collapses the whole loop
into two calls on the precomputed ``w_f64`` mirror (Sibia collapses to one).
Both are bit-exact, so the only difference is wall time.  This bench
measures that on BERT-base and ResNet im2col shapes for the AQS and Sibia
kernels, asserting bit-exactness on every shape before timing.

Emits a table to ``results/fast_path.txt`` and machine-readable numbers to
``results/fast_path.json``.

Run:        PYTHONPATH=src python benchmarks/bench_fast_path.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_fast_path.py --smoke
(the smoke run skips timing and only checks bit-exactness across the full
scheme/config grid, so it is fast enough for every push)
"""

import argparse
import sys
import time

import numpy as np
from _util import emit, emit_json

from repro.core.aqs_gemm import AqsGemmConfig, execute_aqs, prepare_aqs
from repro.eval.tables import format_table
from repro.gemm.sibia_gemm import execute_sibia, prepare_sibia

# (name, M, K, N): BERT-base projections/MLP at seq 128, ResNet-18/50 im2col
# shapes at 224x224 input.
SHAPES = [
    ("bert_base_qkv", 768, 768, 128),
    ("bert_base_fc1", 3072, 768, 128),
    ("bert_base_fc2", 768, 3072, 128),
    ("resnet18_conv3", 128, 1152, 784),
    ("resnet50_conv4", 256, 2304, 196),
]
BERT_SHAPES = ("bert_base_qkv", "bert_base_fc1", "bert_base_fc2")

# The exactness grid of the acceptance criteria: every lo_bits x w_bits
# combination both kernels accept (lo_bits applies to AQS only).
LO_BITS = (4, 5, 6)
W_BITS = (4, 7, 10)


def _aqs_operands(m, k, n, w_bits=7, seed=0):
    rng = np.random.default_rng(seed)
    w_max = (1 << (w_bits - 1)) - 1
    w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 4),
                -w_max - 1, w_max).astype(np.int64)
    zp = 168
    x = np.clip(np.rint(rng.standard_t(4, (k, n)) * 4 + zp), 0,
                255).astype(np.int64)
    return w, x, zp


def _sbr_operands(m, k, n, w_bits=7, x_bits=7, seed=0):
    rng = np.random.default_rng(seed)
    w_max = (1 << (w_bits - 1)) - 1
    x_max = (1 << (x_bits - 1)) - 1
    w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 3),
                -w_max - 1, w_max).astype(np.int64)
    x = np.clip(np.rint(rng.standard_t(4, (k, n)) * 3),
                -x_max - 1, x_max).astype(np.int64)
    return w, x


def _time(fn, repeats):
    """Median wall time of ``fn`` over ``repeats`` calls, in seconds."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def check_exactness(m=48, k=96, n=24, seed=0):
    """Fast == sliced on every scheme/config combination (the invariant)."""
    for w_bits in W_BITS:
        for lo_bits in LO_BITS:
            w, x, zp = _aqs_operands(m, k, n, w_bits=w_bits, seed=seed)
            kwargs = dict(w_bits=w_bits, lo_bits=lo_bits)
            fast = execute_aqs(prepare_aqs(
                w, zp, AqsGemmConfig(exec_path="fast", **kwargs)), x)
            sliced = execute_aqs(prepare_aqs(
                w, zp, AqsGemmConfig(exec_path="sliced", **kwargs)), x)
            assert np.array_equal(fast.acc, sliced.acc), (w_bits, lo_bits)
            assert fast.ops.mul4 == sliced.ops.mul4, (w_bits, lo_bits)
        for tracked in ("weight", "activation", "auto"):
            w, x = _sbr_operands(m, k, n, w_bits=w_bits, seed=seed)
            fast = execute_sibia(prepare_sibia(
                w, w_bits=w_bits, tracked=tracked, exec_path="fast"), x)
            sliced = execute_sibia(prepare_sibia(
                w, w_bits=w_bits, tracked=tracked, exec_path="sliced"), x)
            assert np.array_equal(fast.acc, sliced.acc), (w_bits, tracked)
            assert fast.ops.mul4 == sliced.ops.mul4, (w_bits, tracked)


def measure_shape(name, m, k, n, repeats=5):
    """Sliced vs fast execute timings for one layer shape (exactness checked)."""
    w, x, zp = _aqs_operands(m, k, n)
    fast_plan = prepare_aqs(w, zp, AqsGemmConfig(exec_path="fast"))
    sliced_plan = prepare_aqs(w, zp, AqsGemmConfig(exec_path="sliced"))
    assert np.array_equal(execute_aqs(fast_plan, x).acc,
                          execute_aqs(sliced_plan, x).acc), name

    sliced_s = _time(lambda: execute_aqs(sliced_plan, x), repeats)
    fast_s = _time(lambda: execute_aqs(fast_plan, x), repeats)

    ws, xs = _sbr_operands(m, k, n)
    sib_fast = prepare_sibia(ws, exec_path="fast")
    sib_sliced = prepare_sibia(ws, exec_path="sliced")
    assert np.array_equal(execute_sibia(sib_fast, xs).acc,
                          execute_sibia(sib_sliced, xs).acc), name
    sib_sliced_s = _time(lambda: execute_sibia(sib_sliced, xs), repeats)
    sib_fast_s = _time(lambda: execute_sibia(sib_fast, xs), repeats)

    return {
        "m": m, "k": k, "n": n,
        "aqs_sliced_ms": sliced_s * 1e3,
        "aqs_fast_ms": fast_s * 1e3,
        "aqs_speedup": sliced_s / fast_s,
        "sibia_sliced_ms": sib_sliced_s * 1e3,
        "sibia_fast_ms": sib_fast_s * 1e3,
        "sibia_speedup": sib_sliced_s / sib_fast_s,
    }


def run(repeats=5):
    check_exactness()
    results = {name: measure_shape(name, m, k, n, repeats)
               for name, m, k, n in SHAPES}
    bert = [results[name]["aqs_speedup"] for name in BERT_SHAPES]
    results["_summary"] = {
        "bert_median_aqs_speedup": float(np.median(bert)),
    }
    rows = [[name, r["m"], r["k"], r["n"], r["aqs_sliced_ms"],
             r["aqs_fast_ms"], r["aqs_speedup"], r["sibia_speedup"]]
            for name, r in results.items() if not name.startswith("_")]
    emit("fast_path", format_table(
        ["layer", "M", "K", "N", "aqs sliced (ms)", "aqs fast (ms)",
         "aqs speedup", "sibia speedup"],
        rows,
        title="collapsed-BLAS fast path vs sliced plane-pair loop "
              f"(BERT median aqs speedup "
              f"{results['_summary']['bert_median_aqs_speedup']:.2f}x)"))
    emit_json("fast_path", results)
    return results


def test_exec_paths_bit_exact():
    """The non-negotiable invariant, under pytest."""
    check_exactness()


def test_fast_path_speedup():
    """Fast execute must beat sliced by >= 2x median on BERT-base shapes."""
    speedups = []
    for name, m, k, n in SHAPES:
        if name not in BERT_SHAPES:
            continue
        speedups.append(measure_shape(name, m, k, n, repeats=3)["aqs_speedup"])
    assert float(np.median(speedups)) >= 2.0, speedups


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="bit-exactness grid only (no timing); for CI")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()
    if args.smoke:
        check_exactness()
        print("fast-path smoke: fast == sliced on the full "
              f"w_bits x lo_bits/tracked grid ({len(W_BITS) * len(LO_BITS)} "
              f"AQS + {len(W_BITS) * 3} Sibia combinations)")
        sys.exit(0)
    run(repeats=args.repeats)
