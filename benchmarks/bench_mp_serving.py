"""Bench E4 — process-backed serving vs the thread backend.

The thread backend's concurrency ceiling is the GIL: engine batches are
pure-Python numpy orchestration, so thread workers interleave instead of
overlapping and multi-core machines stay mostly idle.
``ModelServer(backend="process")`` moves deployment execution into
spawned, BLAS-pinned worker processes — sessions rehydrated per worker
from a pickle-free plan-store snapshot, activations framed through
shared-memory rings — so independent deployments execute on truly
separate cores.

This bench drains identical multi-deployment request streams through both
backends under a worker-count sweep:

* every (backend, workers) point is asserted **bit-exact** against a
  serial per-session replay before any timing is trusted (quantized
  engines accumulate in integers, so crossing a process boundary must not
  change a single bit);
* throughput, per-point speedup vs that backend's ``workers=1`` pass, and
  the process-vs-thread ratio at equal workers are reported;
* the process pool's transport counters (ring frames vs pipe fallbacks,
  crashes) ride along in the JSON so a perf regression that silently
  degrades to pickled transport is visible;
* a memory sweep (``run_memory``) loads the same plan store into worker
  sweeps twice — eagerly rehydrated vs mmap'd from the read-only blob
  sidecar (the process-backend default) — and records per-worker RSS and
  PSS.  Plan bytes live on disk once; with mmap they live in page cache
  once too, so the summed PSS curve must grow sublinearly in the worker
  count while the eager curve pays a private plan copy per worker.

The >= 1.8x process-backend gate (`test_process_backend_speedup`) needs
free cores and exclusive use of them: it only binds on >= 4 cores with
``REPRO_RUN_THROUGHPUT_GATE=1`` (CI's dedicated serial step sets it).
Single-core runners still emit numbers and the exactness asserts bind
everywhere.

Emits a table to ``results/mp_serving.txt`` and machine-readable numbers
to ``results/mp_serving.json``.

Run:        PYTHONPATH=src python benchmarks/bench_mp_serving.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_mp_serving.py --smoke
(small stream; keeps the bit-exactness asserts and writes
``results/mp_serving_smoke.json`` for upload)
"""

import argparse
import os
import pathlib
import shutil
import tempfile
import time

from _util import (blas_report, emit, emit_json, pin_blas_threads,
                   throughput_gate_or_skip)

# Cap the BLAS pools before numpy loads them: the whole point of the
# comparison is scheduling-tier parallelism, and an unpinned BLAS would
# hand the thread backend hidden multi-core GEMMs.  Worker processes pin
# themselves (the pool exports the caps before each spawn).
pin_blas_threads(1)

import numpy as np  # noqa: E402  (after pin_blas_threads, deliberately)

from repro.core.pipeline import PtqConfig  # noqa: E402
from repro.engine import PanaceaSession  # noqa: E402
from repro.eval.tables import format_table  # noqa: E402
from repro.models.zoo import build_proxy, proxy_batches  # noqa: E402
from repro.serve import (BatchPolicy, ModelServer, PlanStore,  # noqa: E402
                         ProcessWorkerPool)

MODEL = "bert_base"
WORKER_SWEEP = (1, 2, 4)
BACKENDS = ("thread", "process")
MEMORY_MODES = ("eager", "mmap")
GATE_MIN_SPEEDUP = 1.8
GATE_MIN_CORES = 4


def _reference_outputs(n_deployments, streams, seed=0):
    """Serial per-session replay — the bit-exactness oracle.

    Construction mirrors ``ModelServer.deploy_proxy`` exactly (same build
    seed, same calibration stream), so any output difference is the
    backend's fault, never the model's.
    """
    reference = []
    for i, stream in enumerate(streams):
        model, _ = build_proxy(MODEL, seed=seed + i)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + i + 1))
        reference.append([session.run(x) for x in stream])
    return [out for outs in reference for out in outs]


def run_backend(backend, workers, streams, reference, seed=0):
    """Drain the streams through one (backend, workers) configuration.

    Deployment/registration cost (process spawn, snapshot, per-worker
    rehydration) is reported separately from the drain wall time: it is a
    once-per-restart cost, and folding it into throughput would let a
    slow spawn masquerade as a serving regression (or vice versa).
    """
    n_requests = sum(len(s) for s in streams)
    policy = BatchPolicy(max_batch=max(len(s) for s in streams),
                         max_delay_s=0.0)
    t0 = time.perf_counter()
    with ModelServer(policy, workers=workers, backend=backend) as server:
        for i in range(len(streams)):
            server.deploy_proxy(f"bert-{i}", MODEL, scheme="aqs",
                                seed=seed + i)
        deploy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        futures = [server.submit_async(f"bert-{i}", x)
                   for i, stream in enumerate(streams)
                   for x in stream]
        outputs = [f.result() for f in futures]
        wall_s = time.perf_counter() - t0
        proc_stats = (server.process_pool.stats()
                      if server.process_pool is not None else None)
    for got, expect in zip(outputs, reference):
        assert np.array_equal(got, expect), (
            f"backend={backend} workers={workers} output is not bit-exact "
            "vs serial replay")
    result = {
        "backend": backend,
        "workers": workers,
        "n_deployments": len(streams),
        "n_requests": n_requests,
        "deploy_s": deploy_s,
        "wall_s": wall_s,
        "throughput_rps": n_requests / wall_s,
    }
    if proc_stats is not None:
        result["process_pool"] = {
            "blas_threads": proc_stats["blas_threads"],
            "n_crashes": proc_stats["n_crashes"],
            "n_pipe_fallback": proc_stats["n_pipe_fallback"],
            "ring_bytes": proc_stats["ring_bytes"],
        }
    return result


def run_compare(n_deployments=3, n_requests=6, rows=2,
                workers_sweep=WORKER_SWEEP, backends=BACKENDS, seed=0):
    """Both backends under the worker sweep, bit-exact vs serial replay."""
    streams = [proxy_batches(MODEL, rows, n_requests, seed=seed + 20 + i)
               for i in range(n_deployments)]
    reference = _reference_outputs(n_deployments, streams, seed=seed)

    results = []
    baseline = {}  # backend -> workers=1 wall
    for backend in backends:
        for workers in workers_sweep:
            res = run_backend(backend, workers, streams, reference,
                              seed=seed)
            if backend not in baseline:
                baseline[backend] = res["wall_s"]
            res["speedup_vs_workers1"] = baseline[backend] / res["wall_s"]
            results.append(res)
    by_point = {(r["backend"], r["workers"]): r for r in results}
    for r in results:
        thread_twin = by_point.get(("thread", r["workers"]))
        r["vs_thread_same_workers"] = (
            thread_twin["wall_s"] / r["wall_s"]
            if thread_twin is not None else None)
    return {
        "model": MODEL,
        "cpu_count": os.cpu_count(),
        "blas": blas_report(),
        "n_deployments": n_deployments,
        "n_requests": n_deployments * n_requests,
        "rows": rows,
        "results": results,
    }


def run_memory(workers_sweep=WORKER_SWEEP, rows=2, seed=0):
    """Per-worker RSS/PSS of mmap'd vs eagerly rehydrated plan stores.

    Every worker needs the full plan set to serve.  An eager load
    (``load_kwargs={"mmap": False}``) rehydrates a private copy per
    process, so total memory grows linearly with the worker count.  The
    process-backend default maps the store's read-only blob sidecar into
    every worker instead: the plan bytes live once in page cache however
    many workers map them.

    Per-worker RSS still *counts* the shared mmap pages in each process
    (that is what resident means), so the sweep records PSS alongside —
    shared pages divided by their sharer count — and the summed-PSS curve
    is the one that must stay sublinear.  The store cost itself (npz +
    blob bytes) is reported once: it is the same file every worker maps.

    Every point serves ``2 x workers`` singleton batches first — faulting
    the mmap'd plan pages in on every worker and asserting each output
    bit-exact vs the parent session — so the measurement covers plans
    that were actually *used*, not merely mapped.
    """
    model, _ = build_proxy(MODEL, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + 1))
    tmp = tempfile.mkdtemp(prefix="repro-membench-")
    try:
        store = PlanStore(pathlib.Path(tmp) / f"{MODEL}.plans.npz")
        store.save(session, model_name=MODEL, seed=seed)
        blob = store.ensure_blob()
        store_bytes = {"npz": store.path.stat().st_size,
                       "blob": blob.stat().st_size}
        points = []
        for workers in workers_sweep:
            stream = proxy_batches(MODEL, rows, 2 * workers, seed=seed + 40)
            expected = [session.run(x) for x in stream]
            for mode in MEMORY_MODES:
                kwargs = {"mmap": False} if mode == "eager" else {}
                with ProcessWorkerPool(workers, blas_threads=1) as pool:
                    pool.load_deployment("bert", store.path,
                                         load_kwargs=kwargs)
                    futures = [pool.serve_async("bert", [x]) for x in stream]
                    for future, expect in zip(futures, expected):
                        outputs, _ = future.result()
                        assert np.array_equal(outputs[0], expect), (
                            f"memory sweep mode={mode} workers={workers} "
                            "output is not bit-exact vs parent session.run")
                    memory = [p["memory"] for p in pool.ping()]
                rss = [m["rss_kib"] for m in memory]
                pss = [m["pss_kib"] for m in memory]
                points.append({
                    "mode": mode,
                    "workers": workers,
                    "rss_kib": rss,
                    "pss_kib": pss,
                    "rss_total_kib": (sum(rss) if None not in rss else None),
                    "pss_total_kib": (sum(pss) if None not in pss else None),
                })
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "model": MODEL,
        "cpu_count": os.cpu_count(),
        "store_bytes": store_bytes,
        "modes": list(MEMORY_MODES),
        "points": points,
    }


def run(n_requests=8):
    payload = run_compare(n_requests=n_requests)
    payload["memory"] = run_memory()
    rows = [[r["backend"], r["workers"], r["throughput_rps"],
             r["speedup_vs_workers1"],
             r["vs_thread_same_workers"] or 1.0,
             r["deploy_s"],
             (r.get("process_pool") or {}).get("n_pipe_fallback", "-")]
            for r in payload["results"]]
    proc = [r for r in payload["results"] if r["backend"] == "process"]
    best = max(r["speedup_vs_workers1"] for r in proc) if proc else 0.0
    mem = payload["memory"]
    mem_rows = [[p["mode"], p["workers"],
                 p["rss_total_kib"] if p["rss_total_kib"] is not None
                 else "-",
                 p["pss_total_kib"] if p["pss_total_kib"] is not None
                 else "-"]
                for p in mem["points"]]
    plan_mib = sum(mem["store_bytes"].values()) / (1 << 20)
    emit("mp_serving", format_table(
        ["backend", "workers", "req/s", "speedup", "vs thread",
         "deploy (s)", "pipe fb"],
        rows,
        title=f"{MODEL} process- vs thread-backed serving "
              f"({payload['n_deployments']} deployments, "
              f"{payload['n_requests']} requests, {os.cpu_count()} cores; "
              f"best process speedup {best:.2f}x vs workers=1; outputs "
              "bit-exact at every point)") + "\n\n" + format_table(
        ["plan load", "workers", "sum RSS (KiB)", "sum PSS (KiB)"],
        mem_rows,
        title=f"worker memory, eager vs mmap'd plan store "
              f"({plan_mib:.1f} MiB on disk, counted once; PSS divides "
              "pages by sharer count — the mmap PSS curve is the "
              "sublinear one)"))
    emit_json("mp_serving", payload)
    return payload


def test_process_backend_bit_exact():
    """The non-negotiable invariant, under pytest (small stream).

    Every (backend, workers) point asserts bit-exactness against the
    serial replay inside ``run_backend`` — a process crossing that flips
    one bit fails here regardless of core count.
    """
    run_compare(n_deployments=2, n_requests=3, workers_sweep=(1, 2))


def test_mmap_plans_share_memory():
    """mmap'd plan stores must beat eager rehydration on summed PSS.

    The blob is ~56 MiB: with 2 workers, eager rehydration holds two
    private plan copies while mmap shares one set of page-cache pages, so
    demanding savings of at least *half* the blob leaves a wide margin
    for interpreter noise.  Unlike the wall-clock gates this does not
    need exclusive cores — memory accounting is contention-free — but it
    does need /proc PSS, so non-Linux hosts skip.
    """
    import pytest

    payload = run_memory(workers_sweep=(2,))
    by_mode = {p["mode"]: p for p in payload["points"]}
    eager, mmap = by_mode["eager"], by_mode["mmap"]
    if eager["pss_total_kib"] is None or mmap["pss_total_kib"] is None:
        pytest.skip("no /proc smaps_rollup PSS on this host")
    blob_kib = payload["store_bytes"]["blob"] // 1024
    assert mmap["pss_total_kib"] + blob_kib // 2 <= eager["pss_total_kib"], (
        f"mmap'd plans saved less than half the blob: "
        f"mmap sum PSS {mmap['pss_total_kib']} KiB vs "
        f"eager {eager['pss_total_kib']} KiB (blob {blob_kib} KiB)")


def test_process_backend_speedup():
    """The PR's perf criterion: backend='process' with workers=4 drains a
    4-deployment stream >= 1.8x faster than workers=1 on >= 4 cores.  The
    thread backend cannot pass this gate on pure-Python engine batches —
    that is the point.  Wall-clock gates cannot share cores with other
    test workers, so the gate is opt-in and CI runs it in the dedicated
    serial step; few-core hosts skip explicitly, naming their core count.
    The exactness asserts always ran in test_process_backend_bit_exact
    regardless."""
    throughput_gate_or_skip(min_cores=GATE_MIN_CORES,
                            purpose="process-parallel drains")
    payload = run_compare(n_deployments=4, n_requests=8,
                          workers_sweep=(1, 4), backends=("process",))
    best = max(r["speedup_vs_workers1"] for r in payload["results"])
    assert best >= GATE_MIN_SPEEDUP, [
        (r["backend"], r["workers"], r["speedup_vs_workers1"])
        for r in payload["results"]]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, exactness asserts + JSON only")
    parser.add_argument("--requests", type=int, default=8)
    args = parser.parse_args()
    if args.smoke:
        payload = run_compare(n_deployments=2, n_requests=4,
                              workers_sweep=(1, 2))
        payload["memory"] = run_memory(workers_sweep=(1, 2))
        emit_json("mp_serving_smoke", payload)
        proc = [r for r in payload["results"] if r["backend"] == "process"]
        best = max(r["speedup_vs_workers1"] for r in proc)
        fallbacks = sum(r["process_pool"]["n_pipe_fallback"] for r in proc)
        mem = {(p["mode"], p["workers"]): p["pss_total_kib"]
               for p in payload["memory"]["points"]}
        print("mp serving smoke: both backends bit-exact vs serial replay; "
              f"best process speedup {best:.2f}x vs workers=1 on "
              f"{os.cpu_count()} cores; {fallbacks} ring fallbacks; "
              f"2-worker sum PSS KiB mmap {mem.get(('mmap', 2))} vs eager "
              f"{mem.get(('eager', 2))}")
    else:
        run(n_requests=args.requests)
