"""Bench E3 — sharded pipeline-parallel serving vs serial execution.

A prepared model's layer chain runs end to end per request, so one request
occupies one thread for the whole chain even when cores sit idle.  The
shard subsystem splits the chain into cost-balanced stages and streams
micro-batches through them (stage *k* of batch *i* overlapping stage *k-1*
of batch *i+1*) — the software analogue of Panacea's ZPM -> DBS ->
AQS-GEMM -> PPU pipeline, whose cost model exists precisely to keep
heterogeneous stages busy.

This bench:

* auto-partitions the BERT-base proxy under measured per-layer costs and
  prints the stage split (plus the modeled-cost split for comparison);
* streams a fixed request set through a :class:`ShardedSession` under a
  depth sweep (``depth=1`` is the no-overlap pipeline; the *serial*
  baseline is plain ``session.run``), asserting every output bit-exact
  against the serial run before timing is trusted;
* reports wall time, throughput, and speedup vs serial per (stages,
  depth) point;
* repeats a depth sweep with the stages hosted in spawned worker
  *processes* (``run_process_stages``): the session is snapshotted to a
  plan store, rehydrated per worker mmap'd, and stage activations cross
  the process boundary over per-edge shared-memory rings — the same
  bit-exactness asserts bind, and the per-edge ring counters (frames vs
  pipe fallbacks) ride along in the JSON.

Pipeline overlap needs free cores: single-core runners still emit numbers
and the exactness asserts always bind, but the >= 1.3x throughput gate
(`test_pipeline_throughput_speedup`) only runs where >= 4 cores exist, in
CI's dedicated serial step.

Emits a table to ``results/pipeline.txt`` and machine-readable numbers to
``results/pipeline.json``.

Run:        PYTHONPATH=src python benchmarks/bench_pipeline.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke
(small stream; keeps the bit-exactness asserts and writes the JSON
artifact for upload)
"""

import argparse
import os
import pathlib
import shutil
import tempfile
import time

from _util import (blas_report, emit, emit_json, pin_blas_threads,
                   throughput_gate_or_skip)

# Cap the BLAS pools before numpy loads them — pipeline speedups must come
# from stage overlap, not from a multi-threaded GEMM hiding underneath.
pin_blas_threads(1)

import numpy as np  # noqa: E402  (after pin_blas_threads, deliberately)

from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.eval.tables import format_table
from repro.models.zoo import build_proxy, proxy_batches
from repro.shard import ShardedSession, auto_partition

MODEL = "bert_base"
STAGES = 4
DEPTHS = (1, 2, 4)
PROCESS_DEPTHS = (1, 2)
PROCESS_STAGES = 2
GATE_MIN_SPEEDUP = 1.3
GATE_MIN_CORES = 4


def _prepared_session(seed=0):
    model, _ = build_proxy(MODEL, seed=seed)
    session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
    session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + 1))
    return session


def _requests(n, rows, seed=0):
    return proxy_batches(MODEL, rows, n, seed=seed + 10)


def run_partition(seed=0):
    """Measured vs modeled stage splits of the same prepared session."""
    session = _prepared_session(seed=seed)
    sample = _requests(1, 2, seed=seed)[0]
    measured = auto_partition(session, STAGES, sample=sample, repeats=2)
    modeled = auto_partition(session, STAGES)
    return session, {
        "stages": STAGES,
        "measured": {"balance": measured.balance,
                     "stages": measured.summary()},
        "modeled": {"balance": modeled.balance,
                    "stages": modeled.summary()},
    }, measured


def run_pipeline(n_requests=16, rows=2, depths=DEPTHS, seed=0):
    """Depth sweep over one stage split, bit-exact vs serial ``run``.

    Every depth serves the identical request stream; ``depth=1`` runs the
    stages with no overlap (the pipeline-overhead floor) and the serial
    baseline runs ``session.run`` — the exact execution a non-sharded
    deployment performs.
    """
    session, partition, plan = run_partition(seed=seed)
    requests = _requests(n_requests, rows, seed=seed)

    t0 = time.perf_counter()
    expected = [session.run(x) for x in requests]
    serial_s = time.perf_counter() - t0

    results = []
    for depth in depths:
        fresh = _prepared_session(seed=seed)
        with ShardedSession(fresh, plan, depth=depth) as sharded:
            t0 = time.perf_counter()
            outputs = sharded.run_pipelined(requests)
            wall_s = time.perf_counter() - t0
            stage_stats = sharded.stage_stats()
        for got, expect in zip(outputs, expected):
            assert np.array_equal(got, expect), (
                f"depth={depth} pipelined output is not bit-exact vs "
                "serial session.run")
        results.append({
            "stages": plan.n_stages,
            "depth": depth,
            "n_requests": n_requests,
            "wall_s": wall_s,
            "throughput_rps": n_requests / wall_s,
            "speedup_vs_serial": serial_s / wall_s,
            "stage_exec_ms": [s["exec"]["mean_ms"]
                              for s in stage_stats["stages"]],
            "stage_stall_ms": [s["stall"]["mean_ms"]
                               for s in stage_stats["stages"]],
        })
    return {
        "model": MODEL,
        "cpu_count": os.cpu_count(),
        "blas": blas_report(),
        "n_requests": n_requests,
        "rows": rows,
        "serial_wall_s": serial_s,
        "partition": partition,
        "pipeline": results,
    }


def run_process_stages(n_requests=8, rows=2, depths=PROCESS_DEPTHS,
                       stages=PROCESS_STAGES, seed=0):
    """Depth sweep with the stages hosted in worker *processes*.

    The same prepared model is snapshotted to a plan store, the stage
    chain is split modeled-cost-wise, and a :class:`ShardedSession` over
    a :class:`ProcessWorkerPool` rehydrates each stage's slice in a
    spawned worker (mmap'd plans).  Activations hop stages over per-edge
    shared-memory rings; every output is asserted bit-exact against the
    parent session's serial ``run`` — crossing a process boundary must
    not change a single bit — and the per-edge ring counters ride along
    so a silent degrade to pickled pipe transport is visible.
    """
    from repro.serve import PlanStore, ProcessWorkerPool

    session = _prepared_session(seed=seed)
    plan = auto_partition(session, stages)
    requests = _requests(n_requests, rows, seed=seed)

    t0 = time.perf_counter()
    expected = [session.run(x) for x in requests]
    serial_s = time.perf_counter() - t0

    tmp = tempfile.mkdtemp(prefix="repro-pipebench-")
    results = []
    try:
        store = PlanStore(pathlib.Path(tmp) / f"{MODEL}.plans.npz")
        store.save(session, model_name=MODEL, seed=seed)
        with ProcessWorkerPool(stages, blas_threads=1) as pool:
            for depth in depths:
                with ShardedSession(session, plan, pool=pool, depth=depth,
                                    store_path=store.path,
                                    name=f"bench-d{depth}") as sharded:
                    t0 = time.perf_counter()
                    outputs = sharded.run_pipelined(requests)
                    wall_s = time.perf_counter() - t0
                    edges = sharded.stage_stats()["stage_edges"]
                for got, expect in zip(outputs, expected):
                    assert np.array_equal(got, expect), (
                        f"process stages depth={depth} pipelined output is "
                        "not bit-exact vs serial session.run")
                results.append({
                    "stages": plan.n_stages,
                    "depth": depth,
                    "n_requests": n_requests,
                    "wall_s": wall_s,
                    "throughput_rps": n_requests / wall_s,
                    "speedup_vs_serial": serial_s / wall_s,
                    "ring_frames": sum(e["n_frames"] for e in edges),
                    "pipe_fallbacks": sum(e["n_pipe_fallback"]
                                          for e in edges),
                    "stage_edges": edges,
                })
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "model": MODEL,
        "cpu_count": os.cpu_count(),
        "stages": stages,
        "serial_wall_s": serial_s,
        "process_pipeline": results,
    }


def run(n_requests=16):
    payload = run_pipeline(n_requests=n_requests)
    payload["process_stages"] = run_process_stages(
        n_requests=max(4, n_requests // 2))
    part = payload["partition"]
    prows = [[r["stage"], " ".join(r["segments"]), r["n_layers"],
              r["cost_share"]] for r in part["measured"]["stages"]]
    rows = [[r["stages"], r["depth"], r["throughput_rps"],
             r["speedup_vs_serial"],
             max(r["stage_exec_ms"]), max(r["stage_stall_ms"])]
            for r in payload["pipeline"]]
    best = max(r["speedup_vs_serial"] for r in payload["pipeline"])
    proc = payload["process_stages"]
    proc_rows = [[r["stages"], r["depth"], r["throughput_rps"],
                  r["speedup_vs_serial"], r["ring_frames"],
                  r["pipe_fallbacks"]]
                 for r in proc["process_pipeline"]]
    emit("pipeline", format_table(
        ["stage", "segments", "layers", "cost share"], prows,
        title=f"{MODEL} measured stage split "
              f"(balance {part['measured']['balance']:.2f}; modeled "
              f"balance {part['modeled']['balance']:.2f})") + "\n\n" +
        format_table(
            ["stages", "depth", "req/s", "speedup", "max stage ms",
             "max stall ms"], rows,
            title=f"pipelined serving vs serial session.run "
                  f"({payload['n_requests']} requests, {os.cpu_count()} "
                  f"cores, best {best:.2f}x; outputs bit-exact at every "
                  "depth)") + "\n\n" +
        format_table(
            ["stages", "depth", "req/s", "speedup", "ring frames",
             "pipe fb"], proc_rows,
            title="process-hosted stages (plan-store rehydration, "
                  "activations over shm rings; outputs bit-exact at "
                  "every depth)"))
    emit_json("pipeline", payload)
    return payload


def test_pipelined_bit_exact():
    """The non-negotiable invariant, under pytest (small stream)."""
    run_pipeline(n_requests=4, depths=(1, 2))


def test_process_stages_bit_exact():
    """Process-hosted stages must match serial ``run`` bit for bit.

    Small stream, both depths; the asserts live inside
    ``run_process_stages`` and bind regardless of core count — and the
    stream must actually have crossed the rings, not just computed
    parent-side.
    """
    payload = run_process_stages(n_requests=3, depths=(1, 2))
    for point in payload["process_pipeline"]:
        assert point["ring_frames"] + point["pipe_fallbacks"] >= \
            point["n_requests"]


def test_pipeline_throughput_speedup():
    """The PR's throughput criterion: >= 1.3x at depth >= 2 on >= 4 cores
    vs serial session.run.  Wall-clock gates cannot share cores with other
    test workers, so the gate is opt-in and CI runs it in the dedicated
    serial step; few-core hosts skip explicitly, naming their core count.
    The exactness asserts always ran in test_pipelined_bit_exact
    regardless."""
    throughput_gate_or_skip(min_cores=GATE_MIN_CORES,
                            purpose="pipeline stage overlap")
    payload = run_pipeline(n_requests=24, depths=(1, 4))
    overlapped = [r for r in payload["pipeline"] if r["depth"] >= 2]
    best = max(r["speedup_vs_serial"] for r in overlapped)
    assert best >= GATE_MIN_SPEEDUP, [
        (r["depth"], r["speedup_vs_serial"]) for r in payload["pipeline"]]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, exactness asserts + JSON only")
    parser.add_argument("--requests", type=int, default=16)
    args = parser.parse_args()
    if args.smoke:
        payload = run_pipeline(n_requests=6, depths=(1, 2))
        payload["process_stages"] = run_process_stages(n_requests=4)
        emit_json("pipeline_smoke", payload)
        best = max(r["speedup_vs_serial"] for r in payload["pipeline"])
        proc = payload["process_stages"]["process_pipeline"]
        frames = sum(r["ring_frames"] for r in proc)
        fallbacks = sum(r["pipe_fallbacks"] for r in proc)
        print(f"pipeline smoke: {payload['partition']['stages']}-stage "
              f"split balance "
              f"{payload['partition']['measured']['balance']:.2f}; all "
              f"depths bit-exact vs serial; best {best:.2f}x on "
              f"{os.cpu_count()} cores; process stages bit-exact too "
              f"({frames} ring frames, {fallbacks} pipe fallbacks)")
    else:
        run(n_requests=args.requests)
