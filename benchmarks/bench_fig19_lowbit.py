"""Bench F19 — Fig. 19: 4-bit OPTQ weights on OPT-2.7B."""

from _util import emit

from repro.eval.experiments import fig19_lowbit


def test_fig19_lowbit(benchmark):
    result = benchmark.pedantic(fig19_lowbit.run, rounds=1, iterations=1)
    emit("fig19_lowbit", result.format())

    perf = result.perf
    # Panacea is faster and cheaper than Sibia at both widths, and the gap
    # widens at 4-bit (DTP engages with the halved weight footprint)
    for bits in (7, 4):
        assert (perf[("panacea", bits)]["latency_ms"]
                < perf[("sibia", bits)]["latency_ms"])
        assert (perf[("panacea", bits)]["energy_mj"]
                < perf[("sibia", bits)]["energy_mj"])
    gain7 = (perf[("sibia", 7)]["latency_ms"]
             / perf[("panacea", 7)]["latency_ms"])
    gain4 = (perf[("sibia", 4)]["latency_ms"]
             / perf[("panacea", 4)]["latency_ms"])
    # Panacea's latency edge survives at 4-bit (in our DRAM-bound regime
    # the edge compresses; the paper's compute-bound runs amplify it)
    assert gain4 > gain7 * 0.85
    # 4-bit weights cut everyone's energy vs 7-bit; Panacea drops to ~0.56x
    # of Sibia as the DTP engages (paper's headline for this figure)
    assert (perf[("panacea", 4)]["energy_mj"]
            < perf[("panacea", 7)]["energy_mj"])
    assert (perf[("panacea", 4)]["energy_mj"]
            < 0.7 * perf[("sibia", 4)]["energy_mj"])
    # OPTQ keeps 4-bit perplexity in the same band as (or below) strong
    # per-channel RTN; its decisive win is on the layerwise reconstruction
    # objective (see tests/test_quant_optq.py)
    assert result.ppl["optq_w4"] <= result.ppl["rtn_w4"] * 1.10


if __name__ == "__main__":
    print(fig19_lowbit.run().format())
