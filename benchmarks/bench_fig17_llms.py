"""Bench F17 — Fig. 17: LLM energy efficiency and perplexity."""

from _util import emit

from repro.eval.experiments import fig17_llms


def test_fig17_llms(benchmark):
    result = benchmark.pedantic(fig17_llms.run, rounds=1, iterations=1)
    emit("fig17_llms", result.format())

    for row in result.rows:
        # Panacea ahead of Sibia and the dense designs on every LLM
        assert row.panacea_vs_sibia > 1.0, row.model
        assert row.efficiency["panacea"] > row.efficiency["simd"]
        # quantized PPL stays in the same regime as FP (no blow-up)
        assert row.ppl_panacea < 2.5 * row.ppl_fp
        # asymmetric Panacea quality >= symmetric Sibia quality
        assert row.ppl_panacea <= row.ppl_sibia * 1.10


if __name__ == "__main__":
    print(fig17_llms.run().format())
