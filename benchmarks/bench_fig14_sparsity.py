"""Bench F14 — Fig. 14: per-layer and per-model HO vector sparsity."""

import numpy as np
from _util import emit

from repro.eval.experiments import fig14_sparsity


def test_fig14_sparsity(benchmark):
    result = benchmark.pedantic(fig14_sparsity.run, rounds=1, iterations=1)
    emit("fig14_sparsity", result.format())

    rows = result.part_a
    # (a) the previous bit-slice GEMM finds almost nothing on most layers...
    zero_skip = [r.previous_bitslice for r in rows]
    assert np.median(zero_skip) < 0.3
    # ...except the GELU-fed MLP.FC2, which piles values near code 0
    fc2 = [r for r in rows if "fc2" in r.layer][0]
    assert fc2.previous_bitslice > 0.3
    # the AQS-GEMM unlocks sparsity on every layer, ZPM/DBS never hurt
    for r in rows:
        assert r.aqs_full >= 0.3
        assert r.aqs_full >= r.aqs_plain - 0.05

    # (b) Panacea's sparsity is comparable to Sibia's symmetric sparsity
    for model, methods in result.part_b.items():
        rho_w_p, rho_x_p = methods["panacea"]
        rho_w_s, rho_x_s = methods["sibia"]
        assert abs(rho_w_p - rho_w_s) < 0.15   # same SBR weights
        assert rho_x_p > rho_x_s - 0.15


if __name__ == "__main__":
    print(fig14_sparsity.run().format())
