"""Bench E5 — KV-cached incremental decode vs full-prefix recompute.

Autoregressive serving without a KV cache re-forwards the entire prefix for
every generated token: step ``t`` costs ``O(t)`` GEMM columns, a ``T``-token
generation costs ``O(T^2)``.  The incremental path
(:class:`~repro.engine.session.DecodeSession` over
``CausalLM.forward_step``) caches each layer's K/V once and feeds exactly
one new column per step — ``O(T)`` total — while producing bit-identical
logits on the quantized engines (integer-valued float64 accumulation with
in-order einsum reductions is association-proof).

Four sections:

* **exactness** — every engine (aqs, sibia, int8_dense, fp32) decodes
  step-by-step and every step's logits are compared against a one-shot
  forward of the same prefix: strictly bit-exact for the quantized
  engines, allclose (1e-12) for the float reference (BLAS matmul is not
  row-consistent, the documented fp32 carve-out);
* **sweep** — generation length ``T`` in {32, 64, 128, 256}: KV-stepped
  decode vs the full-recompute baseline, same greedy tokens asserted,
  steps/sec and speedup reported.  The PR's perf criterion gates here:
  >= 3x steps/sec at T=128;
* **continuous batching** — a heavy-tail prompt/generation-length mix
  served by :class:`~repro.serve.batching.DecodeBatcher` under
  ``refill='continuous'`` (a finishing slot is refilled the same step)
  vs ``refill='drain'`` (static batching: admit only when the whole
  batch finished).  Token outputs are asserted identical — per-ticket
  determinism makes scheduling invisible to results — then continuous
  must win on engine steps and wall clock;
* **prefix cache** — a prompt stream sharing long common prefixes,
  replayed against a :class:`~repro.serve.cache.PrefixKVCache`-enabled
  batcher: the warm pass seeds prompts from cached K/V instead of
  prefilling them.

Emits a table to ``results/decode.txt`` plus machine-readable numbers to
``results/decode.json`` and the consolidated perf-trajectory record
``results/BENCH_decode.json``.

Run:        PYTHONPATH=src python benchmarks/bench_decode.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_decode.py --smoke
(the smoke run shrinks T and the request mix, keeps every exactness
assert, and still writes the JSON artifacts for upload)
"""

import argparse
import os
import time

from _util import (blas_report, emit, emit_json, pin_blas_threads,
                   throughput_gate_or_skip)

# Cap the BLAS pools before numpy loads them: the O(T) vs O(T^2) comparison
# must measure the algorithm, not hidden BLAS parallelism.
pin_blas_threads(1)

import numpy as np  # noqa: E402  (after pin_blas_threads, deliberately)

from repro.core.pipeline import PtqConfig
from repro.engine import DecodeSession, PanaceaSession
from repro.eval.tables import format_table
from repro.models.zoo import build_proxy, proxy_batches, proxy_prompts
from repro.serve import DecodeBatcher, DecodePolicy, PrefixKVCache

MODEL = "gpt2"
SCHEMES = ("aqs", "sibia", "int8_dense", "fp32")
T_SWEEP = (32, 64, 128, 256)
PROMPT_LEN = 8


def _session(scheme="aqs", seed=0, model=MODEL):
    model_obj, _ = build_proxy(model, seed=seed)
    session = PanaceaSession(model_obj, PtqConfig.for_scheme(scheme))
    session.calibrate(proxy_batches(model, 2, 2, seed=seed + 1))
    return session


def _prompt(length, seed=0, vocab=512):
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab, size=length, dtype=np.int64)


def full_recompute_generate(session, prompt, max_new):
    """The O(T^2) baseline: re-forward the whole prefix every step."""
    tokens = [int(t) for t in prompt]
    out = []
    while len(out) < max_new:
        logits = session.run(np.asarray([tokens], dtype=np.int64))[0, -1]
        tok = int(np.argmax(logits))
        out.append(tok)
        tokens.append(tok)
    return out


def run_exactness(schemes=SCHEMES, n_new=10, prompt_len=6, seed=0):
    """Step-decode logits vs one-shot forward, per engine.

    The non-negotiable invariant: caching K/V must never change a logit.
    Quantized engines compare with ``array_equal`` (integer-valued float64
    accumulation is exact under the in-order einsum reductions); the fp32
    reference compares allclose at 1e-12 — plain float BLAS matmul is not
    row-consistent, the repo's documented carve-out.
    """
    results = {}
    for scheme in schemes:
        session = _session(scheme, seed=seed)
        decoder = DecodeSession(session)
        prompt = _prompt(prompt_len, seed=seed + 3)
        step_logits = [decoder.prefill(prompt)]
        next_tok = decoder.sample(step_logits[-1])
        for _ in range(n_new - 1):
            step_logits.append(decoder.step(next_tok))
            next_tok = decoder.sample(step_logits[-1])
        # Reference: one-shot forward over each prefix the decoder saw.
        reference = _session(scheme, seed=seed)
        exact = True
        max_err = 0.0
        for i, got in enumerate(step_logits):
            ids = np.asarray([decoder.tokens[:prompt_len + i]],
                             dtype=np.int64)
            expect = reference.run(ids)[0, -1]
            if scheme == "fp32":
                assert np.allclose(got, expect, rtol=1e-12, atol=1e-12), (
                    f"{scheme}: step {i} logits diverged from one-shot")
                max_err = max(max_err,
                              float(np.max(np.abs(got - expect))))
                exact = exact and np.array_equal(got, expect)
            else:
                assert np.array_equal(got, expect), (
                    f"{scheme}: step {i} logits are not bit-exact vs "
                    "one-shot forward")
        results[scheme] = {
            "n_steps": len(step_logits),
            "bit_exact": bool(exact) if scheme == "fp32" else True,
            "comparison": "allclose(1e-12)" if scheme == "fp32"
                          else "array_equal",
            "max_abs_err": max_err,
        }
    return results


def run_sweep(ts=T_SWEEP, scheme="aqs", seed=0):
    """KV-stepped decode vs full-prefix recompute across generation length.

    Both paths generate greedily from the same prompt and must produce the
    identical token sequence before the timing is trusted.
    """
    results = []
    for t_new in ts:
        prompt = _prompt(PROMPT_LEN, seed=seed + 5)

        session_inc = _session(scheme, seed=seed)
        decoder = DecodeSession(
            session_inc, capacity=PROMPT_LEN + t_new)
        t0 = time.perf_counter()
        inc_tokens = decoder.generate(prompt, t_new)
        inc_s = time.perf_counter() - t0

        session_full = _session(scheme, seed=seed)
        t0 = time.perf_counter()
        full_tokens = full_recompute_generate(session_full, prompt, t_new)
        full_s = time.perf_counter() - t0

        assert inc_tokens == full_tokens, (
            f"T={t_new}: KV-stepped tokens diverged from full recompute")
        results.append({
            "t_new": t_new,
            "prompt_len": PROMPT_LEN,
            "incremental_s": inc_s,
            "full_recompute_s": full_s,
            "incremental_steps_per_s": t_new / inc_s,
            "full_steps_per_s": t_new / full_s,
            "speedup": full_s / inc_s,
        })
    return results


def _heavy_tail_workload(n_requests, seed=0):
    """Ragged prompts plus a matching heavy-tail generation-length mix."""
    prompts = proxy_prompts(MODEL, n_requests, min_len=4, max_len=24,
                            heavy_tail=True, seed=seed + 11)
    rng = np.random.default_rng(seed + 13)
    logs = rng.uniform(np.log(4), np.log(48), size=n_requests)
    max_new = np.clip(np.exp(logs).astype(np.int64), 4, 48)
    return prompts, [int(m) for m in max_new]


def _serve_decode(refill, prompts, max_new, max_batch=4, seed=0):
    """One DecodeBatcher pass over the workload under one refill policy."""
    session = _session("aqs", seed=seed)
    policy = DecodePolicy(max_batch=max_batch, max_new_tokens=max(max_new),
                          refill=refill, seed=seed)
    batcher = DecodeBatcher(session, policy)
    t0 = time.perf_counter()
    tickets = [batcher.submit(p, max_new_tokens=m)
               for p, m in zip(prompts, max_new)]
    batcher.drain()
    wall_s = time.perf_counter() - t0
    outputs = [t.result() for t in tickets]
    stats = batcher.stats()
    return {
        "refill": refill,
        "outputs": outputs,
        "wall_s": wall_s,
        "n_steps": stats["n_steps"],
        "n_tokens": stats["n_tokens"],
        "tokens_per_s": stats["n_tokens"] / wall_s,
        "mean_step_width": stats["mean_step_width"],
        "peak_active": stats["peak_active"],
    }


def run_continuous(n_requests=24, max_batch=4, seed=0):
    """Continuous vs static (drain) batching on a heavy-tail mix.

    Per-ticket determinism (greedy sampling, per-ticket rng) makes the
    scheduling policy invisible to outputs — asserted token-identical —
    so the only difference left is efficiency: continuous refills a
    finishing slot the same step and must win on engine steps.
    """
    prompts, max_new = _heavy_tail_workload(n_requests, seed=seed)
    cont = _serve_decode("continuous", prompts, max_new,
                         max_batch=max_batch, seed=seed)
    drain = _serve_decode("drain", prompts, max_new,
                          max_batch=max_batch, seed=seed)
    for a, b in zip(cont.pop("outputs"), drain.pop("outputs")):
        assert np.array_equal(a, b), (
            "continuous vs drain outputs diverged — scheduling leaked "
            "into results")
    assert cont["n_steps"] <= drain["n_steps"], (
        f"continuous took {cont['n_steps']} steps vs drain's "
        f"{drain['n_steps']} — refill is not helping")
    return {
        "n_requests": n_requests,
        "max_batch": max_batch,
        "continuous": cont,
        "drain": drain,
        "step_reduction": 1.0 - cont["n_steps"] / drain["n_steps"],
        "speedup": drain["wall_s"] / cont["wall_s"],
    }


def run_prefix_cache(n_requests=8, prefix_len=16, suffix_len=4,
                     max_new=8, seed=0):
    """Multi-turn prompt stream against a prefix-cache-enabled batcher.

    The cache matches when a *cached* prompt is a proper prefix of a new
    one — the multi-turn shape: the first round decodes a shared
    ``prefix_len``-token stem (populating the cache), every later prompt
    extends that stem with a distinct suffix and seeds the stem's K/V
    instead of prefilling it.
    """
    stem = _prompt(prefix_len, seed=seed + 17)
    rng = np.random.default_rng(seed + 19)
    followups = [np.concatenate([stem,
                                 rng.integers(0, 512, size=suffix_len,
                                              dtype=np.int64)])
                 for _ in range(n_requests)]

    def _pass(cache_bytes):
        session = _session("aqs", seed=seed)
        policy = DecodePolicy(max_batch=4, max_new_tokens=max_new,
                              prefix_cache_bytes=cache_bytes, seed=seed)
        batcher = DecodeBatcher(session, policy)
        t0 = time.perf_counter()
        first = batcher.submit(stem)          # round 1: cache the stem
        batcher.drain()
        tickets = [batcher.submit(p) for p in followups]
        batcher.drain()
        wall_s = time.perf_counter() - t0
        return ([first.result()] + [t.result() for t in tickets],
                wall_s, batcher.stats())

    cold_outputs, cold_s, _ = _pass(0)
    warm_outputs, warm_s, stats = _pass(64 << 20)
    for a, b in zip(cold_outputs, warm_outputs):
        assert np.array_equal(a, b), (
            "prefix-cache seeding changed the generated tokens")
    pc = stats["prefix_cache"]
    assert pc["seeded_tokens"] > 0, "no prompt tokens were seeded"
    return {
        "n_requests": n_requests,
        "prefix_len": prefix_len,
        "suffix_len": suffix_len,
        "uncached_wall_s": cold_s,
        "cached_wall_s": warm_s,
        "hits": pc["hits"],
        "misses": pc["misses"],
        "seeded_tokens": pc["seeded_tokens"],
        "hit_rate": pc["hits"] / max(pc["hits"] + pc["misses"], 1),
    }


def run(ts=T_SWEEP, n_requests=24):
    exact = run_exactness()
    sweep = run_sweep(ts=ts)
    continuous = run_continuous(n_requests=n_requests)
    prefix = run_prefix_cache()
    payload = {"model": MODEL, "cpu_count": os.cpu_count(),
               "blas": blas_report(), "exactness": exact, "sweep": sweep,
               "continuous": continuous, "prefix_cache": prefix}
    rows = [[r["t_new"], r["incremental_steps_per_s"], r["full_steps_per_s"],
             r["speedup"]] for r in sweep]
    best = max(r["speedup"] for r in sweep)
    cont, drain = continuous["continuous"], continuous["drain"]
    emit("decode", format_table(
        ["T (new tokens)", "KV steps/s", "recompute steps/s", "speedup"],
        rows,
        title=f"{MODEL}/aqs incremental decode vs full-prefix recompute "
              f"(prompt {PROMPT_LEN}, best {best:.1f}x; greedy tokens "
              "identical, per-step logits bit-exact on quantized engines)")
        + "\n\n" + format_table(
            ["refill", "engine steps", "tok/s", "step width", "wall (ms)"],
            [[cont["refill"], cont["n_steps"], cont["tokens_per_s"],
              cont["mean_step_width"], cont["wall_s"] * 1e3],
             [drain["refill"], drain["n_steps"], drain["tokens_per_s"],
              drain["mean_step_width"], drain["wall_s"] * 1e3]],
            title=f"continuous vs static batching, heavy-tail mix "
                  f"({continuous['n_requests']} requests, max_batch "
                  f"{continuous['max_batch']}: continuous saves "
                  f"{continuous['step_reduction']:.0%} of engine steps, "
                  f"{continuous['speedup']:.2f}x wall; outputs identical)")
        + f"\n\nprefix cache: {prefix['hits']} hits / "
          f"{prefix['hits'] + prefix['misses']} lookups on a shared "
          f"{prefix['prefix_len']}-token stem, {prefix['seeded_tokens']} "
          "prompt tokens seeded from cached K/V instead of prefilled")
    emit_json("decode", payload)
    emit_json("BENCH_decode", _trajectory(payload))
    return payload


def _trajectory(payload):
    """The consolidated perf-trajectory record: one flat dict per run."""
    gate = next((r for r in payload["sweep"] if r["t_new"] >= 128),
                payload["sweep"][-1])
    return {
        "bench": "decode",
        "model": payload["model"],
        "cpu_count": payload["cpu_count"],
        "kv_speedup_at_T": {str(r["t_new"]): r["speedup"]
                            for r in payload["sweep"]},
        "gate_t_new": gate["t_new"],
        "gate_speedup": gate["speedup"],
        "gate_threshold": 3.0,
        "continuous_step_reduction":
            payload["continuous"]["step_reduction"],
        "continuous_speedup": payload["continuous"]["speedup"],
        "prefix_seeded_tokens": payload["prefix_cache"]["seeded_tokens"],
        "prefix_hit_rate": payload["prefix_cache"]["hit_rate"],
        "exact_engines": sorted(payload["exactness"]),
    }


def test_decode_step_bit_exact():
    """Every engine's step decode matches one-shot forwards (small run)."""
    run_exactness(n_new=6, prompt_len=4)


def test_decode_continuous_matches_drain():
    """Scheduling must never leak into outputs (asserted inside)."""
    run_continuous(n_requests=8)


def test_prefix_cache_seeding_is_exact():
    """Seeded decodes produce the same tokens as cold ones (asserted
    inside), and at least one prompt actually seeded."""
    run_prefix_cache(n_requests=4, prefix_len=10, suffix_len=3, max_new=4)


def test_kv_decode_speedup():
    """The PR's perf criterion: >= 3x steps/sec at T=128 vs recompute.

    Wall-clock gates are opt-in (they need uncontended cores) and skip
    explicitly on few-core hosts; the exactness asserts above always run
    regardless.
    """
    throughput_gate_or_skip(min_cores=4, purpose="a stable KV baseline")
    results = run_sweep(ts=(128,))
    assert results[0]["speedup"] >= 3.0, results


def test_continuous_beats_static_on_heavy_tail():
    """Continuous refill must beat drain on wall clock for skewed mixes."""
    throughput_gate_or_skip(min_cores=4, purpose="a stable decode baseline")
    result = run_continuous(n_requests=24)
    assert result["speedup"] > 1.0, result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small T sweep, exactness asserts + JSON only")
    args = parser.parse_args()
    if args.smoke:
        exact = run_exactness(n_new=6, prompt_len=4)
        sweep = run_sweep(ts=(16, 32))
        continuous = run_continuous(n_requests=8)
        prefix = run_prefix_cache(n_requests=4, prefix_len=10,
                                  suffix_len=3, max_new=4)
        payload = {"model": MODEL, "cpu_count": os.cpu_count(),
                   "blas": blas_report(), "exactness": exact,
                   "sweep": sweep, "continuous": continuous,
                   "prefix_cache": prefix}
        emit_json("decode_smoke", payload)
        print("decode smoke: step logits bit-exact on quantized engines "
              "(fp32 allclose); KV vs recompute "
              f"{max(r['speedup'] for r in sweep):.1f}x at T=32; "
              f"continuous saves {continuous['step_reduction']:.0%} of "
              f"engine steps ({continuous['speedup']:.2f}x wall); "
              f"{prefix['seeded_tokens']} prompt tokens prefix-seeded")
    else:
        run()
