"""Bench F18 — Fig. 18: decoupling quantization scheme from HW benefit."""

from _util import emit

from repro.eval.experiments import fig18_decoupling


def test_fig18_decoupling(benchmark):
    result = benchmark.pedantic(fig18_decoupling.run, rounds=1, iterations=1)
    emit("fig18_decoupling", result.format())

    # (a) symmetric and asymmetric modes cost Panacea about the same
    a = result.part_a
    ratio = a["asymmetric"]["tops_per_watt"] / a["symmetric"]["tops_per_watt"]
    assert 0.9 < ratio < 1.15
    # but asymmetric quantization gives equal-or-better quality
    assert a["asymmetric"]["ppl"] <= a["symmetric"]["ppl"] * 1.05

    # (b) the AQS-GEMM clearly beats zero-only skipping
    full = result.part_b["zero+nonzero (AQS-GEMM)"]
    zero = result.part_b["zero-only [53]-style"]
    assert full["tops"] / zero["tops"] > 1.5
    assert full["tops_per_watt"] / zero["tops_per_watt"] > 1.25


if __name__ == "__main__":
    print(fig18_decoupling.run().format())
