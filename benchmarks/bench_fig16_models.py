"""Bench F16 — Fig. 16: efficiency/throughput/accuracy across models."""

from _util import emit

from repro.eval.experiments import fig16_models


def test_fig16_models(benchmark):
    result = benchmark.pedantic(fig16_models.run, rounds=1, iterations=1)
    emit("fig16_models", result.format())

    for model in result.efficiency:
        eff = result.efficiency[model]
        thr = result.throughput[model]
        # Panacea leads every model on both axes; Sibia second among
        # sparsity-aware designs
        assert eff["panacea"] > eff["sibia"] > min(eff["simd"], eff["sa_ws"])
        assert thr["panacea"] >= max(thr.values()) * 0.999
    # asymmetric Panacea's quality loss tracks or beats symmetric Sibia's.
    # Proxy-scale classifiers have a 1-2 point noise floor (one flipped
    # prediction), so the comparison allows that margin.
    wins = sum(1 for losses in result.accuracy_loss.values()
               if losses["aqs"] <= losses["sibia"] + 2.5)
    assert wins >= len(result.accuracy_loss) - 1


if __name__ == "__main__":
    print(fig16_models.run().format())
