"""Bench K0 — raw functional-kernel performance (extra, not a paper figure).

Times the NumPy AQS-GEMM against the dense integer GEMM and reports the
measured MAC reduction (the paper's headline "61% fewer MACs than dense").
"""

import numpy as np
from _util import emit

from repro.core.aqs_gemm import AqsGemmConfig, aqs_gemm
from repro.eval.tables import PaperClaim, format_claims


def _operands(m=256, k=1024, n=128, seed=0):
    rng = np.random.default_rng(seed)
    w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 4), -64, 63).astype(int)
    zp = 168
    x = np.clip(np.rint(rng.standard_t(4, (k, n)) * 4 + zp), 0,
                255).astype(np.int64)
    return w, x, zp


def test_aqs_gemm_kernel(benchmark):
    w, x, zp = _operands()
    config = AqsGemmConfig(count_ops=False)
    result = benchmark(aqs_gemm, w, x, zp, config)
    assert np.array_equal(result.acc, w.astype(np.int64) @ x)


def test_mac_reduction_vs_dense(benchmark):
    w, x, zp = _operands()

    def measure():
        return aqs_gemm(w, x, zp)

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    dense_mul4 = 4 * w.shape[0] * w.shape[1] * x.shape[1]
    reduction = 100.0 * (1.0 - result.ops.mul4 / dense_mul4)
    emit("kernels_mac_reduction", format_claims([
        PaperClaim("MAC-operation reduction vs dense GEMM (paper: 61%)",
                   61.0, reduction, unit="%"),
    ]))
    assert reduction > 40.0


if __name__ == "__main__":
    w, x, zp = _operands()
    res = aqs_gemm(w, x, zp)
    dense = 4 * w.shape[0] * w.shape[1] * x.shape[1]
    print(f"mul4 reduction vs dense: {100 * (1 - res.ops.mul4 / dense):.1f}%")
