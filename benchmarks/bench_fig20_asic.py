"""Bench F20 — Fig. 20: ASIC-level comparison table."""

from _util import emit

from repro.eval.experiments import fig20_asic


def test_fig20_asic(benchmark):
    result = benchmark.pedantic(fig20_asic.run, rounds=1, iterations=1)
    emit("fig20_asic", result.format())

    rows = {r.design: r for r in result.rows}
    # Panacea carries 2x Sibia's multipliers with a bounded area overhead...
    assert rows["panacea"].n_mul4 == 2 * rows["sibia [53]"].n_mul4
    assert rows["panacea"].core_area_mm2 < 1.4 * rows["lutein [56]"].core_area_mm2
    # ...and wins on efficiency for the sparse workload
    assert rows["panacea"].eff_tops_w > rows["sibia [53]"].eff_tops_w


if __name__ == "__main__":
    print(fig20_asic.run().format())
