"""Shared bench plumbing: persist each experiment's formatted output.

pytest captures stdout, so every bench also writes its table to
``benchmarks/results/<name>.txt`` — the artifacts EXPERIMENTS.md cites.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's formatted result."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def emit_json(name: str, payload: dict) -> None:
    """Persist one experiment's machine-readable result.

    Written next to the ``.txt`` artifacts so perf-trajectory tooling can
    diff runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
