"""Shared bench plumbing: persist each experiment's formatted output.

pytest captures stdout, so every bench also writes its table to
``benchmarks/results/<name>.txt`` — the artifacts EXPERIMENTS.md cites.

This module must stay numpy-free at import time: the benches call
:func:`pin_blas_threads` *before* their own ``import numpy`` so the BLAS
pools come up capped (the env knobs are read once, at library load).
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The env caps every mainstream BLAS/threading backend honors at load
#: (mirrors ``repro.serve.procworker.BLAS_ENV_VARS``, duplicated here so
#: pinning never imports the repro package — which would pull numpy first
#: and make the caps too late).
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_threads(threads: int = 1) -> dict:
    """Cap the BLAS thread pools for apples-to-apples bench runs.

    Call before numpy's first import.  Uses ``setdefault`` so an explicit
    operator setting (``OMP_NUM_THREADS=8 python bench_...``) wins; the
    default of 1 makes thread- vs process-backend comparisons measure the
    *scheduling* tier, not hidden BLAS parallelism.  No-op (returning the
    live values) when numpy is already loaded — e.g. under pytest, where
    the gates measure ratios, not absolutes.
    """
    for var in BLAS_ENV_VARS:
        os.environ.setdefault(var, str(int(threads)))
    return {var: os.environ[var] for var in BLAS_ENV_VARS}


def blas_report() -> dict:
    """Effective BLAS threading, recorded into every bench JSON artifact.

    Prefers ``threadpoolctl`` introspection (the actual pool sizes inside
    the loaded BLAS libraries) and falls back to the env caps when it is
    not installed — the caps are what the libraries read at load, so on
    the fallback path they are authoritative as long as
    :func:`pin_blas_threads` ran before numpy.
    """
    report = {
        "cpu_count": os.cpu_count(),
        "env": {var: os.environ.get(var) for var in BLAS_ENV_VARS},
        "source": "env",
    }
    try:
        from threadpoolctl import threadpool_info
    except ImportError:
        return report
    report["source"] = "threadpoolctl"
    report["pools"] = [
        {"api": info.get("internal_api"),
         "prefix": info.get("prefix"),
         "num_threads": info.get("num_threads")}
        for info in threadpool_info()
    ]
    return report


def throughput_gate_or_skip(*, min_cores: int = 4,
                            purpose: str = "thread-parallel drains") -> None:
    """Gate precondition shared by every wall-clock speedup test.

    Wall-clock speedup gates have two ways to silently stop binding: the
    host has too few cores for the parallelism under test (historically
    the ROADMAP soft spot — a "passing" CI lane where the gate never
    actually ran), or another pytest worker is competing for those cores.
    This helper makes both conditions *explicit* ``pytest.skip`` reasons,
    core count first so a few-core host always names its core count:

    * fewer than ``min_cores`` cores → skip, stating how many cores the
      gate needs for ``purpose`` and how many this host has;
    * ``REPRO_RUN_THROUGHPUT_GATE`` unset → skip, stating the gate is
      opt-in (CI's dedicated serial step sets it).

    Returning at all means the gate's assertion is about to bind for real.
    """
    import pytest

    cores = os.cpu_count() or 1
    if cores < min_cores:
        pytest.skip(f"speedup gate needs >= {min_cores} cores for "
                    f"{purpose}; this host has {cores}, so the gate "
                    "cannot bind here")
    if not os.environ.get("REPRO_RUN_THROUGHPUT_GATE"):
        pytest.skip("wall-clock gate is opt-in (it needs exclusive cores "
                    "and flakes on contended machines): set "
                    "REPRO_RUN_THROUGHPUT_GATE=1 — CI's dedicated serial "
                    "step does")


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's formatted result."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def emit_json(name: str, payload: dict) -> None:
    """Persist one experiment's machine-readable result.

    Written next to the ``.txt`` artifacts so perf-trajectory tooling can
    diff runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
