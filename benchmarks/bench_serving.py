"""Bench E2 — dynamic micro-batching vs per-request serving.

Single requests pay the whole per-forward overhead (Python dispatch, slice
extraction, mask reduction) on a handful of GEMM columns; the micro-batching
scheduler coalesces queued requests into one engine batch so that overhead
amortizes across riders.  This bench pushes a fixed request stream through a
:class:`ModelServer` hosting the BERT-base proxy under a sweep of
``max_batch`` policies (``max_batch=1`` is the per-request baseline) and
measures throughput, per-request latency and the modeled hardware work.
Every policy's outputs are asserted bit-exact against the per-request
baseline before timing is trusted.

A second, model-free section times the raw AQS engine on true BERT-base
GEMM shapes — ``execute_many`` over single-request column blocks vs one
fused ``execute`` — isolating the engine-batch win from the NN substrate.

Two concurrent-runtime sections ride along (PR 4):

* **workers sweep** — several BERT-base deployments drained through
  ``submit_async`` under a worker-count sweep; outputs are asserted
  bit-exact against a serial per-session replay before the speedup is
  trusted.  Thread-level speedup needs free cores — single-core runners
  still emit the numbers (and the exactness asserts still bind).
* **result cache** — the identical stream replayed against a
  cache-enabled deployment; reports hit rate and the short-circuit
  speedup of the second pass.

Emits a table to ``results/serving.txt`` and machine-readable numbers to
``results/serving.json``.

Run:        PYTHONPATH=src python benchmarks/bench_serving.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_serving.py --smoke
(the smoke run shrinks the stream, keeps the bit-exactness asserts, and
still writes the JSON artifact for upload)
"""

import argparse
import os
import time

from _util import (blas_report, emit, emit_json, pin_blas_threads,
                   throughput_gate_or_skip)

# Cap the BLAS pools before numpy loads them: the thread- vs process-tier
# comparisons must measure scheduling, not hidden BLAS parallelism.  An
# explicit operator env setting still wins (setdefault semantics).
pin_blas_threads(1)

import numpy as np  # noqa: E402  (after pin_blas_threads, deliberately)

from repro.core.aqs_gemm import AqsGemmConfig, execute_aqs, prepare_aqs
from repro.core.pipeline import PtqConfig
from repro.engine import PanaceaSession
from repro.eval.tables import format_table
from repro.models.zoo import build_proxy, proxy_batches
from repro.serve import BatchPolicy, ModelServer

MODEL = "bert_base"
POLICIES = (1, 2, 4, 8, 16)
WORKER_SWEEP = (1, 2, 4)

# True BERT-base GEMM shapes (seq 128) for the kernel-level section; each
# serving request contributes `n_req` columns.
KERNEL_SHAPES = [
    ("bert_base_qkv", 768, 768),
    ("bert_base_fc1", 3072, 768),
]


def _requests(n, seed=0):
    """``n`` single-row requests matching the BERT proxy's input modality."""
    return proxy_batches(MODEL, 1, n, seed=seed)


def serve_policy(max_batch, requests, seed=0):
    """Serve the request stream under one coalescing policy."""
    server = ModelServer()
    policy = BatchPolicy(max_batch=max_batch, max_delay_s=0.0)
    server.deploy_proxy("bert", MODEL, scheme="aqs", seed=seed, policy=policy)
    import time

    t0 = time.perf_counter()
    tickets = server.submit_many("bert", requests)
    server.flush("bert")
    wall_s = time.perf_counter() - t0
    assert all(t.done for t in tickets)
    stats = server.stats("bert")
    sess, sched = stats["session"], stats["scheduler"]
    latencies = [t.queue_wait_s + (t.record.latency_s if t.record else 0.0)
                 for t in tickets]
    return {
        "max_batch": max_batch,
        "outputs": [t.result() for t in tickets],
        "wall_s": wall_s,
        "throughput_rps": len(requests) / wall_s,
        "n_batches": sched["n_batches"],
        "mean_coalesce": sched["mean_batch_size"],
        "mean_latency_ms": float(np.mean(latencies)) * 1e3,
        "p95_latency_ms": float(np.percentile(latencies, 95)) * 1e3,
        "mul4": sess["mul4"],
    }


def run_serving(n_requests):
    """Policy sweep; asserts every policy is bit-exact vs per-request."""
    requests = _requests(n_requests)
    results = []
    baseline_outputs = None
    baseline_wall = None
    for max_batch in POLICIES:
        res = serve_policy(max_batch, requests)
        outputs = res.pop("outputs")
        if baseline_outputs is None:
            baseline_outputs, baseline_wall = outputs, res["wall_s"]
        else:
            for a, b in zip(baseline_outputs, outputs):
                assert np.array_equal(a, b), (
                    f"max_batch={max_batch} is not bit-exact vs per-request")
        res["speedup"] = baseline_wall / res["wall_s"]
        results.append(res)
    return results


def run_kernel(n_req=8, riders=16, repeats=5):
    """Raw engine: fused execute vs execute_many on BERT-base shapes."""
    import time

    rows = {}
    for name, m, k in KERNEL_SHAPES:
        rng = np.random.default_rng(0)
        w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 4),
                    -64, 63).astype(np.int64)
        zp = 168
        plan = prepare_aqs(w, zp, AqsGemmConfig())
        xs = [np.clip(np.rint(rng.standard_t(4, (k, n_req)) * 4 + zp),
                      0, 255).astype(np.int64) for _ in range(riders)]
        fused = np.concatenate(xs, axis=1)

        solo_res = [execute_aqs(plan, x) for x in xs]
        fused_res = execute_aqs(plan, fused)
        assert np.array_equal(np.concatenate([r.acc for r in solo_res],
                                             axis=1), fused_res.acc), name

        def _time(fn):
            samples = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - t0)
            return float(np.median(samples))

        solo_s = _time(lambda: [execute_aqs(plan, x) for x in xs])
        fused_s = _time(lambda: execute_aqs(plan, fused))
        rows[name] = {
            "m": m, "k": k, "n_per_request": n_req, "riders": riders,
            "per_request_ms": solo_s * 1e3,
            "fused_ms": fused_s * 1e3,
            "speedup": solo_s / fused_s,
            "per_request_mul4": int(sum(r.ops.mul4 for r in solo_res)),
            "fused_mul4": int(fused_res.ops.mul4),
        }
    return rows


def _deployment_sessions(n_deployments, seed=0):
    """Independent calibrated BERT-base sessions (one per deployment)."""
    sessions = []
    for i in range(n_deployments):
        model, _ = build_proxy(MODEL, seed=seed + i)
        session = PanaceaSession(model, PtqConfig.for_scheme("aqs"))
        session.calibrate(proxy_batches(MODEL, 2, 2, seed=seed + i + 1))
        sessions.append(session)
    return sessions


def run_concurrent(n_deployments=4, n_requests=6, rows=2,
                   workers_sweep=WORKER_SWEEP, seed=0):
    """Multi-deployment drain under a worker sweep, bit-exact vs serial.

    Every worker count serves the identical request streams through
    ``submit_async``; the workers=1 pass is the serialized baseline the
    speedups are relative to.  Outputs are asserted bit-exact against a
    per-session serial replay first — concurrency must never change a bit.
    """
    streams = [proxy_batches(MODEL, rows, n_requests, seed=seed + 20 + i)
               for i in range(n_deployments)]
    replay_sessions = _deployment_sessions(n_deployments, seed=seed)
    reference = [[session.run(x) for x in stream]
                 for session, stream in zip(replay_sessions, streams)]

    policy = BatchPolicy(max_batch=n_requests, max_delay_s=0.0)
    results = []
    baseline_wall = None
    for workers in workers_sweep:
        sessions = _deployment_sessions(n_deployments, seed=seed)
        with ModelServer(policy, workers=workers) as server:
            for i, session in enumerate(sessions):
                server.register(f"bert-{i}", session)
            t0 = time.perf_counter()
            futures = [server.submit_async(f"bert-{i}", x)
                       for i, stream in enumerate(streams)
                       for x in stream]
            outputs = [f.result() for f in futures]
            wall_s = time.perf_counter() - t0
            pool_stats = server.metrics().workers
        flat_reference = [out for outs in reference for out in outs]
        for got, expect in zip(outputs, flat_reference):
            assert np.array_equal(got, expect), (
                f"workers={workers} output is not bit-exact vs serial replay")
        if baseline_wall is None:
            baseline_wall = wall_s
        results.append({
            "workers": workers,
            "n_deployments": n_deployments,
            "n_requests": n_deployments * n_requests,
            "wall_s": wall_s,
            "throughput_rps": n_deployments * n_requests / wall_s,
            "speedup_vs_workers1": baseline_wall / wall_s,
            "mean_worker_utilization": pool_stats["mean_utilization"],
        })
    return results


def run_cache(n_requests=8, repeats=3, seed=0):
    """Result-cache short-circuit: identical stream replayed N times.

    The first pass fills the cache through the engine; every later pass is
    answered from it.  Hit outputs are bit-exact by construction (the
    cached array *is* the recorded engine output) — asserted anyway.
    """
    stream = _requests(n_requests, seed=seed + 40)
    session = _deployment_sessions(1, seed=seed)[0]
    server = ModelServer(BatchPolicy(max_batch=n_requests, max_delay_s=0.0),
                         cache_bytes=64 << 20)
    server.register("bert", session)

    walls = []
    first_outputs = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        tickets = server.submit_many("bert", stream)
        server.flush("bert")
        outputs = [t.result() for t in tickets]
        walls.append(time.perf_counter() - t0)
        if first_outputs is None:
            first_outputs = outputs
        else:
            for got, expect in zip(outputs, first_outputs):
                assert np.array_equal(got, expect), \
                    "cache hit is not bit-exact vs the recorded output"
    cache_stats = server.entry("bert").cache.stats()
    assert cache_stats["hits"] == (repeats - 1) * n_requests
    return {
        "n_requests": n_requests,
        "repeats": repeats,
        "cold_wall_s": walls[0],
        "warm_wall_s": float(np.mean(walls[1:])),
        "cache_speedup": walls[0] / float(np.mean(walls[1:])),
        "hit_rate": cache_stats["hit_rate"],
        "bytes": cache_stats["bytes"],
    }


def run(n_requests=32):
    serving = run_serving(n_requests)
    kernel = run_kernel()
    concurrent = run_concurrent()
    cache = run_cache()
    payload = {"model": MODEL, "n_requests": n_requests,
               "cpu_count": os.cpu_count(), "blas": blas_report(),
               "policies": serving, "kernel": kernel,
               "concurrent": concurrent, "cache": cache}
    base_mul4 = serving[0]["mul4"]
    rows = [[r["max_batch"], r["n_batches"], r["mean_coalesce"],
             r["throughput_rps"], r["speedup"], r["mean_latency_ms"],
             r["p95_latency_ms"], r["mul4"] / base_mul4]
            for r in serving]
    best = max(r["speedup"] for r in serving)
    conc_rows = [[r["workers"], r["n_requests"], r["throughput_rps"],
                  r["speedup_vs_workers1"], r["mean_worker_utilization"]]
                 for r in concurrent]
    conc_best = max(r["speedup_vs_workers1"] for r in concurrent)
    emit("serving", format_table(
        ["max_batch", "batches", "coalesce", "req/s", "speedup",
         "mean lat (ms)", "p95 lat (ms)", "rel mul4"],
        rows,
        title=f"{MODEL} micro-batched serving vs per-request "
              f"({n_requests} requests, best speedup {best:.2f}x; "
              "outputs bit-exact across all policies)") + "\n\n" +
        format_table(
            ["workers", "requests", "req/s", "speedup", "utilization"],
            conc_rows,
            title=f"concurrent multi-deployment drain "
                  f"({concurrent[0]['n_deployments']} deployments, "
                  f"{os.cpu_count()} cores, best {conc_best:.2f}x vs "
                  "workers=1; outputs bit-exact vs serial replay)") +
        f"\n\nresult cache: {cache['repeats'] - 1} replays of "
        f"{cache['n_requests']} requests, hit rate {cache['hit_rate']:.0%}, "
        f"warm pass {cache['cache_speedup']:.1f}x faster than cold")
    emit_json("serving", payload)
    return payload


def test_coalesced_serving_bit_exact():
    """The non-negotiable invariant, under pytest (small stream)."""
    run_serving(n_requests=6)


def test_coalesced_beats_per_request_throughput():
    """Coalescing must not lose to per-request serving on BERT shapes."""
    results = run_serving(n_requests=16)
    best = max(r["speedup"] for r in results[1:])
    assert best >= 1.0, [r["speedup"] for r in results]


def test_concurrent_drain_bit_exact():
    """Worker-pool drains never change a bit vs serial replay (asserted
    inside run_concurrent for every worker count)."""
    run_concurrent(n_deployments=3, n_requests=3, workers_sweep=(1, 4))


def test_concurrent_multi_deployment_speedup():
    """The PR's throughput criterion: >= 1.5x with workers=4 vs workers=1
    on the BERT-base smoke shapes.  Thread-level speedup needs free cores,
    so the gate skips — explicitly, naming the core count — where they
    don't exist; the exactness asserts always ran in
    test_concurrent_drain_bit_exact regardless."""
    throughput_gate_or_skip(min_cores=4, purpose="thread-parallel drains")
    results = run_concurrent(workers_sweep=(1, 4))
    best = results[-1]["speedup_vs_workers1"]
    assert best >= 1.5, [r["speedup_vs_workers1"] for r in results]


def test_result_cache_short_circuits_duplicates():
    """Replayed requests hit the cache, bit-exactly, with 100% warm hits."""
    result = run_cache(n_requests=4, repeats=2)
    assert result["hit_rate"] == 0.5          # cold pass misses, warm hits
    assert result["bytes"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, exactness asserts + JSON only")
    parser.add_argument("--requests", type=int, default=32)
    args = parser.parse_args()
    if args.smoke:
        serving = run_serving(n_requests=8)
        kernel = run_kernel(riders=4, repeats=2)
        concurrent = run_concurrent(n_deployments=3, n_requests=4)
        cache = run_cache(n_requests=6, repeats=2)
        emit_json("serving_smoke", {"model": MODEL, "n_requests": 8,
                                    "cpu_count": os.cpu_count(),
                                    "blas": blas_report(),
                                    "policies": serving, "kernel": kernel,
                                    "concurrent": concurrent,
                                    "cache": cache})
        conc_best = max(r["speedup_vs_workers1"] for r in concurrent)
        print("serving smoke: all batch policies bit-exact vs per-request; "
              f"best speedup {max(r['speedup'] for r in serving):.2f}x; "
              f"concurrent drain bit-exact, best {conc_best:.2f}x vs "
              f"workers=1 on {os.cpu_count()} cores; cache hit rate "
              f"{cache['hit_rate']:.0%} at {cache['cache_speedup']:.1f}x")
    else:
        run(n_requests=args.requests)
