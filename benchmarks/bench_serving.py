"""Bench E2 — dynamic micro-batching vs per-request serving.

Single requests pay the whole per-forward overhead (Python dispatch, slice
extraction, mask reduction) on a handful of GEMM columns; the micro-batching
scheduler coalesces queued requests into one engine batch so that overhead
amortizes across riders.  This bench pushes a fixed request stream through a
:class:`ModelServer` hosting the BERT-base proxy under a sweep of
``max_batch`` policies (``max_batch=1`` is the per-request baseline) and
measures throughput, per-request latency and the modeled hardware work.
Every policy's outputs are asserted bit-exact against the per-request
baseline before timing is trusted.

A second, model-free section times the raw AQS engine on true BERT-base
GEMM shapes — ``execute_many`` over single-request column blocks vs one
fused ``execute`` — isolating the engine-batch win from the NN substrate.

Emits a table to ``results/serving.txt`` and machine-readable numbers to
``results/serving.json``.

Run:        PYTHONPATH=src python benchmarks/bench_serving.py
CI smoke:   PYTHONPATH=src python benchmarks/bench_serving.py --smoke
(the smoke run shrinks the stream, keeps the bit-exactness asserts, and
still writes the JSON artifact for upload)
"""

import argparse

import numpy as np
from _util import emit, emit_json

from repro.core.aqs_gemm import AqsGemmConfig, execute_aqs, prepare_aqs
from repro.eval.tables import format_table
from repro.models.zoo import proxy_batches
from repro.serve import BatchPolicy, ModelServer

MODEL = "bert_base"
POLICIES = (1, 2, 4, 8, 16)

# True BERT-base GEMM shapes (seq 128) for the kernel-level section; each
# serving request contributes `n_req` columns.
KERNEL_SHAPES = [
    ("bert_base_qkv", 768, 768),
    ("bert_base_fc1", 3072, 768),
]


def _requests(n, seed=0):
    """``n`` single-row requests matching the BERT proxy's input modality."""
    return proxy_batches(MODEL, 1, n, seed=seed)


def serve_policy(max_batch, requests, seed=0):
    """Serve the request stream under one coalescing policy."""
    server = ModelServer()
    policy = BatchPolicy(max_batch=max_batch, max_delay_s=0.0)
    server.deploy_proxy("bert", MODEL, scheme="aqs", seed=seed, policy=policy)
    import time

    t0 = time.perf_counter()
    tickets = server.submit_many("bert", requests)
    server.flush("bert")
    wall_s = time.perf_counter() - t0
    assert all(t.done for t in tickets)
    stats = server.stats("bert")
    sess, sched = stats["session"], stats["scheduler"]
    latencies = [t.queue_wait_s + (t.record.latency_s if t.record else 0.0)
                 for t in tickets]
    return {
        "max_batch": max_batch,
        "outputs": [t.result() for t in tickets],
        "wall_s": wall_s,
        "throughput_rps": len(requests) / wall_s,
        "n_batches": sched["n_batches"],
        "mean_coalesce": sched["mean_batch_size"],
        "mean_latency_ms": float(np.mean(latencies)) * 1e3,
        "p95_latency_ms": float(np.percentile(latencies, 95)) * 1e3,
        "mul4": sess["mul4"],
    }


def run_serving(n_requests):
    """Policy sweep; asserts every policy is bit-exact vs per-request."""
    requests = _requests(n_requests)
    results = []
    baseline_outputs = None
    baseline_wall = None
    for max_batch in POLICIES:
        res = serve_policy(max_batch, requests)
        outputs = res.pop("outputs")
        if baseline_outputs is None:
            baseline_outputs, baseline_wall = outputs, res["wall_s"]
        else:
            for a, b in zip(baseline_outputs, outputs):
                assert np.array_equal(a, b), (
                    f"max_batch={max_batch} is not bit-exact vs per-request")
        res["speedup"] = baseline_wall / res["wall_s"]
        results.append(res)
    return results


def run_kernel(n_req=8, riders=16, repeats=5):
    """Raw engine: fused execute vs execute_many on BERT-base shapes."""
    import time

    rows = {}
    for name, m, k in KERNEL_SHAPES:
        rng = np.random.default_rng(0)
        w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 4),
                    -64, 63).astype(np.int64)
        zp = 168
        plan = prepare_aqs(w, zp, AqsGemmConfig())
        xs = [np.clip(np.rint(rng.standard_t(4, (k, n_req)) * 4 + zp),
                      0, 255).astype(np.int64) for _ in range(riders)]
        fused = np.concatenate(xs, axis=1)

        solo_res = [execute_aqs(plan, x) for x in xs]
        fused_res = execute_aqs(plan, fused)
        assert np.array_equal(np.concatenate([r.acc for r in solo_res],
                                             axis=1), fused_res.acc), name

        def _time(fn):
            samples = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - t0)
            return float(np.median(samples))

        solo_s = _time(lambda: [execute_aqs(plan, x) for x in xs])
        fused_s = _time(lambda: execute_aqs(plan, fused))
        rows[name] = {
            "m": m, "k": k, "n_per_request": n_req, "riders": riders,
            "per_request_ms": solo_s * 1e3,
            "fused_ms": fused_s * 1e3,
            "speedup": solo_s / fused_s,
            "per_request_mul4": int(sum(r.ops.mul4 for r in solo_res)),
            "fused_mul4": int(fused_res.ops.mul4),
        }
    return rows


def run(n_requests=32):
    serving = run_serving(n_requests)
    kernel = run_kernel()
    payload = {"model": MODEL, "n_requests": n_requests,
               "policies": serving, "kernel": kernel}
    base_mul4 = serving[0]["mul4"]
    rows = [[r["max_batch"], r["n_batches"], r["mean_coalesce"],
             r["throughput_rps"], r["speedup"], r["mean_latency_ms"],
             r["p95_latency_ms"], r["mul4"] / base_mul4]
            for r in serving]
    best = max(r["speedup"] for r in serving)
    emit("serving", format_table(
        ["max_batch", "batches", "coalesce", "req/s", "speedup",
         "mean lat (ms)", "p95 lat (ms)", "rel mul4"],
        rows,
        title=f"{MODEL} micro-batched serving vs per-request "
              f"({n_requests} requests, best speedup {best:.2f}x; "
              "outputs bit-exact across all policies)"))
    emit_json("serving", payload)
    return payload


def test_coalesced_serving_bit_exact():
    """The non-negotiable invariant, under pytest (small stream)."""
    run_serving(n_requests=6)


def test_coalesced_beats_per_request_throughput():
    """Coalescing must not lose to per-request serving on BERT shapes."""
    results = run_serving(n_requests=16)
    best = max(r["speedup"] for r in results[1:])
    assert best >= 1.0, [r["speedup"] for r in results]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, exactness asserts + JSON only")
    parser.add_argument("--requests", type=int, default=32)
    args = parser.parse_args()
    if args.smoke:
        serving = run_serving(n_requests=8)
        kernel = run_kernel(riders=4, repeats=2)
        emit_json("serving_smoke", {"model": MODEL, "n_requests": 8,
                                    "policies": serving, "kernel": kernel})
        print("serving smoke: all batch policies bit-exact vs per-request; "
              f"best speedup {max(r['speedup'] for r in serving):.2f}x")
    else:
        run(n_requests=args.requests)
