"""Bench F5 — Fig. 5: motivation — r-slices dominate, zero slices are rare."""

from _util import emit

from repro.eval.experiments import fig05_motivation


def test_fig05_motivation(benchmark):
    result = benchmark.pedantic(fig05_motivation.run, rounds=1, iterations=1)
    emit("fig05_motivation", result.format())
    # the central claim: asymmetric quantization leaves (next to) nothing for
    # a zero-only skipper on layers whose zp is away from 0, while the
    # r-valued slice is frequent everywhere
    for row in result.histogram_rows:
        assert row.r_fraction_asym >= row.zero_fraction_asym - 1e-9
        assert row.r_fraction_asym > 0.4
    away_from_zero = [r for r in result.histogram_rows if r.zp >= 32]
    assert any(r.zero_fraction_asym < 0.05 for r in away_from_zero)
    # Fig. 5(b): the AQS-GEMM (asym) matches or beats symmetric int accuracy
    assert result.accuracy["aqs"] >= result.accuracy["symmetric"] - 0.02


if __name__ == "__main__":
    print(fig05_motivation.run().format())
