"""Bench F9/F10 — DBS typing and its sparsity gains."""

from _util import emit

from repro.eval.experiments import fig09_dbs


def test_fig09_dbs(benchmark):
    result = benchmark.pedantic(fig09_dbs.run, rounds=1, iterations=1)
    emit("fig09_dbs", result.format())
    # DBS must never reduce sparsity and must help wide layers a lot
    assert all(r.rho_with_dbs >= r.rho_without_dbs - 1e-9
               for r in result.rows)
    assert result.max_gain_points > 40.0
    types = {r.dbs_type for r in result.rows}
    assert types & {2, 3}, "expected some wide layers to trigger DBS"


if __name__ == "__main__":
    print(fig09_dbs.run().format())
