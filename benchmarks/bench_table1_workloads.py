"""Bench T1 — Table I: analytic workload formulas vs measured op counts."""

from _util import emit

from repro.eval.experiments import table1


def test_table1_workloads(benchmark):
    result = benchmark.pedantic(table1.run, kwargs=dict(k=1024),
                                rounds=1, iterations=1)
    emit("table1_workloads", result.format())
    # the closed forms must track the measured kernels tightly
    assert result.max_mul_error < 0.05
    for row in result.rows:
        if row.design == "panacea":
            assert row.measured_ema <= 16 * result.k + 1  # never above dense


if __name__ == "__main__":
    print(table1.run(k=1024).format())
