"""Bench F8 — Fig. 8: ZPM sparsity gain (paper example: 68% -> 98%)."""

from _util import emit

from repro.eval.experiments import fig08_zpm


def test_fig08_zpm(benchmark):
    result = benchmark.pedantic(fig08_zpm.run, rounds=1, iterations=1)
    emit("fig08_zpm", result.format())
    worst = result.worst_case
    assert worst.sparsity_before < 0.75
    assert worst.sparsity_after > 0.90
    assert worst.gain_points > 20.0


if __name__ == "__main__":
    print(fig08_zpm.run().format())
