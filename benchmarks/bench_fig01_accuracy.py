"""Bench F1 — Fig. 1: asymmetric activation quantization preserves quality."""

from _util import emit

from repro.eval.experiments import fig01_accuracy


def test_fig01_accuracy(benchmark):
    result = benchmark.pedantic(
        fig01_accuracy.run,
        kwargs=dict(models=("bert_base", "gpt2", "opt_350m")),
        rounds=1, iterations=1)
    emit("fig01_accuracy", result.format())
    # asymmetric must win (or tie) on a clear majority of models
    assert result.asym_win_fraction >= 0.66
    for row in result.rows:
        if row.metric == "ppl_ratio":
            assert row.asymmetric < 2.0  # 8-bit PTQ stays usable


if __name__ == "__main__":
    print(fig01_accuracy.run().format())
