"""Bench F13 — Fig. 13: throughput across the sparsity design space."""

from _util import emit

from repro.eval.experiments import fig13_design_space


def test_fig13_design_space(benchmark):
    result = benchmark.pedantic(fig13_design_space.run, rounds=1,
                                iterations=1)
    emit("fig13_design_space", result.format())
    claims = {c.description: c for c in result.claims}
    # shape checks mirroring the figure
    high_speedup = claims["speedup vs SA-WS at high sparsity "
                          "(paper: up to 3.7x)"]
    assert high_speedup.measured_value > 2.5
    low = claims["Panacea-4DWO behind SIMD at zero sparsity "
                 "(paper: ratio < 1)"]
    assert low.measured_value < 1.0
    dtp = claims["DTP gain at high sparsity, 4DWO+8SWO (paper: ~1.11x)"]
    assert dtp.measured_value >= 1.0
    # throughput is monotone in sparsity for each configuration
    for config in ("4dwo8swo", "8dwo4swo"):
        for size in ("small", "large"):
            series = [p.tops for p in result.points
                      if p.config == config and p.size == size and p.dtp]
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))


if __name__ == "__main__":
    print(fig13_design_space.run().format())
