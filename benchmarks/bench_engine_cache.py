"""Bench E0 — prepared-plan amortization of the AQS-GEMM weight path.

The paper computes all weight-side artifacts (SBR slices, all-zero HO vector
masks, RLE indices, the Eq. 6 compensation bias) offline; the two-phase
engine architecture caches them in an :class:`AqsLayerPlan` at conversion
time.  This bench measures what that buys on repeated inference: one-shot
``aqs_gemm`` (weights re-sliced every call) vs ``prepare`` once +
``execute`` per call, across ResNet- and BERT-shaped layers.

Emits a table to ``results/engine_cache.txt`` and machine-readable numbers
to ``results/engine_cache.json``.

Run:  PYTHONPATH=src python benchmarks/bench_engine_cache.py
"""

import time

import numpy as np
from _util import emit, emit_json

from repro.core.aqs_gemm import AqsGemmConfig, aqs_gemm, execute_aqs, prepare_aqs
from repro.eval.tables import format_table

# (name, M, K, N): BERT-base projections/MLP at seq 128, ResNet-18/50 im2col
# shapes at 224x224 input.
SHAPES = [
    ("bert_base_qkv", 768, 768, 128),
    ("bert_base_fc1", 3072, 768, 128),
    ("bert_base_fc2", 768, 3072, 128),
    ("resnet18_conv3", 128, 1152, 784),
    ("resnet50_conv4", 256, 2304, 196),
]


def _operands(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    w = np.clip(np.rint(rng.standard_t(5, (m, k)) * 4), -64, 63).astype(np.int64)
    zp = 168
    x = np.clip(np.rint(rng.standard_t(4, (k, n)) * 4 + zp), 0,
                255).astype(np.int64)
    return w, x, zp


def _time(fn, repeats):
    """Median wall time of ``fn`` over ``repeats`` calls, in seconds."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def measure_shape(name, m, k, n, repeats=5):
    """One-shot vs prepared timings for one layer shape (bit-exact checked)."""
    w, x, zp = _operands(m, k, n)
    config = AqsGemmConfig()
    plan = prepare_aqs(w, zp, config)
    reference = aqs_gemm(w, x, zp, config)
    prepared = execute_aqs(plan, x)
    assert np.array_equal(reference.acc, prepared.acc), name

    one_shot_s = _time(lambda: aqs_gemm(w, x, zp, config), repeats)
    prepare_s = _time(lambda: prepare_aqs(w, zp, config), repeats)
    execute_s = _time(lambda: execute_aqs(plan, x), repeats)
    return {
        "m": m, "k": k, "n": n,
        "one_shot_ms": one_shot_s * 1e3,
        "prepare_ms": prepare_s * 1e3,
        "execute_ms": execute_s * 1e3,
        "speedup": one_shot_s / execute_s,
    }


def run(repeats=5):
    results = {name: measure_shape(name, m, k, n, repeats)
               for name, m, k, n in SHAPES}
    rows = [[name, r["m"], r["k"], r["n"], r["one_shot_ms"], r["prepare_ms"],
             r["execute_ms"], r["speedup"]] for name, r in results.items()]
    emit("engine_cache", format_table(
        ["layer", "M", "K", "N", "one-shot (ms)", "prepare (ms)",
         "execute (ms)", "speedup"],
        rows,
        title="AQS-GEMM: one-shot vs prepared execute (weight path amortized)"))
    emit_json("engine_cache", results)
    return results


def test_prepared_execute_speedup():
    """Prepared execute must beat one-shot by >= 1.5x on a BERT-base layer."""
    r = measure_shape("bert_base_fc1", 3072, 768, 128, repeats=3)
    assert r["speedup"] >= 1.5, r


if __name__ == "__main__":
    run()
