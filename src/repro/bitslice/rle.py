"""Run-length encoding of compressed slice-vector streams (paper Fig. 7).

The accelerator stores only the *uncompressed* slice vectors together with
run-length indices describing how many compressed vectors precede each of
them.  With ``index_bits = 4`` an index encodes runs of up to 15 compressed
vectors; longer runs are carried by ``MAX_RUN`` continuation tokens that have
no payload — this matches "we can compress up to 15 successive vectors into
an index".

The encoder works on the per-stream boolean mask where ``True`` means the
vector is *uncompressed* (has a payload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RleToken", "RleStream", "rle_encode", "rle_decode", "rle_index_bits"]


@dataclass(frozen=True)
class RleToken:
    """One RLE index.

    ``run`` compressed vectors are skipped, then — iff ``has_payload`` — one
    uncompressed vector follows.  A token with ``run == max_run`` and no
    payload is a continuation for longer runs.
    """

    run: int
    has_payload: bool


@dataclass(frozen=True)
class RleStream:
    """An encoded stream: tokens plus the total vector count."""

    tokens: tuple[RleToken, ...]
    length: int
    index_bits: int

    @property
    def n_payloads(self) -> int:
        return sum(1 for t in self.tokens if t.has_payload)

    @property
    def index_storage_bits(self) -> int:
        """Total bits spent on RLE indices."""
        return len(self.tokens) * self.index_bits


def rle_encode(uncompressed: np.ndarray, index_bits: int = 4) -> RleStream:
    """Encode a 1-D uncompressed mask into RLE tokens."""
    mask = np.asarray(uncompressed, dtype=bool).ravel()
    max_run = (1 << index_bits) - 1
    tokens: list[RleToken] = []
    run = 0
    for is_payload in mask:
        if is_payload:
            tokens.append(RleToken(run=run, has_payload=True))
            run = 0
        else:
            run += 1
            if run == max_run:
                tokens.append(RleToken(run=max_run, has_payload=False))
                run = 0
    if run:
        tokens.append(RleToken(run=run, has_payload=False))
    return RleStream(tokens=tuple(tokens), length=mask.size, index_bits=index_bits)


def rle_decode(stream: RleStream) -> np.ndarray:
    """Decode back to the boolean uncompressed mask."""
    out = np.zeros(stream.length, dtype=bool)
    pos = 0
    for token in stream.tokens:
        pos += token.run
        if token.has_payload:
            if pos >= stream.length:
                raise ValueError("RLE stream overruns its declared length")
            out[pos] = True
            pos += 1
    if pos > stream.length:
        raise ValueError("RLE stream overruns its declared length")
    return out


def rle_index_bits(uncompressed: np.ndarray, index_bits: int = 4) -> int:
    """Bits of index storage needed to encode ``uncompressed`` (fast path).

    Equivalent to ``rle_encode(...).index_storage_bits`` but vectorized so the
    EMA accounting of full-size layers stays cheap: one token per payload plus
    one continuation token per ``max_run`` compressed vectors in each gap,
    plus a trailing token when the stream ends in a partial run.
    """
    mask = np.asarray(uncompressed, dtype=bool).ravel()
    max_run = (1 << index_bits) - 1
    payload_positions = np.flatnonzero(mask)
    n_payloads = payload_positions.size
    # Gap lengths: compressed run before each payload, plus the trailing run.
    boundaries = np.concatenate([[-1], payload_positions, [mask.size]])
    gaps = np.diff(boundaries) - 1
    # One payload token each (absorbing gap % max_run), one continuation token
    # per full max_run within any gap, and one final token if the trailing gap
    # leaves a partial run with no payload to absorb it.
    n_tokens = n_payloads + int(np.sum(gaps // max_run))
    if gaps[-1] % max_run:
        n_tokens += 1
    return n_tokens * index_bits
