"""Run-length encoding of compressed slice-vector streams (paper Fig. 7).

The accelerator stores only the *uncompressed* slice vectors together with
run-length indices describing how many compressed vectors precede each of
them.  With ``index_bits = 4`` an index encodes runs of up to 15 compressed
vectors; longer runs are carried by ``MAX_RUN`` continuation tokens that have
no payload — this matches "we can compress up to 15 successive vectors into
an index".

The encoder works on the per-stream boolean mask where ``True`` means the
vector is *uncompressed* (has a payload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RleToken", "RleStream", "rle_encode", "rle_decode",
           "rle_index_bits", "rle_index_bits_batch"]


@dataclass(frozen=True)
class RleToken:
    """One RLE index.

    ``run`` compressed vectors are skipped, then — iff ``has_payload`` — one
    uncompressed vector follows.  A token with ``run == max_run`` and no
    payload is a continuation for longer runs.
    """

    run: int
    has_payload: bool


@dataclass(frozen=True)
class RleStream:
    """An encoded stream: tokens plus the total vector count."""

    tokens: tuple[RleToken, ...]
    length: int
    index_bits: int

    @property
    def n_payloads(self) -> int:
        return sum(1 for t in self.tokens if t.has_payload)

    @property
    def index_storage_bits(self) -> int:
        """Total bits spent on RLE indices."""
        return len(self.tokens) * self.index_bits


def _check_index_bits(index_bits: int) -> None:
    if index_bits < 1:
        raise ValueError(f"index_bits must be >= 1, got {index_bits}")


def rle_encode(uncompressed: np.ndarray, index_bits: int = 4) -> RleStream:
    """Encode a 1-D uncompressed mask into RLE tokens."""
    _check_index_bits(index_bits)
    mask = np.asarray(uncompressed, dtype=bool).ravel()
    max_run = (1 << index_bits) - 1
    tokens: list[RleToken] = []
    run = 0
    for is_payload in mask:
        if is_payload:
            tokens.append(RleToken(run=run, has_payload=True))
            run = 0
        else:
            run += 1
            if run == max_run:
                tokens.append(RleToken(run=max_run, has_payload=False))
                run = 0
    if run:
        tokens.append(RleToken(run=run, has_payload=False))
    return RleStream(tokens=tuple(tokens), length=mask.size, index_bits=index_bits)


def rle_decode(stream: RleStream) -> np.ndarray:
    """Decode back to the boolean uncompressed mask."""
    out = np.zeros(stream.length, dtype=bool)
    pos = 0
    for token in stream.tokens:
        pos += token.run
        if token.has_payload:
            if pos >= stream.length:
                raise ValueError("RLE stream overruns its declared length")
            out[pos] = True
            pos += 1
    if pos > stream.length:
        raise ValueError("RLE stream overruns its declared length")
    return out


def rle_index_bits(uncompressed: np.ndarray, index_bits: int = 4) -> int:
    """Bits of index storage needed to encode ``uncompressed`` (fast path).

    Equivalent to ``rle_encode(...).index_storage_bits`` but vectorized so
    the EMA accounting of full-size layers stays cheap.  Thin wrapper over
    :func:`rle_index_bits_batch` so the token-count logic lives in exactly
    one place (cross-checked against the encoder by the property tests).
    """
    mask = np.asarray(uncompressed, dtype=bool).ravel()
    return int(rle_index_bits_batch(mask[None], index_bits)[0])


def rle_index_bits_batch(masks: np.ndarray, index_bits: int = 4) -> np.ndarray:
    """Per-stream index bits for a batch of masks, fully vectorized.

    ``masks`` is ``(R, L)``: ``R`` independent streams of ``L`` vectors each
    (weight streams are mask rows along ``K``; activation streams are mask
    columns, so pass ``ux.T``).  Returns an ``(R,)`` int64 array where entry
    ``i`` equals ``rle_index_bits(masks[i], index_bits)`` — the whole batch is
    sized with a handful of NumPy passes instead of a Python loop per stream,
    which is what keeps the EMA accounting off the hot path for full-size
    layers.
    """
    _check_index_bits(index_bits)
    masks = np.atleast_2d(np.asarray(masks, dtype=bool))
    if masks.ndim != 2:
        raise ValueError(f"masks must be 1-D or 2-D, got shape {masks.shape}")
    n_rows, length = masks.shape
    max_run = (1 << index_bits) - 1
    flat = np.flatnonzero(masks)
    rows = flat // length if length else np.empty(0, dtype=np.int64)
    tokens = np.bincount(rows, minlength=n_rows).astype(np.int64)
    # Trailing compressed run per stream: the whole stream when it has no
    # payload, what follows the last payload otherwise.
    trail = np.full(n_rows, length, dtype=np.int64)
    if flat.size:
        cols = flat - rows * length
        # Gap of compressed vectors before each payload (absorbed by its
        # token modulo max_run): distance to the previous payload in the same
        # stream, or to the stream start.
        starts = np.empty(flat.size, dtype=bool)
        starts[0] = True
        starts[1:] = rows[1:] != rows[:-1]
        prev = np.empty_like(cols)
        prev[1:] = cols[:-1]
        prev[starts] = -1
        gaps = cols - prev - 1
        tokens += np.bincount(rows, weights=gaps // max_run,
                              minlength=n_rows).astype(np.int64)
        ends = np.empty(flat.size, dtype=bool)
        ends[-1] = True
        ends[:-1] = starts[1:]
        trail[rows[ends]] = length - 1 - cols[ends]
    # Continuation tokens inside the trailing run, plus one final token for a
    # partial run that no payload absorbs.
    tokens += trail // max_run + (trail % max_run != 0)
    return tokens * index_bits
