"""Compressed slice-tensor storage formats and size accounting.

The accelerator ships tensors between DRAM, SRAM and the processing core in
a compressed format: the *uncompressed* HO slice vectors (payloads) plus RLE
indices, and the dense LO slice planes.  This module materializes that format
for functional use and — more importantly for the evaluation — accounts for
its exact storage footprint, which drives the external-memory-access (EMA)
numbers of the paper (Section III-B: 60.5 % / 46.8 % EMA reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rle import rle_index_bits_batch
from .slicing import SliceStack
from .vectors import activation_vector_mask, weight_vector_mask

__all__ = [
    "CompressedTensor",
    "compress_weight_slices",
    "compress_activation_slices",
    "dense_storage_bits",
]


@dataclass(frozen=True)
class CompressedTensor:
    """A bit-sliced tensor in the accelerator's compressed wire format.

    Only the HO plane is compressed; ``lo_planes`` travel dense.  Storage is
    reported in bits so nibble-level formats stay exact.
    """

    shape: tuple[int, ...]
    ho_payloads: np.ndarray          # uncompressed HO vectors, flattened
    uncompressed_mask: np.ndarray    # vector-granularity, True = payload
    lo_planes: tuple[np.ndarray, ...]
    compress_value: int
    v: int
    slice_bits: int = 4
    index_bits: int = 4

    @property
    def n_vectors(self) -> int:
        return self.uncompressed_mask.size

    @property
    def n_payload_vectors(self) -> int:
        return int(np.count_nonzero(self.uncompressed_mask))

    @property
    def payload_bits(self) -> int:
        return self.n_payload_vectors * self.v * self.slice_bits

    @property
    def rle_bits(self) -> int:
        mask = self.uncompressed_mask
        # RLE streams run along the reduction dimension, one per vector row.
        streams = (mask.reshape(mask.shape[0], -1).T if mask.ndim == 2
                   else mask)
        return int(rle_index_bits_batch(streams, self.index_bits).sum())

    @property
    def lo_bits_total(self) -> int:
        return sum(p.size * self.slice_bits for p in self.lo_planes)

    @property
    def total_bits(self) -> int:
        return self.payload_bits + self.rle_bits + self.lo_bits_total

    def compression_ratio(self, dense_bits: int) -> float:
        """Compressed size relative to the dense format (< 1 is smaller)."""
        return self.total_bits / dense_bits if dense_bits else 1.0


def compress_weight_slices(stack: SliceStack, v: int = 4,
                           index_bits: int = 4) -> CompressedTensor:
    """Compress an SBR weight slice stack ``(M, K)`` (zero HO vectors skip)."""
    mask = weight_vector_mask(stack.ho, v=v, compress_value=0)
    payloads = _gather_weight_payloads(stack.ho, mask, v)
    return CompressedTensor(
        shape=stack.shape,
        ho_payloads=payloads,
        uncompressed_mask=mask,
        lo_planes=tuple(stack.planes[:-1]),
        compress_value=0,
        v=v,
        index_bits=index_bits,
    )


def compress_activation_slices(stack: SliceStack, r: int, v: int = 4,
                               index_bits: int = 4) -> CompressedTensor:
    """Compress an activation slice stack ``(K, N)`` (all-``r`` vectors skip)."""
    mask = activation_vector_mask(stack.ho, v=v, compress_value=r)
    payloads = _gather_activation_payloads(stack.ho, mask, v, r)
    return CompressedTensor(
        shape=stack.shape,
        ho_payloads=payloads,
        uncompressed_mask=mask,
        lo_planes=tuple(stack.planes[:-1]),
        compress_value=r,
        v=v,
        index_bits=index_bits,
    )


def _gather_weight_payloads(ho: np.ndarray, mask: np.ndarray, v: int) -> np.ndarray:
    m, k = ho.shape
    mg = mask.shape[0]
    padded = np.zeros((mg * v, k), dtype=ho.dtype)
    padded[:m] = ho
    grouped = padded.reshape(mg, v, k).transpose(0, 2, 1)  # (mg, k, v)
    return grouped[mask]


def _gather_activation_payloads(ho: np.ndarray, mask: np.ndarray, v: int,
                                r: int) -> np.ndarray:
    k, n = ho.shape
    ng = mask.shape[1]
    padded = np.full((k, ng * v), r, dtype=ho.dtype)
    padded[:, :n] = ho
    grouped = padded.reshape(k, ng, v)
    return grouped[mask]


def dense_storage_bits(shape: tuple[int, ...], value_bits: int) -> int:
    """Storage of the uncompressed format: ``value_bits`` per element."""
    n = 1
    for s in shape:
        n *= s
    return n * value_bits


def decompress_weight_ho(compressed: CompressedTensor) -> np.ndarray:
    """Reconstruct the weight HO plane from the compressed wire format."""
    m, k = compressed.shape
    v = compressed.v
    mask = compressed.uncompressed_mask
    mg = mask.shape[0]
    plane = np.full((mg * v, k), compressed.compress_value, dtype=np.int64)
    grouped = plane.reshape(mg, v, k).transpose(0, 2, 1)  # (mg, k, v) view
    grouped[mask] = compressed.ho_payloads
    return grouped.transpose(0, 2, 1).reshape(mg * v, k)[:m]


def decompress_activation_ho(compressed: CompressedTensor) -> np.ndarray:
    """Reconstruct the activation HO plane from the compressed wire format."""
    k, n = compressed.shape
    v = compressed.v
    mask = compressed.uncompressed_mask
    ng = mask.shape[1]
    plane = np.full((k, ng, v), compressed.compress_value, dtype=np.int64)
    plane[mask] = compressed.ho_payloads
    return plane.reshape(k, ng * v)[:, :n]
