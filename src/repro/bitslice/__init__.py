"""Bit-slice substrate: slicing formats, vectors, RLE, sparsity analytics."""

from .slicing import (
    SliceStack,
    dbs_reconstruct_codes,
    sbr_total_bits,
    slice_dbs,
    slice_sbr,
    slice_unsigned,
)
from .vectors import (
    activation_vector_mask,
    expand_activation_mask,
    expand_weight_mask,
    pad_to_multiple,
    vector_sparsity,
    weight_vector_mask,
)
from .rle import (
    RleStream,
    RleToken,
    rle_decode,
    rle_encode,
    rle_index_bits,
    rle_index_bits_batch,
)
from .formats import (
    CompressedTensor,
    compress_activation_slices,
    compress_weight_slices,
    decompress_activation_ho,
    decompress_weight_ho,
    dense_storage_bits,
)
from .sparsity import (
    SparsityReport,
    activation_sparsity_report,
    ho_slice_histogram,
    slice_level_sparsity,
    weight_sparsity_report,
)

__all__ = [
    "SliceStack",
    "slice_unsigned",
    "slice_sbr",
    "slice_dbs",
    "sbr_total_bits",
    "dbs_reconstruct_codes",
    "weight_vector_mask",
    "activation_vector_mask",
    "expand_weight_mask",
    "expand_activation_mask",
    "pad_to_multiple",
    "vector_sparsity",
    "RleToken",
    "RleStream",
    "rle_encode",
    "rle_decode",
    "rle_index_bits",
    "rle_index_bits_batch",
    "CompressedTensor",
    "compress_weight_slices",
    "compress_activation_slices",
    "decompress_weight_ho",
    "decompress_activation_ho",
    "dense_storage_bits",
    "SparsityReport",
    "slice_level_sparsity",
    "weight_sparsity_report",
    "activation_sparsity_report",
    "ho_slice_histogram",
]
