"""Slice-vector grouping and compressibility masks (paper Fig. 7a).

The AQS-GEMM groups high-order weight slices into ``v x 1`` column vectors
(``v`` consecutive output rows for one reduction index ``k``) and high-order
activation slices into ``1 x v`` row vectors (one ``k`` for ``v`` consecutive
output columns).  A vector is *compressible* when every slice in it equals
the layer's compressible value — 0 for SBR weights, ``r = zp'_HO`` for
asymmetrically-quantized activations.

Masks returned here use ``True`` = *uncompressed* (work to do), because all
downstream workload math sums uncompressed entries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad_to_multiple",
    "weight_vector_mask",
    "activation_vector_mask",
    "expand_weight_mask",
    "expand_activation_mask",
    "vector_sparsity",
]


def pad_to_multiple(x: np.ndarray, multiple: int, axis: int,
                    fill: int = 0) -> np.ndarray:
    """Pad ``x`` along ``axis`` up to the next multiple with ``fill``.

    Padding with the compressible value keeps sparsity statistics honest:
    padded vectors are fully compressible and cost nothing.
    """
    size = x.shape[axis]
    target = -(-size // multiple) * multiple
    if target == size:
        return x
    widths = [(0, 0)] * x.ndim
    widths[axis] = (0, target - size)
    return np.pad(x, widths, mode="constant", constant_values=fill)


def weight_vector_mask(ho_plane: np.ndarray, v: int = 4,
                       compress_value: int = 0) -> np.ndarray:
    """Uncompressed mask over weight HO slice vectors.

    ``ho_plane`` is the ``(M, K)`` high-order slice plane; vectors are groups
    of ``v`` consecutive rows per column.  Returns a boolean ``(ceil(M/v), K)``
    array, ``True`` where the vector contains at least one slice different
    from ``compress_value``.
    """
    padded = pad_to_multiple(np.asarray(ho_plane), v, axis=0, fill=compress_value)
    mg = padded.shape[0] // v
    grouped = padded.reshape(mg, v, padded.shape[1])
    return np.any(grouped != compress_value, axis=1)


def activation_vector_mask(ho_plane: np.ndarray, v: int = 4,
                           compress_value: int = 0) -> np.ndarray:
    """Uncompressed mask over activation HO slice vectors.

    ``ho_plane`` is the ``(K, N)`` high-order slice plane; vectors are groups
    of ``v`` consecutive columns per row.  Returns ``(K, ceil(N/v))``,
    ``True`` where the vector has a slice different from ``compress_value``
    (``r`` for asymmetric quantization, 0 for symmetric).
    """
    padded = pad_to_multiple(np.asarray(ho_plane), v, axis=1, fill=compress_value)
    ng = padded.shape[1] // v
    grouped = padded.reshape(padded.shape[0], ng, v)
    return np.any(grouped != compress_value, axis=2)


def expand_weight_mask(mask: np.ndarray, v: int, m: int) -> np.ndarray:
    """Expand a ``(M/v, K)`` vector mask to element granularity ``(m, K)``."""
    expanded = np.repeat(mask, v, axis=0)
    return expanded[:m]


def expand_activation_mask(mask: np.ndarray, v: int, n: int) -> np.ndarray:
    """Expand a ``(K, N/v)`` vector mask to element granularity ``(K, n)``."""
    expanded = np.repeat(mask, v, axis=1)
    return expanded[:, :n]


def vector_sparsity(uncompressed_mask: np.ndarray) -> float:
    """Fraction of vectors that are compressible (the paper's rho)."""
    total = uncompressed_mask.size
    if total == 0:
        return 0.0
    return 1.0 - float(np.count_nonzero(uncompressed_mask)) / total
