"""Slice- and vector-level sparsity analytics (paper Figs. 5a, 8, 14).

These helpers answer the questions the paper's evaluation asks of every
layer: how many HO slices are skippable, how does that survive grouping into
``v``-length vectors, and what does the histogram of HO slice values look
like under asymmetric quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .slicing import slice_dbs, slice_sbr, slice_unsigned
from .vectors import activation_vector_mask, vector_sparsity, weight_vector_mask

__all__ = [
    "SparsityReport",
    "slice_level_sparsity",
    "weight_sparsity_report",
    "activation_sparsity_report",
    "ho_slice_histogram",
]


@dataclass(frozen=True)
class SparsityReport:
    """Sparsity of one tensor's high-order slices.

    ``slice_sparsity`` is the fraction of individual HO slices equal to the
    compressible value; ``vector_sparsity`` is the fraction of whole ``v``-
    length vectors that are compressible (always <= slice_sparsity).
    """

    slice_sparsity: float
    vector_sparsity: float
    compress_value: int
    v: int
    n_slices: int

    def __post_init__(self) -> None:
        if self.vector_sparsity > self.slice_sparsity + 1e-9:
            raise AssertionError(
                "vector sparsity cannot exceed slice sparsity "
                f"({self.vector_sparsity} > {self.slice_sparsity})"
            )


def slice_level_sparsity(ho_plane: np.ndarray, compress_value: int = 0) -> float:
    """Fraction of HO slices equal to ``compress_value``."""
    plane = np.asarray(ho_plane)
    if plane.size == 0:
        return 0.0
    return float(np.count_nonzero(plane == compress_value)) / plane.size


def weight_sparsity_report(w_q: np.ndarray, total_bits: int = 7,
                           v: int = 4) -> SparsityReport:
    """SBR HO-slice sparsity of a symmetric integer weight matrix ``(M, K)``."""
    stack = slice_sbr(w_q, total_bits=total_bits)
    mask = weight_vector_mask(stack.ho, v=v, compress_value=0)
    return SparsityReport(
        slice_sparsity=slice_level_sparsity(stack.ho, 0),
        vector_sparsity=vector_sparsity(mask),
        compress_value=0,
        v=v,
        n_slices=stack.n_slices,
    )


def activation_sparsity_report(x_q: np.ndarray, r: int, lo_bits: int = 4,
                               total_bits: int = 8, v: int = 4) -> SparsityReport:
    """HO-slice sparsity of an asymmetric activation matrix ``(K, N)``.

    ``r`` is the compressible HO value (``zp'_HO`` after ZPM/DBS); ``lo_bits``
    selects the DBS split.  For symmetric baselines pass the signed codes
    shifted into unsigned range by the caller.
    """
    if lo_bits == 4:
        stack = slice_unsigned(x_q, total_bits=total_bits, slice_bits=4)
    else:
        stack = slice_dbs(x_q, lo_bits=lo_bits, total_bits=total_bits)
    mask = activation_vector_mask(stack.ho, v=v, compress_value=r)
    return SparsityReport(
        slice_sparsity=slice_level_sparsity(stack.ho, r),
        vector_sparsity=vector_sparsity(mask),
        compress_value=r,
        v=v,
        n_slices=stack.n_slices,
    )


def ho_slice_histogram(x_q: np.ndarray, lo_bits: int = 4,
                       total_bits: int = 8) -> np.ndarray:
    """Histogram of HO slice values (paper Fig. 5a / Fig. 8 distributions)."""
    if lo_bits == 4:
        ho = slice_unsigned(x_q, total_bits=total_bits, slice_bits=4).ho
    else:
        ho = slice_dbs(x_q, lo_bits=lo_bits, total_bits=total_bits).ho
    n_values = 1 << (total_bits - lo_bits)
    return np.bincount(ho.ravel().astype(np.int64), minlength=n_values)
