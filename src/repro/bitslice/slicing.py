"""Bit-slice representations (paper Fig. 3 and Fig. 10).

Three slicings are implemented:

* **straightforward unsigned slicing** [54]: a ``(4k+4)``-bit unsigned
  integer becomes ``k+1`` unsigned 4-bit slices with radix 16 — used for
  asymmetrically-quantized activations;
* **signed bit-slice representation (SBR)** [53]: a ``(3n+4)``-bit signed
  integer becomes ``n+1`` *signed* 4-bit slices with radix 8.  Each 3-bit
  low-order slice is sign-extended with the sign bit of the slice above it
  and the upper slice is incremented to compensate, so near-zero values of
  both signs produce all-zero high-order slices — used for symmetrically-
  quantized weights;
* **DBS slicing** (paper Fig. 10): an 8-bit unsigned integer is split at bit
  position ``l`` (4, 5 or 6) into an ``(8-l)``-bit HO slice and an ``l``-bit
  LO slice; the hardware keeps 4-bit datapaths by zero-padding the HO slice
  and discarding the ``l-4`` LSBs of the LO slice (lossy for ``l > 4``).

A :class:`SliceStack` records the slice planes together with each plane's
radix weight so reconstruction is always ``sum_i plane_i * weight_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SliceStack",
    "slice_unsigned",
    "slice_sbr",
    "slice_dbs",
    "sbr_total_bits",
    "unsigned_total_bits",
    "dbs_reconstruct_codes",
]


@dataclass(frozen=True)
class SliceStack:
    """A stack of bit-slice planes.

    ``planes[i]`` has the same shape as the source tensor; the represented
    value is ``sum_i planes[i] * weights[i]``.  Planes are ordered from the
    low-order slice (index 0) to the high-order slice (index -1).
    """

    planes: tuple[np.ndarray, ...]
    weights: tuple[int, ...]
    signed: bool
    lossy: bool = False

    def __post_init__(self) -> None:
        if len(self.planes) != len(self.weights):
            raise ValueError("planes and weights must have equal length")
        if not self.planes:
            raise ValueError("a slice stack needs at least one plane")

    @property
    def n_slices(self) -> int:
        return len(self.planes)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.planes[0].shape

    @property
    def ho(self) -> np.ndarray:
        """The high-order slice plane."""
        return self.planes[-1]

    @property
    def lo(self) -> np.ndarray:
        """The low-order slice plane."""
        return self.planes[0]

    @property
    def ho_weight(self) -> int:
        return self.weights[-1]

    def reconstruct(self) -> np.ndarray:
        """Recombine the planes into integer values."""
        out = np.zeros(self.shape, dtype=np.int64)
        for plane, weight in zip(self.planes, self.weights):
            out += plane.astype(np.int64) * weight
        return out

    def to_state(self) -> dict:
        """Serializable snapshot: plain ndarrays and scalars only.

        Layer plans embed slice stacks; this keeps them storable with
        ``np.savez``/pickle-free formats.  Round-trips exactly through
        :meth:`from_state`.
        """
        return {
            "planes": [np.asarray(p) for p in self.planes],
            "weights": [int(w) for w in self.weights],
            "signed": bool(self.signed),
            "lossy": bool(self.lossy),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SliceStack":
        """Rebuild a stack from :meth:`to_state` output."""
        return cls(
            planes=tuple(np.asarray(p, dtype=np.int64)
                         for p in state["planes"]),
            weights=tuple(int(w) for w in state["weights"]),
            signed=bool(state["signed"]),
            lossy=bool(state["lossy"]),
        )


def unsigned_total_bits(n_slices: int, slice_bits: int = 4) -> int:
    """Total bit-width covered by straightforward unsigned slicing."""
    return n_slices * slice_bits


def slice_unsigned(q: np.ndarray, total_bits: int = 8,
                   slice_bits: int = 4) -> SliceStack:
    """Straightforward slicing of unsigned integers (paper Fig. 3a).

    ``total_bits`` must be a multiple of ``slice_bits``; each plane holds
    values in ``[0, 2**slice_bits - 1]`` and plane ``i`` has radix weight
    ``2**(slice_bits * i)``.
    """
    q = np.asarray(q, dtype=np.int64)
    if total_bits % slice_bits:
        raise ValueError(
            f"total_bits={total_bits} is not a multiple of slice_bits={slice_bits}"
        )
    if np.any(q < 0) or np.any(q >= (1 << total_bits)):
        raise ValueError(f"values out of range for {total_bits}-bit unsigned")
    n = total_bits // slice_bits
    mask = (1 << slice_bits) - 1
    planes = tuple((q >> (slice_bits * i)) & mask for i in range(n))
    weights = tuple(1 << (slice_bits * i) for i in range(n))
    return SliceStack(planes=planes, weights=weights, signed=False)


def sbr_total_bits(n_lo_slices: int) -> int:
    """Bit-width of the SBR format with ``n`` low-order slices: ``3n + 4``."""
    return 3 * n_lo_slices + 4


def slice_sbr(q: np.ndarray, total_bits: int = 7) -> SliceStack:
    """Signed bit-slice representation (paper Fig. 3b).

    A ``(3n+4)``-bit signed integer is decomposed into ``n+1`` slices, each in
    ``[-8, 7]``, with radix weight ``8**i``.  The decomposition extracts the
    low 3 bits, then *borrows* from the remaining upper value whenever that
    upper value is negative — this is exactly the paper's "append the sign
    bit of the HO slice, then add 0001 to the HO slice" rule, generalized to
    any number of slices.  Values in ``[-8, 7]`` therefore have all-zero
    high-order slices.
    """
    q = np.asarray(q, dtype=np.int64)
    if (total_bits - 4) % 3:
        raise ValueError(f"SBR needs total_bits = 3n+4, got {total_bits}")
    n = (total_bits - 4) // 3
    lo_bound, hi_bound = -(1 << (total_bits - 1)), (1 << (total_bits - 1)) - 1
    if np.any(q < lo_bound) or np.any(q > hi_bound):
        raise ValueError(f"values out of range for {total_bits}-bit signed")
    planes: list[np.ndarray] = []
    rest = q.copy()
    for _ in range(n):
        lo = rest & 7                      # 3-bit unsigned slice
        rest = (rest - lo) >> 3            # remaining signed upper value
        borrow = rest < 0                  # sign bit of the slice above
        lo = lo - np.where(borrow, 8, 0)   # extend to 4-bit signed
        rest = rest + borrow.astype(np.int64)  # compensate the borrow
        planes.append(lo)
    planes.append(rest)                    # 4-bit signed HO slice
    if np.any(planes[-1] < -8) or np.any(planes[-1] > 7):
        raise AssertionError("SBR high-order slice escaped [-8, 7]")
    weights = tuple(8 ** i for i in range(n + 1))
    return SliceStack(planes=tuple(planes), weights=weights, signed=True)


def slice_dbs(q: np.ndarray, lo_bits: int = 4, total_bits: int = 8) -> SliceStack:
    """DBS slicing of unsigned activations (paper Fig. 10).

    The 8-bit code is split at bit ``lo_bits`` (``l``): the HO slice is
    ``q >> l`` (at most 4 bits after the zero-padding the hardware applies)
    and the LO slice keeps only the top 4 bits of the ``l`` low bits, i.e.
    ``(q & (2^l - 1)) >> (l - 4)``.  For ``l > 4`` the dropped LSBs make the
    representation lossy; :meth:`SliceStack.reconstruct` then returns the
    *truncated* codes, which is what the accelerator actually computes with.
    """
    q = np.asarray(q, dtype=np.int64)
    if lo_bits < 4 or lo_bits >= total_bits:
        raise ValueError(f"lo_bits must be in [4, {total_bits - 1}], got {lo_bits}")
    if np.any(q < 0) or np.any(q >= (1 << total_bits)):
        raise ValueError(f"values out of range for {total_bits}-bit unsigned")
    ho = q >> lo_bits
    lo_full = q & ((1 << lo_bits) - 1)
    drop = lo_bits - 4
    lo_kept = lo_full >> drop
    planes = (lo_kept, ho)
    weights = (1 << drop, 1 << lo_bits)
    return SliceStack(planes=planes, weights=weights, signed=False,
                      lossy=drop > 0)


def dbs_reconstruct_codes(q: np.ndarray, lo_bits: int,
                          total_bits: int = 8) -> np.ndarray:
    """Return the codes the hardware effectively uses after DBS truncation."""
    return slice_dbs(q, lo_bits, total_bits).reconstruct()
