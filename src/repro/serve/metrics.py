"""Serving-side measurement primitives.

:class:`LatencyStats` is the one accumulator every serving layer uses for
wall-clock observations — queue waits, engine-batch execution, end-to-end
request latency.  It keeps exact lifetime count/total/min/max plus a bounded
reservoir for percentiles, so an unbounded request stream accounts in
constant memory (matching :class:`PanaceaSession`'s ``max_records``
philosophy: lifetime totals never stop, detail is bounded).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyStats", "ServerMetrics"]


@dataclass
class LatencyStats:
    """Streaming latency accumulator with bounded percentile detail.

    ``observe`` is O(1); percentiles come from the newest ``max_samples``
    observations (a sliding window, the usual serving-dashboard view), while
    ``count``/``mean_s``/``min_s``/``max_s`` are exact over the lifetime.
    """

    max_samples: int = 4096
    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    _samples: list[float] = field(default_factory=list, repr=False)
    _head: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {self.max_samples}")

    def observe(self, seconds: float) -> None:
        """Record one wall-clock observation (in seconds)."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:  # ring buffer: overwrite the oldest retained sample
            self._samples[self._head] = seconds
            self._head = (self._head + 1) % self.max_samples

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained window (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"p must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def samples(self) -> list[float]:
        """The retained reservoir, oldest-to-newest (ring unrolled).

        The public view the Prometheus histogram serializer scales up to
        the lifetime count; also what :meth:`merge` pools, so "newest
        kept" is literal even after the ring has wrapped.
        """
        return self._samples[self._head:] + self._samples[:self._head]

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Combined view of two accumulators (server-level rollups).

        Lifetime aggregates add *exactly* — count and total sum, min/max
        take extrema — so merging is associative and merging with a fresh
        accumulator is the identity on every exact field.  The percentile
        window concatenates in time order (each ring unrolled oldest to
        newest) and re-bounds to ``max_samples``, newest kept — the usual
        approximation for merged dashboards, and itself exact whenever
        the pooled reservoirs fit the bound.
        """
        merged = LatencyStats(max_samples=self.max_samples)
        merged.count = self.count + other.count
        merged.total_s = self.total_s + other.total_s
        merged.min_s = min(self.min_s, other.min_s)
        merged.max_s = max(self.max_s, other.max_s)
        pool = self.samples() + other.samples()
        merged._samples = pool[-merged.max_samples:]
        return merged

    def summary(self) -> dict:
        """Dashboard dict: count, mean/p50/p95/max in milliseconds."""
        return {
            "count": self.count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p95_ms": self.percentile(95.0) * 1e3,
            "max_ms": (self.max_s if self.count else 0.0) * 1e3,
        }


@dataclass
class ServerMetrics:
    """One consistent server-wide snapshot: deployments, workers, caches.

    Built by :meth:`~repro.serve.server.ModelServer.metrics`; the rollup the
    operator dashboard reads.  ``n_requests`` counts engine-served requests,
    ``n_cache_hits`` the requests a deployment's result cache answered
    instead, ``n_failed`` the riders of batches that raised and
    ``n_cancelled`` the async submissions dequeued by cancellation — so
    ``n_requests + n_cache_hits + n_failed + n_cancelled`` accounts for
    everything submitted (the first two alone only when nothing failed or
    was cancelled);
    ``workers`` is the :class:`~repro.serve.pool.WorkerPool` summary (or
    ``None`` when the server runs inline) whose per-worker utilization list
    answers "are my workers actually overlapping?"; ``process_workers`` is
    the :class:`~repro.serve.procpool.ProcessWorkerPool` summary on
    ``backend='process'`` servers (``None`` otherwise) — its
    ``n_crashes``/``n_pipe_fallback`` counters are the crash-recovery and
    shared-memory-transport health view, and its ``stage_edges`` map holds
    the per-stage-edge ring counters (frames, slot wraps, pipe fallbacks)
    of process-per-stage sharded deployments; ``cache`` sums every
    deployment's cache counters into one server-wide hit-rate;
    ``pipelines`` maps each *sharded* deployment to its per-stage
    execution/stall latency view (``None`` when nothing is sharded) — the
    dashboard that answers "which stage is the pipeline's bottleneck?";
    a process-per-stage pipeline's view also carries its ``stage_edges``
    transport counters; ``decode`` sums every deployment's
    continuous-batching decoder counters (completed decodes, engine steps,
    generated tokens, failures — ``None`` when nothing decoded) and
    ``prefix_cache`` the decoders' longest-prefix KV caches, whose
    ``hits``/``misses``/``seeded_tokens`` are conserved against the
    per-deployment stats embedded under ``deployments``.
    """

    n_deployments: int
    n_requests: int
    n_batches: int
    n_failed: int
    n_cache_hits: int
    n_cancelled: int
    queue_wait: dict
    deployments: dict
    workers: dict | None = None
    process_workers: dict | None = None
    cache: dict | None = None
    pipelines: dict | None = None
    decode: dict | None = None
    prefix_cache: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        """Server-wide hit fraction over every deployment's lookups."""
        if not self.cache:
            return 0.0
        lookups = self.cache["hits"] + self.cache["misses"]
        return self.cache["hits"] / lookups if lookups else 0.0

    def summary(self) -> dict:
        """Flat dashboard dict (deployment detail under ``deployments``)."""
        return {
            "n_deployments": self.n_deployments,
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "n_failed": self.n_failed,
            "n_cache_hits": self.n_cache_hits,
            "n_cancelled": self.n_cancelled,
            "cache_hit_rate": self.cache_hit_rate,
            "queue_wait": self.queue_wait,
            "workers": self.workers,
            "process_workers": self.process_workers,
            "cache": self.cache,
            "pipelines": self.pipelines,
            "decode": self.decode,
            "prefix_cache": self.prefix_cache,
            "deployments": self.deployments,
        }
