"""Seeded open-loop load generation for the gateway.

A closed-loop client (send, wait, send again) self-throttles when the
server slows down, flattering every latency number.  Real traffic does
not: arrivals keep coming at the offered rate whether or not the server
keeps up, and the only honest overload measurements — goodput, tail
latency, shed rate vs *offered* load — come from an open-loop driver.
This module is that driver:

* arrival processes: :class:`PoissonArrivals` (memoryless, the classic
  open-loop model) and :class:`MMPPArrivals` (a two-state Markov-modulated
  Poisson process whose high-rate state produces the bursts that defeat
  fixed micro-batch delays);
* :class:`TenantSpec`: one tenant's traffic — target deployment, arrival
  process, request kind (one-shot ``infer`` or autoregressive ``decode``),
  and a heavy-tail size mix (decode prompts via
  :func:`repro.models.zoo.proxy_prompts`, infer batch rows log-uniform);
* :func:`build_schedule`: the *deterministic* part — expands tenant specs
  into a time-sorted list of :class:`PlannedRequest` with materialized
  payloads, so a benchmark can precompute every expected response
  bit-exactly before a single packet is sent;
* :func:`run_schedule`: the asyncio client that replays a schedule
  open-loop (each request fires at its scheduled offset on its own
  connection; a slow server never delays the next arrival) and records
  per-request :class:`RequestOutcome`;
* :func:`summarize`: goodput, p50/p95/p99 latency, SLO attainment and
  shed rate from the outcome list.

Everything is seeded: the same ``(tenants, duration, seed)`` triple yields
the same schedule, byte for byte, which is what lets CI compare two
scheduler policies under identical offered load.
"""

from __future__ import annotations

import asyncio
import base64
import json
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PoissonArrivals", "MMPPArrivals", "TenantSpec", "PlannedRequest",
    "RequestOutcome", "build_schedule", "run_schedule", "summarize",
]


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate_rps``: i.i.d. exponential gaps."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")

    def times(self, rng: np.random.Generator, duration_s: float) -> list:
        """Arrival offsets in ``[0, duration_s)``, ascending."""
        out, t = [], 0.0
        while True:
            t += rng.exponential(1.0 / self.rate_rps)
            if t >= duration_s:
                return out
            out.append(t)


@dataclass(frozen=True)
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process: bursty arrivals.

    The process alternates between a ``base_rps`` state and a
    ``burst_rps`` state; dwell times are exponential with means
    ``mean_dwell_s`` (base) and ``mean_burst_s`` (burst).  Within a state
    arrivals are Poisson at that state's rate — so the long-run offered
    rate is a dwell-weighted mix, but the *instantaneous* rate spikes,
    which is exactly the traffic shape that separates deadline-driven
    batch release from a fixed delay.
    """

    base_rps: float
    burst_rps: float
    mean_dwell_s: float = 1.0
    mean_burst_s: float = 0.25

    def __post_init__(self) -> None:
        if self.base_rps <= 0 or self.burst_rps <= 0:
            raise ValueError("arrival rates must be > 0, got "
                             f"{self.base_rps}/{self.burst_rps}")
        if self.mean_dwell_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("dwell means must be > 0")

    def times(self, rng: np.random.Generator, duration_s: float) -> list:
        """Arrival offsets in ``[0, duration_s)``, ascending."""
        out: list = []
        t = 0.0
        bursting = False
        while t < duration_s:
            dwell = rng.exponential(
                self.mean_burst_s if bursting else self.mean_dwell_s)
            rate = self.burst_rps if bursting else self.base_rps
            end = min(t + dwell, duration_s)
            arrival = t + rng.exponential(1.0 / rate)
            while arrival < end:
                out.append(arrival)
                arrival += rng.exponential(1.0 / rate)
            t = end
            bursting = not bursting
        return out


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's open-loop traffic against one deployment.

    ``kind='infer'`` sends one-shot forwards whose row count draws from
    ``[min_rows, max_rows]`` (log-uniform when ``heavy_tail`` — mostly
    small requests, a few large, the mix micro-batching exists for) with
    feature shape ``feature_shape``.  ``kind='decode'`` sends
    autoregressive requests whose prompts come from
    :func:`repro.models.zoo.proxy_prompts` on ``proxy`` (honoring the same
    ``heavy_tail`` flag) with ``max_new_tokens`` generation budget.
    ``slo_s`` is the per-request latency objective ``summarize`` scores
    goodput against.
    """

    name: str
    deployment: str
    arrivals: "PoissonArrivals | MMPPArrivals"
    kind: str = "infer"
    feature_shape: tuple = (16,)
    min_rows: int = 1
    max_rows: int = 4
    heavy_tail: bool = False
    proxy: str = "gpt2"
    min_prompt: int = 4
    max_prompt: int = 16
    max_new_tokens: int = 8
    slo_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ("infer", "decode"):
            raise ValueError(f"kind must be 'infer' or 'decode', "
                             f"got {self.kind!r}")
        if not 1 <= self.min_rows <= self.max_rows:
            raise ValueError("need 1 <= min_rows <= max_rows, got "
                             f"[{self.min_rows}, {self.max_rows}]")
        if self.slo_s <= 0:
            raise ValueError(f"slo_s must be > 0, got {self.slo_s}")


@dataclass(frozen=True)
class PlannedRequest:
    """One scheduled request: fire at offset ``t``, payload materialized."""

    t: float
    tenant: str
    deployment: str
    kind: str
    slo_s: float
    x: np.ndarray | None = None          # infer payload
    prompt: np.ndarray | None = None     # decode payload
    max_new_tokens: int | None = None


@dataclass
class RequestOutcome:
    """What one planned request actually got back."""

    request: PlannedRequest
    status: int                  # HTTP status; 0 = transport failure
    latency_s: float
    error: str | None = None     # error class/code from the response body
    output: np.ndarray | None = field(default=None, repr=False)
    tokens: list | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def within_slo(self) -> bool:
        return self.ok and self.latency_s <= self.request.slo_s


def _rows(spec: TenantSpec, rng: np.random.Generator) -> int:
    if spec.min_rows == spec.max_rows:
        return spec.min_rows
    if spec.heavy_tail:
        # Log-uniform rows: mass at min_rows, tail to max_rows (mirrors
        # proxy_prompts' length mix).
        log = rng.uniform(np.log(spec.min_rows), np.log(spec.max_rows + 1))
        return int(np.clip(np.exp(log), spec.min_rows, spec.max_rows))
    return int(rng.integers(spec.min_rows, spec.max_rows + 1))


def build_schedule(tenants, duration_s: float, *,
                   seed: int = 0) -> list:
    """Expand tenant specs into one time-sorted request schedule.

    Deterministic: each tenant draws from its own
    ``default_rng([seed, index])`` stream, so adding a tenant never
    perturbs another tenant's arrivals or payloads, and the same inputs
    reproduce the same schedule exactly — benchmarks precompute expected
    outputs from it before issuing any traffic.
    """
    from ..models.zoo import proxy_prompts

    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    schedule: list = []
    for idx, spec in enumerate(tenants):
        rng = np.random.default_rng([seed, idx])
        times = spec.arrivals.times(rng, duration_s)
        if spec.kind == "decode":
            prompts = proxy_prompts(
                spec.proxy, len(times), min_len=spec.min_prompt,
                max_len=spec.max_prompt, heavy_tail=spec.heavy_tail,
                seed=int(rng.integers(0, 2**31)))
            for t, prompt in zip(times, prompts):
                schedule.append(PlannedRequest(
                    t=float(t), tenant=spec.name,
                    deployment=spec.deployment, kind="decode",
                    slo_s=spec.slo_s, prompt=prompt,
                    max_new_tokens=spec.max_new_tokens))
        else:
            for t in times:
                x = rng.normal(0.0, 1.0,
                               (_rows(spec, rng),) + tuple(spec.feature_shape))
                schedule.append(PlannedRequest(
                    t=float(t), tenant=spec.name,
                    deployment=spec.deployment, kind="infer",
                    slo_s=spec.slo_s, x=x))
    schedule.sort(key=lambda r: r.t)
    return schedule


# -- the open-loop client -----------------------------------------------------

def _request_bytes(req: PlannedRequest) -> bytes:
    if req.kind == "decode":
        body = {"prompt": [int(tok) for tok in req.prompt],
                "tenant": req.tenant}
        if req.max_new_tokens is not None:
            body["max_new_tokens"] = int(req.max_new_tokens)
        path = f"/v1/decode/{req.deployment}"
    else:
        x = np.ascontiguousarray(req.x)
        body = {"input_b64": base64.b64encode(x.tobytes()).decode("ascii"),
                "dtype": str(x.dtype), "shape": list(x.shape),
                "tenant": req.tenant}
        path = f"/v1/infer/{req.deployment}"
    payload = json.dumps(body).encode()
    head = (f"POST {path} HTTP/1.1\r\nHost: loadgen\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n")
    return head.encode() + payload


def _parse_response(raw: bytes) -> tuple:
    """``(status, json body)`` from a Connection: close HTTP response."""
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split(" ")[1])
    return status, (json.loads(body) if body else {})


async def _issue(host: str, port: int, req: PlannedRequest,
                 timeout_s: float, keep_outputs: bool) -> RequestOutcome:
    t0 = time.perf_counter()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_request_bytes(req))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout=timeout_s)
        writer.close()
        status, body = _parse_response(raw)
    except (OSError, asyncio.TimeoutError, ValueError, IndexError,
            json.JSONDecodeError) as exc:
        return RequestOutcome(request=req, status=0,
                              latency_s=time.perf_counter() - t0,
                              error=type(exc).__name__)
    latency = time.perf_counter() - t0
    outcome = RequestOutcome(request=req, status=status, latency_s=latency,
                             error=body.get("code") or body.get("error")
                             if status != 200 else None)
    if status == 200 and keep_outputs:
        if "output_b64" in body:
            outcome.output = np.frombuffer(
                base64.b64decode(body["output_b64"]),
                dtype=np.dtype(body["dtype"])).reshape(body["shape"])
        elif "tokens" in body:
            outcome.tokens = [int(tok) for tok in body["tokens"]]
    return outcome


async def _run_open_loop(host, port, schedule, timeout_s, keep_outputs):
    start = time.perf_counter()
    tasks = []
    for req in schedule:
        delay = req.t - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        # Fire-and-track: the next arrival never waits on this response —
        # the open-loop property everything downstream depends on.
        tasks.append(asyncio.ensure_future(
            _issue(host, port, req, timeout_s, keep_outputs)))
    return await asyncio.gather(*tasks)


def run_schedule(host: str, port: int, schedule, *,
                 timeout_s: float = 30.0,
                 keep_outputs: bool = True) -> list:
    """Replay a schedule open-loop against a gateway; one
    :class:`RequestOutcome` per planned request, schedule order.

    Each request opens its own connection (``Connection: close``) at its
    scheduled offset regardless of how many earlier requests are still in
    flight; if the replay falls behind (the client host itself saturated),
    late requests fire immediately rather than silently stretching the
    offered load.  ``keep_outputs=False`` drops response payloads for
    long measurement runs.
    """
    return asyncio.run(
        _run_open_loop(host, port, list(schedule), timeout_s, keep_outputs))


def _percentile(ordered: list, p: float) -> float:
    if not ordered:
        return 0.0
    rank = max(1, int(np.ceil(p / 100.0 * len(ordered))))
    return ordered[rank - 1]


def summarize(outcomes, duration_s: float) -> dict:
    """Roll an outcome list up into the overload dashboard.

    ``goodput_rps`` counts only responses that completed *within their
    SLO* (per second of schedule duration) — completing late is not good
    throughput; ``slo_attainment`` is the within-SLO fraction of offered
    load, ``shed_rate`` the fraction refused with 429/503, and the
    latency percentiles are nearest-rank over completed requests.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    outcomes = list(outcomes)
    completed = [o for o in outcomes if o.ok]
    shed = sum(1 for o in outcomes if o.status == 503)
    rejected = sum(1 for o in outcomes if o.status == 429)
    failed = sum(1 for o in outcomes
                 if not o.ok and o.status not in (429, 503))
    within = sum(1 for o in completed if o.within_slo)
    lat = sorted(o.latency_s for o in completed)
    offered = len(outcomes)
    return {
        "offered": offered,
        "offered_rps": offered / duration_s,
        "completed": len(completed),
        "shed": shed,
        "rejected": rejected,
        "failed": failed,
        "goodput_rps": within / duration_s,
        "slo_attainment": within / offered if offered else 0.0,
        "shed_rate": (shed + rejected) / offered if offered else 0.0,
        "p50_ms": _percentile(lat, 50.0) * 1e3,
        "p95_ms": _percentile(lat, 95.0) * 1e3,
        "p99_ms": _percentile(lat, 99.0) * 1e3,
        "max_ms": (lat[-1] * 1e3) if lat else 0.0,
    }
