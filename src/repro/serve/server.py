"""Multi-model serving front end over prepared sessions.

:class:`ModelServer` hosts many named deployments — any (model variant ×
scheme × exec_path) combination, each backed by its own prepared
:class:`~repro.engine.session.PanaceaSession` and
:class:`~repro.serve.batching.MicroBatcher` — behind one submit API:

    server = ModelServer(workers=4, cache_bytes=32 << 20)
    server.register("bert-aqs", session, policy=BatchPolicy(max_batch=8))
    ticket = server.submit("bert-aqs", request)
    out = ticket.result()                       # bit-exact vs solo runs
    future = server.submit_async("bert-aqs", request)   # concurrent path
    out = future.result()

Deployments can come from three sources: an already-prepared session
(:meth:`register`), a proxy-zoo build calibrated in place
(:meth:`deploy_proxy`), or a :class:`~repro.serve.store.PlanStore` file
(:meth:`load`) — the latter serving with zero re-prepare work.

``workers`` attaches a :class:`~repro.serve.pool.WorkerPool`: queue drains
(:meth:`flush`/:meth:`pump`) then fan out across deployments so every
engine is busy simultaneously, and :meth:`submit_async` service runs on the
pool instead of the submitting thread.  Sessions serialize themselves, so
concurrency never reorders accounting within a deployment — and outputs
stay bit-exact against serial execution (the conformance suite asserts it).
``cache_bytes`` gives every deployment whose policy did not choose its own
budget a content-addressed result cache of that size.

Lifetime metrics per deployment combine the session's op/sparsity
accounting with the scheduler's queue/latency view; :meth:`metrics` rolls
deployments, per-worker utilization and cache hit-rates into one
:class:`~repro.serve.metrics.ServerMetrics` snapshot.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import Future
from dataclasses import dataclass, replace

import numpy as np

from ..engine.session import PanaceaSession
from ..obs import MetricsRegistry, Trace, TraceBuffer
from .batching import (BatchPolicy, DecodeBatcher, DecodePolicy, DecodeTicket,
                       MicroBatcher, Ticket)
from .metrics import LatencyStats, ServerMetrics
from .pool import BackendCapabilityError, WorkerPool

__all__ = ["ModelServer", "ModelEntry"]


@dataclass
class ModelEntry:
    """One hosted deployment: a named session plus its scheduler.

    ``session`` is either a plain :class:`PanaceaSession` or a
    :class:`~repro.shard.session.ShardedSession` (deployed with
    ``shards >= 2``) — both expose the serving surface the scheduler
    consumes; a sharded deployment additionally reports per-stage pipeline
    metrics.
    """

    name: str
    session: PanaceaSession
    batcher: MicroBatcher
    #: Whole-deployment execution lives in the process pool (the session
    #: is a :class:`~repro.serve.procpool.ProcessSessionProxy`), so
    #: unregister must unload it from the workers.  Sharded deployments —
    #: remote or not — stay False: their sessions release their own
    #: backend resources in ``close()``.
    remote: bool = False
    #: The deployment's continuous-batching decoder, created lazily by the
    #: first ``submit_decode`` (None until then, and forever on deployments
    #: whose model has no incremental path).
    decoder: DecodeBatcher | None = None
    #: The decode policy the lazy decoder will be built with.
    decode_policy: DecodePolicy | None = None
    #: Per-deployment trace sampling override; ``None`` defers to the
    #: server-wide rate.
    trace_sample: float | None = None

    @property
    def policy(self) -> BatchPolicy:
        return self.batcher.policy

    @property
    def cache(self):
        """The deployment's result cache (None when caching is off)."""
        return self.batcher.cache

    @property
    def sharded(self) -> bool:
        """Whether this deployment executes through a stage pipeline."""
        return hasattr(self.session, "stage_stats")

    def stats(self) -> dict:
        """Session lifetime accounting merged with scheduler metrics."""
        stats = {
            "name": self.name,
            "session": self.session.stats(),
            "scheduler": self.batcher.stats(),
        }
        if self.sharded:
            stats["pipeline"] = self.session.stage_stats()
        if self.decoder is not None:
            stats["decode"] = self.decoder.stats()
        return stats


class ModelServer:
    """Hosts named model deployments behind a single submit API.

    ``workers=0`` (the default) keeps every call on the caller's thread —
    the exact historical behaviour.  ``workers >= 1`` starts a
    :class:`WorkerPool` used by :meth:`submit_async`, :meth:`flush` and
    :meth:`pump`; call :meth:`close` (or use the server as a context
    manager) to drain and join it.

    ``backend`` picks where deployment *execution* happens.  The default
    ``"thread"`` serves in-process; ``"process"`` additionally starts a
    :class:`~repro.serve.procpool.ProcessWorkerPool` of ``workers``
    spawned, BLAS-pinned worker processes and routes every registered
    deployment's forward passes to them (sessions rehydrated per worker
    from a plan-store snapshot, activations over shared memory), while
    the MicroBatcher, ResultCache and all metrics stay in the parent.
    Outputs are bit-exact across backends; a crashed worker fails only
    its in-flight batch and is respawned.
    """

    def __init__(self, default_policy: BatchPolicy | None = None, *,
                 clock=None, workers: int = 0, cache_bytes: int = 0,
                 backend: str = "thread",
                 blas_threads: int | None = None,
                 default_decode_policy: DecodePolicy | None = None,
                 trace_sample: float = 1.0,
                 trace_buffer: int = 256) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {cache_bytes}")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {trace_sample}")
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}")
        if backend == "process" and workers < 1:
            raise ValueError(
                "backend='process' needs workers >= 1 (the process pool "
                "size); workers=0 is inline thread serving")
        self.default_policy = default_policy or BatchPolicy()
        self.default_decode_policy = default_decode_policy or DecodePolicy()
        self.cache_bytes = cache_bytes
        self.backend = backend
        self._clock = clock
        #: Server-wide trace sampling rate (1.0 = trace every request);
        #: deployments may override via ``register(trace_sample=...)``.
        self.trace_sample = trace_sample
        #: Bounded trace store; a trace is registered here at ingress, so
        #: in-flight requests are already retrievable by id.
        self.traces = TraceBuffer(trace_buffer)
        self._trace_rng = random.Random()
        self._registry: MetricsRegistry | None = None
        self._entries: dict[str, ModelEntry] = {}
        # Guards deployment lifecycle vs iteration: register/unregister
        # from one thread must not crash a pump/flush/stats walking the
        # deployment dict on another.  Single-name lookups stay lock-free
        # (atomic in CPython); every iteration works on a snapshot.
        self._entries_lock = threading.Lock()
        # The thread pool stays even with the process backend: it runs the
        # scheduler (submit_async service honoring max_delay_s) while the
        # process pool runs the engines — one blocked round trip per
        # in-flight batch, so the two are sized together.
        self._pool = WorkerPool(workers) if workers else None
        self._proc_pool = None
        self._proc_store_dir: str | None = None
        if backend == "process":
            from .procpool import ProcessWorkerPool

            self._proc_pool = ProcessWorkerPool(workers,
                                                blas_threads=blas_threads)

    @property
    def pool(self) -> WorkerPool | None:
        """The attached worker pool (None when serving inline)."""
        return self._pool

    @property
    def process_pool(self):
        """The process execution tier (None for the thread backend)."""
        return self._proc_pool

    @property
    def workers(self) -> int:
        return self._pool.workers if self._pool is not None else 0

    # -- deployment lifecycle -------------------------------------------------
    def _effective_policy(self, policy: BatchPolicy | None) -> BatchPolicy:
        """Resolve a deployment policy against the server-wide defaults.

        The server's ``cache_bytes`` applies to any policy that did not
        choose its own budget, so one constructor knob turns on caching for
        every deployment.
        """
        base = policy or self.default_policy
        if self.cache_bytes > 0 and base.cache_bytes == 0:
            base = replace(base, cache_bytes=self.cache_bytes)
        return base

    def _shard_session(self, session: PanaceaSession, shards: int,
                       shard_plan, depth: int, shard_sample, *,
                       name: str | None = None,
                       stage_workers: int | None = None,
                       model_name: str | None = None, model_factory=None,
                       store_path=None, model_seed: int = 0):
        """Wrap a session for pipelined execution when ``shards >= 2``.

        The sharded session owns a dedicated stage pool (one
        :class:`WorkerPool` sized to its stage count unless
        ``stage_workers`` overrides it), closed at unregister/close time.
        Stage tasks deliberately do **not** share the server's serve pool:
        serve tasks block on service locks and rider windows, so a
        pipeline driver holding a deployment's service lock while its
        stage tasks queue behind blocked serve tasks is a deadlock —
        dedicated stage workers can always make progress.  ``shard_plan``
        pins an explicit (e.g. rehydrated)
        :class:`~repro.shard.plan.ShardPlan`; otherwise the auto-partitioner
        balances stages from ``shard_sample`` measurements (modeled MAC
        costs when no sample is given).

        On the process backend the stages execute **process-per-stage**:
        the session is snapshotted to a plan store (unless ``store_path``
        already points at one) and the sharded session registers its
        stages on the server's :class:`ProcessWorkerPool`, activations
        crossing between stages over per-edge shared-memory rings.
        """
        from ..shard import ShardedSession, auto_partition

        if shard_plan is None:
            shard_plan = auto_partition(session, shards, sample=shard_sample)
        elif shards and shards != shard_plan.n_stages:
            raise ValueError(
                f"shards={shards} conflicts with the explicit shard plan's "
                f"{shard_plan.n_stages} stages")
        if self._proc_pool is None:
            return ShardedSession(session, shard_plan, depth=depth,
                                  workers=stage_workers)
        if model_name is None and model_factory is None \
                and store_path is None:
            raise ValueError(
                f"deployment {name!r} on backend='process' needs "
                "model_name (a proxy-zoo reference) or model_factory (a "
                "picklable zero-arg callable) so the workers can rebuild "
                "the float model")
        if store_path is None:
            store_path = self._snapshot_store(name, session, model_name,
                                              model_seed,
                                              shard_plan=shard_plan)
        return ShardedSession(session, shard_plan, pool=self._proc_pool,
                              depth=depth, workers=stage_workers,
                              store_path=store_path,
                              model_factory=model_factory, name=name)

    def _snapshot_store(self, name: str, session: PanaceaSession,
                        model_name: str | None, model_seed: int,
                        shard_plan=None):
        """Snapshot a session to a server-owned plan store for the workers."""
        import pathlib
        import tempfile

        from .store import PlanStore

        if self._proc_store_dir is None:
            self._proc_store_dir = tempfile.mkdtemp(prefix="repro-serve-")
        store_path = (pathlib.Path(self._proc_store_dir)
                      / f"{name.replace('/', '_')}.plans.npz")
        PlanStore(store_path).save(session, model_name=model_name,
                                   seed=model_seed, shard_plan=shard_plan)
        return store_path

    def _deploy_process(self, name: str, session: PanaceaSession,
                        model_name: str | None, model_factory,
                        store_path=None, model_seed: int = 0):
        """Move a deployment's execution into the worker processes.

        The session is snapshotted to a plan store under a server-owned
        temp directory (unless ``store_path`` already points at one, the
        :meth:`load` path) and every worker rehydrates it; the returned
        :class:`~repro.serve.procpool.ProcessSessionProxy` is what the
        parent-side scheduler drives.  Workers need the float architecture
        too, so either the store's proxy-zoo reference or a picklable
        ``model_factory`` must identify it.
        """
        from .procpool import ProcessSessionProxy

        if model_name is None and model_factory is None \
                and store_path is None:
            raise ValueError(
                f"deployment {name!r} on backend='process' needs "
                "model_name (a proxy-zoo reference) or model_factory (a "
                "picklable zero-arg callable) so the workers can rebuild "
                "the float model")
        if store_path is None:
            store_path = self._snapshot_store(name, session, model_name,
                                              model_seed)
        self._proc_pool.load_deployment(
            name, store_path, model_factory=model_factory,
            max_records=session.max_records)
        return ProcessSessionProxy(self._proc_pool, name)

    def register(self, name: str, session: PanaceaSession,
                 policy: BatchPolicy | None = None, *, shards: int = 0,
                 shard_plan=None, depth: int = 2, shard_sample=None,
                 stage_workers: int | None = None,
                 model_name: str | None = None, model_factory=None,
                 store_path=None, model_seed: int = 0,
                 decode_policy: DecodePolicy | None = None,
                 trace_sample: float | None = None) -> ModelEntry:
        """Host a prepared session under ``name``.

        The session must already be calibrated (or explicitly built with
        ``auto_calibrate=True``): a server must never silently calibrate on
        live traffic.  ``shards >= 2`` (or an explicit ``shard_plan``)
        deploys the session as a stage pipeline: request groups stream
        through the stages with in-flight depth ``depth`` instead of fusing
        into one engine batch — bit-exact either way.  ``stage_workers``
        overrides the sharded deployment's owned stage-pool sizing
        (default: one worker per stage, capped at the core count).

        On ``backend='process'`` the session is snapshotted and executed
        in the worker processes — whole deployments via
        :meth:`_deploy_process`, sharded deployments process-per-stage via
        :meth:`_shard_session`; ``model_name``/``model_factory`` tell the
        workers how to rebuild the float model and are ignored by the
        thread backend.  Capability refusals raise
        :class:`~repro.serve.pool.BackendCapabilityError`.
        """
        if not session.prepared and not session.auto_calibrate:
            raise ValueError(
                f"session for {name!r} is not calibrated; calibrate it (or "
                "opt in with auto_calibrate=True) before registering")
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 0:
            raise ValueError(
                f"shards must be an int >= 0, got {shards!r} "
                "(only load() accepts the string 'stored')")
        if trace_sample is not None and not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {trace_sample}")
        remote = False
        if self._proc_pool is not None:
            if not session.prepared:
                raise BackendCapabilityError(
                    f"deployment {name!r} on backend='process' needs a "
                    "prepared session: auto_calibrate cannot run in the "
                    "workers (plan stores snapshot calibrated plans only)")
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            if shards >= 2 or shard_plan is not None:
                session = self._shard_session(
                    session, shards, shard_plan, depth, shard_sample,
                    name=name, stage_workers=stage_workers,
                    model_name=model_name, model_factory=model_factory,
                    store_path=store_path, model_seed=model_seed)
            else:
                session = self._deploy_process(name, session, model_name,
                                               model_factory, store_path,
                                               model_seed)
                remote = True
        elif shards >= 2 or shard_plan is not None:
            session = self._shard_session(session, shards, shard_plan,
                                          depth, shard_sample,
                                          stage_workers=stage_workers)
        kwargs = {} if self._clock is None else {"clock": self._clock}
        entry = ModelEntry(
            name=name, session=session,
            batcher=MicroBatcher(session, self._effective_policy(policy),
                                 **kwargs),
            remote=remote,
            decode_policy=decode_policy or self.default_decode_policy,
            trace_sample=trace_sample)
        with self._entries_lock:
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            self._entries[name] = entry
        return entry

    def deploy_proxy(self, name: str, model_name: str, *,
                     scheme: str = "aqs", exec_path: str = "fast",
                     seed: int = 0, n_calibration: int = 2,
                     calibration_batch: int = 2,
                     policy: BatchPolicy | None = None,
                     max_records: int | None = None, shards: int = 0,
                     depth: int = 2,
                     stage_workers: int | None = None,
                     decode_policy: DecodePolicy | None = None) -> ModelEntry:
        """Build, calibrate and host one proxy-zoo model variant.

        The convenience path the CLI and benchmarks use: builds the runnable
        proxy, calibrates on synthetic batches matching its input modality,
        and registers the prepared session.  ``policy`` defaults to the
        server default with the proxy's natural ``pad_axis`` applied.
        ``shards >= 2`` deploys pipelined: the auto-partitioner balances the
        stages on a measured profile of one synthetic batch.
        ``decode_policy`` configures the deployment's continuous-batching
        decoder (LM proxies only; created lazily on first decode submit).
        """
        from ..core.pipeline import PtqConfig
        from ..models.zoo import PROXY_SPECS, build_proxy, proxy_batches

        if model_name not in PROXY_SPECS:
            raise KeyError(
                f"no runnable proxy for {model_name!r}; available: "
                f"{sorted(PROXY_SPECS)}")
        model, _ = build_proxy(model_name, seed=seed)
        config = PtqConfig.for_scheme(scheme, exec_path=exec_path)
        session = PanaceaSession(model, config, max_records=max_records)
        session.calibrate(proxy_batches(model_name, calibration_batch,
                                        n_calibration, seed=seed + 1))
        sample = (proxy_batches(model_name, calibration_batch, 1,
                                seed=seed + 2)[0] if shards >= 2 else None)
        return self.register(name, session,
                             self._policy_for_proxy(policy, model_name),
                             shards=shards, depth=depth, shard_sample=sample,
                             stage_workers=stage_workers,
                             model_name=model_name, model_seed=seed,
                             decode_policy=decode_policy)

    def _policy_for_proxy(self, policy: BatchPolicy | None,
                          model_name: str | None) -> BatchPolicy:
        """Apply a zoo model's natural ``pad_axis`` unless the policy chose.

        Shared by :meth:`deploy_proxy` and :meth:`load` so a causal LM keeps
        its ragged-sequence coalescing however its deployment arrived.
        """
        from ..models.zoo import PROXY_SPECS

        base = policy or self.default_policy
        spec = PROXY_SPECS.get(model_name) if model_name else None
        if spec is not None and spec.pad_axis is not None \
                and base.pad_axis is None:
            base = replace(base, pad_axis=spec.pad_axis)
        return base

    def load(self, name: str, path, *, model=None, model_factory=None,
             policy: BatchPolicy | None = None,
             max_records: int | None = None, shards: int | str = 0,
             depth: int = 2, stage_workers: int | None = None) -> ModelEntry:
        """Host a deployment rehydrated from a plan store (zero re-prepare).

        When the store references a proxy-zoo model, its natural
        ``pad_axis`` is applied exactly as :meth:`deploy_proxy` would.
        ``shards="stored"`` deploys with the shard plan persisted in the
        store (raising if there is none); ``shards=N >= 2`` re-partitions
        with modeled costs instead.

        On ``backend='process'`` the workers rehydrate straight from
        ``path`` (no re-snapshot); a store saved without a proxy-zoo
        reference then needs ``model_factory`` (picklable) instead of an
        in-process ``model`` object, which cannot cross to the workers.
        """
        from .store import PlanStore

        if isinstance(shards, str) and shards != "stored":
            raise ValueError(
                f"shards must be an int or 'stored', got {shards!r}")
        store = PlanStore(path)
        if model is None and model_factory is not None:
            model = model_factory()
        session = store.load(model=model, max_records=max_records)
        model_name = store.describe().get("model_name")
        shard_plan = None
        if shards == "stored":
            shard_plan = store.load_shard_plan()
            if shard_plan is None:
                raise ValueError(
                    f"{path} holds no shard plan; save one with "
                    "PlanStore.save(..., shard_plan=...) or pass shards=N "
                    "to re-partition")
            shards = 0
        return self.register(name, session,
                             self._policy_for_proxy(policy, model_name),
                             shards=shards, shard_plan=shard_plan,
                             depth=depth, stage_workers=stage_workers,
                             model_name=model_name,
                             model_factory=model_factory, store_path=path)

    def unregister(self, name: str) -> None:
        """Drop a deployment after draining its queue.

        A sharded deployment's dedicated stage pool is shut down with it.
        """
        entry = self._get(name)
        entry.batcher.flush()
        if entry.decoder is not None:
            entry.decoder.drain()
        with self._entries_lock:
            self._entries.pop(name, None)
        if entry.sharded:
            # Sharded sessions — thread or process-per-stage — release
            # their own backend resources (owned pools, stage edges).
            entry.session.close()
        elif entry.remote:
            self._proc_pool.unload_deployment(name)

    def _snapshot(self) -> list[ModelEntry]:
        """A stable view of the deployments for lock-free iteration."""
        with self._entries_lock:
            return list(self._entries.values())

    def close(self) -> None:
        """Drain every queue and join the worker pool (idempotent).

        A poison batch in one deployment must not leak the pool's threads
        or strand the other deployments' queues: every drain is attempted
        and the pool always shuts down; the first drain failure re-raises
        after cleanup.
        """
        first_error = None
        entries = self._snapshot()
        try:
            for entry in entries:
                try:
                    entry.batcher.flush()
                    if entry.decoder is not None:
                        entry.decoder.drain()
                except Exception as exc:  # noqa: BLE001 — re-raised below
                    if first_error is None:
                        first_error = exc
        finally:
            for entry in entries:
                if entry.sharded:
                    entry.session.close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            if self._proc_pool is not None:
                self._proc_pool.shutdown(wait=True)
            if self._proc_store_dir is not None:
                import shutil

                shutil.rmtree(self._proc_store_dir, ignore_errors=True)
                self._proc_store_dir = None
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _drain_fanout(self, thunks) -> int:
        """Run drain thunks concurrently on dedicated threads, sum results.

        Deliberately *not* the worker pool: its FIFO queue may be full of
        ``serve`` tasks waiting out rider windows, and a "drain now" call
        (:meth:`flush`/:meth:`pump`) must never sit behind them for up to
        ``max_delay_s``.  Dedicated threads drain immediately; the fired
        batches resolve the waiting serve tasks through their tickets'
        done events.
        """
        results = [0] * len(thunks)
        errors: list[Exception] = []

        def runner(i, thunk):
            try:
                results[i] = thunk()
            except Exception as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=runner, args=(i, thunk),
                                    daemon=True)
                   for i, thunk in enumerate(thunks)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return sum(results)

    # -- request path ---------------------------------------------------------
    def _get(self, name: str) -> ModelEntry:
        if name not in self._entries:
            raise KeyError(
                f"unknown model {name!r}; registered: {self.models()}")
        return self._entries[name]

    def start_trace(self, name: str, *,
                    sample: float | None = None) -> Trace | None:
        """Start (or sample away) a trace for one request on ``name``.

        Sampling resolves ``sample`` (the caller's explicit rate) over the
        deployment's ``trace_sample`` over the server-wide default.  A
        started trace is registered in the trace buffer immediately, so
        ``get_trace`` finds in-flight requests.  Returns ``None`` when the
        request is not sampled — every traced path treats that as "tracing
        off" for this request.
        """
        entry = self._get(name)
        rate = sample
        if rate is None:
            rate = entry.trace_sample
        if rate is None:
            rate = self.trace_sample
        if rate <= 0.0:
            return None
        if rate < 1.0 and self._trace_rng.random() >= rate:
            return None
        return self.traces.add(Trace(name))

    def get_trace(self, trace_id) -> Trace | None:
        """Look up a trace by id (int or hex string); None when unknown
        or already evicted from the bounded buffer."""
        return self.traces.get(trace_id)

    def submit(self, name: str, x: np.ndarray) -> Ticket:
        """Enqueue one request for ``name``; returns its ticket.

        When the request is sampled (see :meth:`start_trace`) the ticket
        carries a :class:`~repro.obs.Trace` as ``ticket.trace`` and the
        span tree closes with the ticket.
        """
        entry = self._get(name)
        trace = self.start_trace(name)
        return entry.batcher.submit(x, trace=trace)

    def submit_async(self, name: str, x: np.ndarray) -> Future:
        """Enqueue one request; returns a future of its output array.

        With a worker pool, service happens on a pool thread — the caller
        never executes a batch, and the serving worker honors the
        deployment's ``max_delay_s`` (see :meth:`MicroBatcher.serve`), so
        async requests coalesce exactly like inline ones.  Without a pool
        the future is served eagerly on this thread and arrives already
        resolved, so the API (and its bit-exactness) is identical either
        way.  The underlying :class:`Ticket` rides on the future as
        ``future.ticket`` for callers that want scheduler metadata.
        Cancelling the future before a worker picks it up also dequeues
        the request, so a cancelled submission never rides someone else's
        batch.
        """
        entry = self._get(name)
        trace = self.start_trace(name)
        try:
            ticket = entry.batcher.submit(x, fire=self._pool is None,
                                          trace=trace)
        except Exception as exc:  # noqa: BLE001 — future carries it
            # Inline submits can fire (and fail) a batch on this thread;
            # the error must surface through the future exactly as the
            # pooled path would deliver it, never as a synchronous raise.
            future = Future()
            future.set_exception(exc)
            future.ticket = None
            return future
        if self._pool is not None and not ticket.done:
            future = self._pool.submit_traced(
                trace.root if trace is not None else None,
                entry.batcher.serve, ticket)
            future.add_done_callback(
                lambda f: entry.batcher.cancel(ticket)
                if f.cancelled() else None)
        else:
            future = Future()
            try:
                future.set_result(ticket.result())
            except Exception as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)
        future.ticket = ticket
        return future

    # -- decode path ----------------------------------------------------------
    def _decoder(self, name: str) -> DecodeBatcher:
        """The deployment's decoder, created on first use.

        Decode runs the model's incremental ``forward_step`` against live
        KV state in the scheduler's process, so it is a thread-backend,
        unsharded capability: process-backed deployments execute in worker
        processes that only expose one-shot forwards, and sharded sessions
        split the layer chain across stages — both refuse with
        :class:`BackendCapabilityError` rather than silently recomputing
        the prefix every step.
        """
        entry = self._get(name)
        if entry.decoder is None:
            if entry.remote or self._proc_pool is not None:
                raise BackendCapabilityError(
                    f"deployment {name!r} executes on backend='process'; "
                    "incremental decode needs in-process KV state — deploy "
                    "on the thread backend to decode")
            if entry.sharded:
                raise BackendCapabilityError(
                    f"deployment {name!r} is sharded; incremental decode "
                    "needs the whole layer chain in one session")
            kwargs = {} if self._clock is None else {"clock": self._clock}
            entry.decoder = DecodeBatcher(entry.session, entry.decode_policy,
                                          **kwargs)
        return entry.decoder

    def submit_decode(self, name: str, prompt, *,
                      max_new_tokens: int | None = None) -> DecodeTicket:
        """Enqueue one prompt for autoregressive decoding on ``name``.

        Returns a :class:`DecodeTicket`: ``result()`` blocks for the full
        generation, ``iter_tokens()`` streams tokens as the continuous
        batch produces them.  Requests submitted together share the
        running batch step by step — joining and leaving mid-flight — and
        every sequence's tokens are exactly what it would produce decoding
        alone.
        """
        return self._decoder(name).submit(prompt,
                                          max_new_tokens=max_new_tokens)

    def decode_stream(self, name: str, prompt, *,
                      max_new_tokens: int | None = None):
        """Submit and stream: yields tokens as they are generated."""
        return self.submit_decode(
            name, prompt, max_new_tokens=max_new_tokens).iter_tokens()

    def cancel_decode(self, name: str, ticket: DecodeTicket) -> bool:
        """Abandon one in-flight decode request (a dropped client).

        Queued requests are dequeued; active ones are compacted out of the
        running batch at the next step boundary, leaving every other
        sequence's tokens bit-exact.  Returns False when the ticket already
        finished (nothing to cancel).
        """
        entry = self._get(name)
        if entry.decoder is None:
            return False
        return entry.decoder.cancel(ticket)

    def submit_many(self, name: str, xs) -> list[Ticket]:
        """Enqueue a request list (batches fire as they fill)."""
        return [self.submit(name, x) for x in xs]

    def submit_many_async(self, name: str, xs) -> list[Future]:
        """Async variant of :meth:`submit_many`; one future per request."""
        return [self.submit_async(name, x) for x in xs]

    def pump(self, now: float | None = None) -> int:
        """Run every deployment's delay policy once; returns requests served.

        With a worker pool the per-deployment pumps execute concurrently —
        one slow deployment no longer stalls the others' deadlines.
        """
        batchers = [entry.batcher for entry in self._snapshot()]
        if self._pool is not None and len(batchers) > 1:
            return self._drain_fanout(
                [lambda b=b: b.pump(now) for b in batchers])
        return sum(b.pump(now) for b in batchers)

    def flush(self, name: str | None = None) -> int:
        """Serve all queued requests (of one deployment, or all).

        With a worker pool, deployments drain in parallel — the concurrent
        runtime's core path: every deployment's engine executes its
        micro-batches simultaneously while each session stays internally
        serialized, so outputs are bit-exact vs a serial drain.

        Decode queues drain too (their running batches step to completion);
        the returned count covers one-shot requests only — decode progress
        is visible as tokens under ``stats()['decode']``.
        """
        if name is not None:
            entry = self._get(name)
            served = entry.batcher.flush()
            if entry.decoder is not None:
                entry.decoder.drain()
            return served
        entries = self._snapshot()

        def drain_entry(entry: ModelEntry) -> int:
            served = entry.batcher.flush()
            if entry.decoder is not None:
                entry.decoder.drain()
            return served

        if self._pool is not None and len(entries) > 1:
            return self._drain_fanout(
                [lambda e=e: drain_entry(e) for e in entries])
        return sum(drain_entry(e) for e in entries)

    # -- observability --------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def models(self) -> list[str]:
        """Registered deployment names, in registration order."""
        with self._entries_lock:
            return list(self._entries)

    def entry(self, name: str) -> ModelEntry:
        """The deployment behind ``name``."""
        return self._get(name)

    def stats(self, name: str | None = None) -> dict:
        """Per-deployment stats, or one deployment's when named."""
        if name is not None:
            return self._get(name).stats()
        return {entry.name: entry.stats() for entry in self._snapshot()}

    def queue_wait_rollup(self) -> LatencyStats:
        """Server-wide queue-wait view (merged across deployments)."""
        rollup = LatencyStats()
        for entry in self._snapshot():
            rollup = rollup.merge(entry.batcher.queue_wait_view())
        return rollup

    def metrics(self) -> ServerMetrics:
        """One server-wide snapshot: deployments, workers, cache hit-rate.

        Cache totals are summed from the same per-deployment stats embedded
        under ``deployments``, so the two views in one snapshot can never
        disagree.
        """
        deployments = self.stats()
        schedulers = [d["scheduler"] for d in deployments.values()]
        pipelines = {name: d["pipeline"] for name, d in deployments.items()
                     if "pipeline" in d}
        caches = [s["cache"] for s in schedulers if "cache" in s]
        cache_totals = None
        if caches:
            cache_totals = {
                key: sum(c[key] for c in caches)
                for key in ("entries", "bytes", "max_bytes", "hits",
                            "misses", "insertions", "evictions")}
            lookups = cache_totals["hits"] + cache_totals["misses"]
            cache_totals["hit_rate"] = (cache_totals["hits"] / lookups
                                        if lookups else 0.0)
        decoders = [d["decode"] for d in deployments.values()
                    if "decode" in d]
        decode_totals = None
        prefix_totals = None
        if decoders:
            decode_totals = {
                key: sum(dec[key] for dec in decoders)
                for key in ("n_requests", "n_steps", "n_prefills",
                            "n_tokens", "n_failed", "n_cancelled", "depth",
                            "n_active")}
            prefixes = [dec["prefix_cache"] for dec in decoders
                        if "prefix_cache" in dec]
            if prefixes:
                prefix_totals = {
                    key: sum(p[key] for p in prefixes)
                    for key in ("entries", "bytes", "max_bytes", "hits",
                                "misses", "insertions", "evictions",
                                "seeded_tokens")}
                lookups = prefix_totals["hits"] + prefix_totals["misses"]
                prefix_totals["hit_rate"] = (
                    prefix_totals["hits"] / lookups if lookups else 0.0)
        return ServerMetrics(
            n_deployments=len(deployments),
            n_requests=sum(s["n_requests"] for s in schedulers),
            n_batches=sum(s["n_batches"] for s in schedulers),
            n_failed=sum(s["n_failed"] for s in schedulers),
            n_cache_hits=sum(s["n_cache_hits"] for s in schedulers),
            n_cancelled=sum(s["n_cancelled"] for s in schedulers),
            queue_wait=self.queue_wait_rollup().summary(),
            deployments=deployments,
            workers=self._pool.stats() if self._pool is not None else None,
            process_workers=(self._proc_pool.stats()
                             if self._proc_pool is not None else None),
            cache=cache_totals,
            pipelines=pipelines or None,
            decode=decode_totals,
            prefix_cache=prefix_totals,
        )

    def metrics_registry(self) -> MetricsRegistry:
        """The server's unified instrument registry (built lazily, once).

        Every instrument is a *callback* over the live serving state —
        registering a deployment after the registry exists still shows up
        on the next collection, because the callbacks walk the deployment
        snapshot at read time.  The conservation invariants (the batcher
        submission ledger, the bounded trace buffer) ride along as checked
        registry properties; :func:`repro.obs.render_prometheus` turns a
        collection into exposition text.
        """
        if self._registry is None:
            self._registry = self._build_registry()
        return self._registry

    def _build_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()

        def per_entry(read):
            """Per-deployment sample list from one scheduler-stats key."""
            def collect():
                return [({"deployment": e.name}, read(e))
                        for e in self._snapshot()]
            return collect

        def per_batcher(key):
            return per_entry(lambda e: e.batcher.stats()[key])

        def per_cache(key):
            def collect():
                out = []
                for e in self._snapshot():
                    if e.cache is not None:
                        out.append(({"deployment": e.name},
                                    e.cache.stats()[key]))
                return out
            return collect

        def per_decoder(key):
            def collect():
                return [({"deployment": e.name}, e.decoder.stats()[key])
                        for e in self._snapshot() if e.decoder is not None]
            return collect

        def per_stage(view_key):
            def collect():
                out = []
                for e in self._snapshot():
                    if not e.sharded:
                        continue
                    executor = getattr(e.session, "executor", None)
                    if executor is None:
                        continue
                    for row in executor.stage_latency_view():
                        out.append(({"deployment": e.name,
                                     "stage": str(row["stage"])},
                                    row[view_key]))
                return out
            return collect

        def stage_edges(key):
            def collect():
                if self._proc_pool is None:
                    return []
                edges = self._proc_pool.stats()["stage_edges"]
                return [({"deployment": name, "stage": str(e["stage"])},
                         e[key])
                        for name, rows in edges.items() for e in rows]
            return collect

        def pool_stat(key):
            def collect():
                if self._pool is None:
                    return []
                return [({}, self._pool.stats()[key])]
            return collect

        def proc_stat(key):
            def collect():
                if self._proc_pool is None:
                    return []
                return [({}, self._proc_pool.stats()[key])]
            return collect

        reg.gauge("repro_server_deployments",
                  "Deployments currently registered.",
                  lambda: len(self._entries))
        reg.counter("repro_batcher_submitted_total",
                    "Requests ever submitted to the micro-batcher.",
                    per_batcher("n_submitted"))
        reg.counter("repro_batcher_requests_total",
                    "Requests served by engine execution.",
                    per_batcher("n_requests"))
        reg.counter("repro_batcher_batches_total",
                    "Engine batches fired.", per_batcher("n_batches"))
        reg.counter("repro_batcher_failed_total",
                    "Requests failed by a raising batch.",
                    per_batcher("n_failed"))
        reg.counter("repro_batcher_cache_hits_total",
                    "Requests answered by the result cache.",
                    per_batcher("n_cache_hits"))
        reg.counter("repro_batcher_cancelled_total",
                    "Requests dequeued by cancellation.",
                    per_batcher("n_cancelled"))
        reg.gauge("repro_batcher_queue_depth",
                  "Requests waiting in the micro-batch queue.",
                  per_batcher("depth"))
        reg.gauge("repro_batcher_inflight",
                  "Requests riding a batch being executed right now.",
                  per_batcher("n_inflight"))
        reg.histogram("repro_batcher_queue_wait_seconds",
                      "Submit-to-fire wait per request.",
                      per_entry(lambda e: e.batcher.queue_wait_view()))
        reg.histogram("repro_batcher_batch_exec_seconds",
                      "Engine execution time per fired batch.",
                      per_entry(lambda e: e.batcher.batch_exec_view()))
        reg.histogram("repro_stage_exec_seconds",
                      "Stage execution time per pipeline micro-batch.",
                      per_stage("exec"))
        reg.histogram("repro_stage_stall_seconds",
                      "Wait for a busy pipeline stage per micro-batch.",
                      per_stage("stall"))
        reg.counter("repro_cache_hits_total", "Result-cache hits.",
                    per_cache("hits"))
        reg.counter("repro_cache_misses_total", "Result-cache misses.",
                    per_cache("misses"))
        reg.counter("repro_cache_insertions_total",
                    "Result-cache insertions.", per_cache("insertions"))
        reg.counter("repro_cache_evictions_total",
                    "Result-cache evictions.", per_cache("evictions"))
        reg.gauge("repro_cache_entries", "Result-cache resident entries.",
                  per_cache("entries"))
        reg.gauge("repro_cache_bytes", "Result-cache resident bytes.",
                  per_cache("bytes"))
        reg.counter("repro_decode_requests_total",
                    "Completed decode requests.",
                    per_decoder("n_requests"))
        reg.counter("repro_decode_steps_total",
                    "Continuous-batching engine steps.",
                    per_decoder("n_steps"))
        reg.counter("repro_decode_tokens_total", "Generated tokens.",
                    per_decoder("n_tokens"))
        reg.counter("repro_decode_failed_total", "Failed decode requests.",
                    per_decoder("n_failed"))
        reg.gauge("repro_decode_active",
                  "Sequences in the running decode batch.",
                  per_decoder("n_active"))
        reg.gauge("repro_pool_workers", "Worker-pool threads.",
                  pool_stat("workers"))
        reg.counter("repro_pool_tasks_total", "Tasks the pool executed.",
                    pool_stat("n_tasks"))
        reg.counter("repro_pool_busy_seconds_total",
                    "Summed busy seconds across pool workers.",
                    pool_stat("busy_s"))
        reg.gauge("repro_pool_mean_utilization",
                  "Mean busy fraction across pool workers.",
                  pool_stat("mean_utilization"))
        reg.gauge("repro_pool_queue_depth", "Tasks waiting for a worker.",
                  pool_stat("queue_depth"))
        reg.gauge("repro_process_pool_workers", "Worker processes.",
                  proc_stat("workers"))
        reg.counter("repro_process_pool_tasks_total",
                    "Tasks executed in worker processes.",
                    proc_stat("n_tasks"))
        reg.counter("repro_process_pool_crashes_total",
                    "Worker-process crashes (each respawned).",
                    proc_stat("n_crashes"))
        reg.counter("repro_process_pool_pipe_fallback_total",
                    "Transfers that fell back from shared memory to pipes.",
                    proc_stat("n_pipe_fallback"))
        reg.counter("repro_stage_edge_frames_total",
                    "Activation frames carried per stage edge ring.",
                    stage_edges("n_frames"))
        reg.counter("repro_stage_edge_wraps_total",
                    "Stage edge ring slot wraps.", stage_edges("n_wraps"))
        reg.counter("repro_stage_edge_pipe_fallback_total",
                    "Stage edge transfers that fell back to pipes.",
                    stage_edges("n_pipe_fallback"))
        reg.gauge("repro_server_trace_buffer_size",
                  "Traces resident in the bounded buffer.",
                  lambda: self.traces.stats()["size"])
        reg.counter("repro_server_trace_added_total",
                    "Traces ever started.",
                    lambda: self.traces.stats()["n_added"])
        reg.counter("repro_server_trace_evicted_total",
                    "Traces evicted from the bounded buffer.",
                    lambda: self.traces.stats()["n_evicted"])
        reg.invariant(
            "batcher_conserved",
            lambda: all(e.batcher.stats()["conserved"]
                        for e in self._snapshot()))
        reg.invariant(
            "trace_buffer_bounded",
            lambda: self.traces.stats()["size"] <= self.traces.capacity)
        return reg
