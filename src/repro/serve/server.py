"""Multi-model serving front end over prepared sessions.

:class:`ModelServer` hosts many named deployments — any (model variant ×
scheme × exec_path) combination, each backed by its own prepared
:class:`~repro.engine.session.PanaceaSession` and
:class:`~repro.serve.batching.MicroBatcher` — behind one submit API:

    server = ModelServer()
    server.register("bert-aqs", session, policy=BatchPolicy(max_batch=8))
    ticket = server.submit("bert-aqs", request)
    out = ticket.result()                       # bit-exact vs solo runs

Deployments can come from three sources: an already-prepared session
(:meth:`register`), a proxy-zoo build calibrated in place
(:meth:`deploy_proxy`), or a :class:`~repro.serve.store.PlanStore` file
(:meth:`load`) — the latter serving with zero re-prepare work.  Lifetime
metrics per deployment combine the session's op/sparsity accounting with
the scheduler's queue/latency view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.session import PanaceaSession
from .batching import BatchPolicy, MicroBatcher, Ticket
from .metrics import LatencyStats

__all__ = ["ModelServer", "ModelEntry"]


@dataclass
class ModelEntry:
    """One hosted deployment: a named session plus its scheduler."""

    name: str
    session: PanaceaSession
    batcher: MicroBatcher

    @property
    def policy(self) -> BatchPolicy:
        return self.batcher.policy

    def stats(self) -> dict:
        """Session lifetime accounting merged with scheduler metrics."""
        return {
            "name": self.name,
            "session": self.session.stats(),
            "scheduler": self.batcher.stats(),
        }


class ModelServer:
    """Hosts named model deployments behind a single submit API."""

    def __init__(self, default_policy: BatchPolicy | None = None, *,
                 clock=None) -> None:
        self.default_policy = default_policy or BatchPolicy()
        self._clock = clock
        self._entries: dict[str, ModelEntry] = {}

    # -- deployment lifecycle -------------------------------------------------
    def register(self, name: str, session: PanaceaSession,
                 policy: BatchPolicy | None = None) -> ModelEntry:
        """Host a prepared session under ``name``.

        The session must already be calibrated (or explicitly built with
        ``auto_calibrate=True``): a server must never silently calibrate on
        live traffic.
        """
        if name in self._entries:
            raise ValueError(f"model {name!r} is already registered")
        if not session.prepared and not session.auto_calibrate:
            raise ValueError(
                f"session for {name!r} is not calibrated; calibrate it (or "
                "opt in with auto_calibrate=True) before registering")
        kwargs = {} if self._clock is None else {"clock": self._clock}
        entry = ModelEntry(
            name=name, session=session,
            batcher=MicroBatcher(session, policy or self.default_policy,
                                 **kwargs))
        self._entries[name] = entry
        return entry

    def deploy_proxy(self, name: str, model_name: str, *,
                     scheme: str = "aqs", exec_path: str = "fast",
                     seed: int = 0, n_calibration: int = 2,
                     calibration_batch: int = 2,
                     policy: BatchPolicy | None = None,
                     max_records: int | None = None) -> ModelEntry:
        """Build, calibrate and host one proxy-zoo model variant.

        The convenience path the CLI and benchmarks use: builds the runnable
        proxy, calibrates on synthetic batches matching its input modality,
        and registers the prepared session.  ``policy`` defaults to the
        server default with the proxy's natural ``pad_axis`` applied.
        """
        from ..core.pipeline import PtqConfig
        from ..models.zoo import PROXY_SPECS, build_proxy, proxy_batches

        if model_name not in PROXY_SPECS:
            raise KeyError(
                f"no runnable proxy for {model_name!r}; available: "
                f"{sorted(PROXY_SPECS)}")
        model, _ = build_proxy(model_name, seed=seed)
        config = PtqConfig.for_scheme(scheme, exec_path=exec_path)
        session = PanaceaSession(model, config, max_records=max_records)
        session.calibrate(proxy_batches(model_name, calibration_batch,
                                        n_calibration, seed=seed + 1))
        return self.register(name, session,
                             self._policy_for_proxy(policy, model_name))

    def _policy_for_proxy(self, policy: BatchPolicy | None,
                          model_name: str | None) -> BatchPolicy:
        """Apply a zoo model's natural ``pad_axis`` unless the policy chose.

        Shared by :meth:`deploy_proxy` and :meth:`load` so a causal LM keeps
        its ragged-sequence coalescing however its deployment arrived.
        """
        from ..models.zoo import PROXY_SPECS

        base = policy or self.default_policy
        spec = PROXY_SPECS.get(model_name) if model_name else None
        if spec is not None and spec.pad_axis is not None \
                and base.pad_axis is None:
            base = BatchPolicy(max_batch=base.max_batch,
                               max_delay_s=base.max_delay_s,
                               pad_axis=spec.pad_axis,
                               pad_value=base.pad_value)
        return base

    def load(self, name: str, path, *, model=None,
             policy: BatchPolicy | None = None,
             max_records: int | None = None) -> ModelEntry:
        """Host a deployment rehydrated from a plan store (zero re-prepare).

        When the store references a proxy-zoo model, its natural
        ``pad_axis`` is applied exactly as :meth:`deploy_proxy` would.
        """
        from .store import PlanStore

        store = PlanStore(path)
        session = store.load(model=model, max_records=max_records)
        model_name = store.describe().get("model_name")
        return self.register(name, session,
                             self._policy_for_proxy(policy, model_name))

    def unregister(self, name: str) -> None:
        """Drop a deployment after draining its queue."""
        entry = self._get(name)
        entry.batcher.flush()
        del self._entries[name]

    # -- request path ---------------------------------------------------------
    def _get(self, name: str) -> ModelEntry:
        if name not in self._entries:
            raise KeyError(
                f"unknown model {name!r}; registered: {self.models()}")
        return self._entries[name]

    def submit(self, name: str, x: np.ndarray) -> Ticket:
        """Enqueue one request for ``name``; returns its ticket."""
        return self._get(name).batcher.submit(x)

    def submit_many(self, name: str, xs) -> list[Ticket]:
        """Enqueue a request list (batches fire as they fill)."""
        return [self.submit(name, x) for x in xs]

    def pump(self, now: float | None = None) -> int:
        """Run every deployment's delay policy once; returns requests served."""
        return sum(entry.batcher.pump(now) for entry in self._entries.values())

    def flush(self, name: str | None = None) -> int:
        """Serve all queued requests (of one deployment, or all)."""
        if name is not None:
            return self._get(name).batcher.flush()
        return sum(entry.batcher.flush() for entry in self._entries.values())

    # -- observability --------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def models(self) -> list[str]:
        """Registered deployment names, in registration order."""
        return list(self._entries)

    def entry(self, name: str) -> ModelEntry:
        """The deployment behind ``name``."""
        return self._get(name)

    def stats(self, name: str | None = None) -> dict:
        """Per-deployment stats, or one deployment's when named."""
        if name is not None:
            return self._get(name).stats()
        return {entry_name: entry.stats()
                for entry_name, entry in self._entries.items()}

    def queue_wait_rollup(self) -> LatencyStats:
        """Server-wide queue-wait view (merged across deployments)."""
        rollup = LatencyStats()
        for entry in self._entries.values():
            rollup = rollup.merge(entry.batcher.queue_wait)
        return rollup
