"""Persistent layer-plan store: serve a converted model with zero re-prepare.

Panacea's weight-side work (SBR slicing, HO masks, RLE index sizing, the
Eq. 6 compensation) is offline by construction; :class:`PlanStore` makes it
offline across *process lifetimes*.  ``save`` snapshots a prepared
:class:`~repro.engine.session.PanaceaSession` — its :class:`PtqConfig`,
every :class:`LayerQuantRecord` calibration decided, and every engine
:class:`LayerPlan` via the ``state_dict``/``plan_from_state`` machinery —
into one versioned ``.npz`` file.  ``load`` rehydrates a ready-to-execute
session without re-calibrating and without a single engine ``prepare`` call
(asserted in the tests), so a served fleet pays calibration exactly once.

The file format is pickle-free: arrays live as plain ``.npz`` entries and
the nested structure (plan state dicts, quant params, DBS decisions) is a
JSON manifest referencing them, behind a magic/version header that rejects
foreign or future files.  Round-trips are bit-exact — ``float64`` scales and
``int64`` codes survive unchanged — so a restored session's outputs equal
the original's bit for bit.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import tempfile
import time
import zipfile
from dataclasses import asdict

import numpy as np

from ..core.dbs import DbsDecision, DbsType
from ..core.pipeline import LayerQuantRecord, PtqConfig
from ..engine.base import plan_from_state
from ..engine.session import PanaceaSession
from ..quant.uniform import QuantParams

__all__ = ["PlanStore", "PlanStoreError", "STORE_FORMAT", "STORE_VERSION"]

STORE_FORMAT = "repro-plan-store"
STORE_VERSION = 1

_META_KEY = "__meta__"

# Array-blob sidecar (the mmap fast path): raw uncompressed array bytes
# extracted once from the .npz, so N worker processes can map one physical
# copy of the weights instead of each inflating its own.
_BLOB_MAGIC = b"RPBL"
_BLOB_VERSION = 1
_BLOB_ALIGN = 64
_BLOB_HEAD = struct.Struct("<4sIQ")  # magic, version, header-JSON length


class PlanStoreError(ValueError):
    """A plan-store file cannot be trusted: wrong format, newer version,
    truncated/corrupt bytes, or a manifest that does not cover the model.

    Every load-side failure raises this one type (a ``ValueError``
    subclass, so pre-existing callers keep working) — a store that fails
    validation must never rehydrate garbage plans into a serving session.
    """


def _encode(obj, arrays: list) -> object:
    """Lower a nested state tree to JSON, hoisting arrays into ``arrays``."""
    if isinstance(obj, np.ndarray):
        arrays.append(np.ascontiguousarray(obj))
        return {"__kind__": "ndarray", "ref": len(arrays) - 1}
    if isinstance(obj, np.generic):
        return _encode(obj.item(), arrays)
    if isinstance(obj, dict):
        items = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"store keys must be strings, got {key!r}")
            items[key] = _encode(value, arrays)
        return {"__kind__": "dict", "items": items}
    if isinstance(obj, (list, tuple)):
        return {"__kind__": "tuple" if isinstance(obj, tuple) else "list",
                "items": [_encode(v, arrays) for v in obj]}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot store object of type {type(obj).__name__}")


def _decode(node, arrays: dict) -> object:
    """Inverse of :func:`_encode`."""
    if isinstance(node, dict):
        kind = node.get("__kind__")
        if kind == "ndarray":
            return arrays[f"a{node['ref']}"]
        if kind == "dict":
            return {k: _decode(v, arrays) for k, v in node["items"].items()}
        if kind in ("list", "tuple"):
            seq = [_decode(v, arrays) for v in node["items"]]
            return tuple(seq) if kind == "tuple" else seq
        raise ValueError(f"malformed store node: {node!r}")
    return node


def _params_state(params: QuantParams) -> dict:
    return {"scale": np.asarray(params.scale),
            "zero_point": np.asarray(params.zero_point),
            "bits": params.bits, "signed": params.signed}


def _params_from_state(state: dict) -> QuantParams:
    return QuantParams(scale=state["scale"], zero_point=state["zero_point"],
                       bits=int(state["bits"]), signed=bool(state["signed"]))


def _record_state(record: LayerQuantRecord) -> dict:
    dbs = record.dbs
    return {
        "name": record.name,
        "w_q": record.w_q,
        "w_params": _params_state(record.w_params),
        "x_params": _params_state(record.x_params),
        "dbs": None if dbs is None else {
            "type_id": dbs.dbs_type.type_id,
            "lo_bits": dbs.dbs_type.lo_bits,
            "zp": dbs.zp, "r": dbs.r, "std": dbs.std, "z": dbs.z,
        },
        "w_bits": record.w_bits,
        "x_bits": record.x_bits,
    }


def _record_from_state(state: dict) -> LayerQuantRecord:
    dbs_state = state["dbs"]
    dbs = None
    if dbs_state is not None:
        dbs = DbsDecision(
            dbs_type=DbsType(type_id=int(dbs_state["type_id"]),
                             lo_bits=int(dbs_state["lo_bits"])),
            zp=int(dbs_state["zp"]), r=int(dbs_state["r"]),
            std=float(dbs_state["std"]), z=float(dbs_state["z"]))
    return LayerQuantRecord(
        name=str(state["name"]),
        w_q=np.asarray(state["w_q"], dtype=np.int64),
        w_params=_params_from_state(state["w_params"]),
        x_params=_params_from_state(state["x_params"]),
        dbs=dbs,
        w_bits=int(state["w_bits"]),
        x_bits=int(state["x_bits"]),
    )


class PlanStore:
    """One persisted converted model at a filesystem path.

    ``save`` requires a *prepared* session; ``load`` returns a session that
    serves immediately.  When the session's float architecture came from the
    proxy zoo, passing ``model_name``/``seed`` at save time lets ``load``
    rebuild it standalone (the CLI path); otherwise the caller provides the
    float model.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    # -- write ---------------------------------------------------------------
    def save(self, session: PanaceaSession, *, model_name: str | None = None,
             seed: int = 0, shard_plan=None) -> pathlib.Path:
        """Serialize a prepared session's config, records and plans.

        ``shard_plan`` persists a :class:`~repro.shard.plan.ShardPlan`
        alongside the layer plans, so a rehydrated deployment can resume
        pipelined serving with the exact stage split that was balanced for
        it (``load_shard_plan`` / ``ModelServer.load(shards="stored")``).
        A :class:`~repro.shard.session.ShardedSession` may be passed
        directly: its wrapped session and plan are unbundled here.
        """
        if shard_plan is None and hasattr(session, "plan") \
                and hasattr(session, "session"):
            session, shard_plan = session.session, session.plan
        if not session.prepared:
            raise RuntimeError(
                "PlanStore.save needs a prepared session: calibrate first so "
                "there are layer plans to persist")
        records = session.pipeline.records
        plans = session.plans
        payload = {
            "config": asdict(session.config),
            "records": {name: _record_state(rec)
                        for name, rec in records.items()},
            "plans": {name: plan.state_dict()
                      for name, plan in plans.items()},
            "model": {"name": model_name, "seed": seed},
            "shard": (None if shard_plan is None
                      else shard_plan.state_dict()),
        }
        arrays: list = []
        tree = _encode(payload, arrays)
        meta = {
            "header": {
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "scheme": session.config.scheme,
                "n_layers": len(records),
                "n_plans": len(plans),
                "n_shards": (0 if shard_plan is None
                             else shard_plan.n_stages),
                "created_unix_s": time.time(),
            },
            "payload": tree,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic: write to a temp file in the same directory and rename
        # into place, so a crash mid-save can never leave a truncated
        # archive at the final path — the old store (if any) survives
        # intact and the torn temp file is removed.
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.path.name + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                # Compressed: the int64 slice planes hold tiny magnitudes
                # and deflate by an order of magnitude.
                np.savez_compressed(
                    fh, **{_META_KEY: np.array(json.dumps(meta))},
                    **{f"a{i}": arr for i, arr in enumerate(arrays)})
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return self.path

    # -- read ----------------------------------------------------------------
    def _check_header(self, meta: dict) -> None:
        header = meta.get("header", {})
        if header.get("format") != STORE_FORMAT:
            raise PlanStoreError(
                f"{self.path} is not a plan store "
                f"(format {header.get('format')!r})")
        if int(header.get("version", 0)) > STORE_VERSION:
            raise PlanStoreError(
                f"{self.path} was written by a newer store version "
                f"{header.get('version')} (this build reads <= "
                f"{STORE_VERSION})")

    def _read_meta(self, npz) -> dict:
        if _META_KEY not in npz:
            raise PlanStoreError(
                f"{self.path} is not a plan store (missing manifest)")
        try:
            meta = json.loads(str(npz[_META_KEY][()]))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PlanStoreError(
                f"{self.path} has a corrupt manifest: {exc}") from exc
        self._check_header(meta)
        return meta

    def _open(self):
        """``np.load`` with archive-level failures typed as store errors."""
        try:
            return np.load(self.path, allow_pickle=False)
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
            raise PlanStoreError(
                f"{self.path} is truncated or not a plan store archive: "
                f"{exc}") from exc

    def _read(self, *, mmap: bool = False) -> tuple[dict, dict]:
        if mmap:
            return self._read_mmap()
        with self._open() as npz:
            meta = self._read_meta(npz)
            try:
                arrays = {key: npz[key]
                          for key in npz.files if key != _META_KEY}
            except (zipfile.BadZipFile, OSError, ValueError,
                    EOFError) as exc:
                # Manifest intact but an array member cut short — a
                # mid-write truncation must not rehydrate partial plans.
                raise PlanStoreError(
                    f"{self.path} has truncated array data: {exc}") from exc
        return meta, arrays

    # -- mmap-shared array blob ----------------------------------------------
    @property
    def blob_path(self) -> pathlib.Path:
        """The extracted-array sidecar backing ``load(mmap=True)``."""
        return self.path.with_name(self.path.name + ".blob")

    def _source_signature(self) -> dict:
        st = os.stat(self.path)
        return {"size": st.st_size, "mtime_ns": st.st_mtime_ns}

    def _build_blob(self) -> dict:
        """Extract the archive's arrays into one raw, aligned blob file.

        Built atomically (temp + rename) next to the store; the blob header
        records the source archive's size/mtime so a re-saved store
        invalidates stale blobs.  Returns ``(header, payload_base)``.
        """
        signature = self._source_signature()
        meta, arrays = self._read()
        del meta
        index: dict[str, dict] = {}
        offset = 0
        ordered = []
        for key in sorted(arrays, key=lambda k: int(k[1:])):
            arr = np.ascontiguousarray(arrays[key])
            index[key] = {"offset": offset, "dtype": arr.dtype.str,
                          "shape": list(arr.shape), "nbytes": arr.nbytes}
            ordered.append((offset, arr))
            offset += -(-arr.nbytes // _BLOB_ALIGN) * _BLOB_ALIGN
        header = {"format": STORE_FORMAT, "blob_version": _BLOB_VERSION,
                  "source": signature, "arrays": index}
        header_bytes = json.dumps(header).encode("utf-8")
        base = _BLOB_HEAD.size + len(header_bytes)
        base = -(-base // _BLOB_ALIGN) * _BLOB_ALIGN
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.blob_path.name + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_BLOB_HEAD.pack(_BLOB_MAGIC, _BLOB_VERSION,
                                         len(header_bytes)))
                fh.write(header_bytes)
                fh.write(b"\0" * (base - _BLOB_HEAD.size - len(header_bytes)))
                for off, arr in ordered:
                    fh.seek(base + off)
                    fh.write(arr.tobytes())
                # Extend to the full aligned size with truncate: a write at
                # ``total - 1`` would land *inside* the last array whenever
                # its nbytes is an exact multiple of the alignment (no tail
                # padding) and zero its final byte.
                fh.truncate(base + offset)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.blob_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return header, base

    def _blob_header(self) -> tuple[dict, int] | None:
        """Parse the sidecar header and payload base; ``None`` when the
        sidecar is absent, foreign or torn."""
        try:
            with open(self.blob_path, "rb") as fh:
                head = fh.read(_BLOB_HEAD.size)
                if len(head) < _BLOB_HEAD.size:
                    return None
                magic, version, header_len = _BLOB_HEAD.unpack(head)
                if magic != _BLOB_MAGIC or version > _BLOB_VERSION:
                    return None
                header_bytes = fh.read(header_len)
                if len(header_bytes) < header_len:
                    return None
                base = _BLOB_HEAD.size + header_len
                base = -(-base // _BLOB_ALIGN) * _BLOB_ALIGN
                return json.loads(header_bytes.decode("utf-8")), base
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def ensure_blob(self) -> pathlib.Path:
        """Build (or validate) the mmap sidecar; returns its path.

        The parent-side pre-build hook: a pool about to broadcast an
        ``mmap=True`` load to N workers extracts the blob once here
        instead of letting every worker race to build its own.
        """
        self._ensure_blob()
        return self.blob_path

    def _ensure_blob(self) -> tuple[dict, int]:
        """Reuse a current sidecar or (re)build it from the archive."""
        parsed = self._blob_header()
        if parsed is not None \
                and parsed[0].get("source") == self._source_signature():
            return parsed
        return self._build_blob()

    def _read_mmap(self) -> tuple[dict, dict]:
        """Manifest from the archive, arrays as read-only mmap views.

        Every array is an ``np.ndarray`` view into one ``np.memmap`` of the
        blob sidecar, so concurrent loaders (N worker processes rehydrating
        the same deployment) share one physical copy of the weight bytes
        through the page cache.  The views are non-writeable by
        construction; any consumer that must mutate copies its own slice —
        exactly the copy-on-write contract for the small mutable bits.
        """
        with self._open() as npz:
            meta = self._read_meta(npz)
        header, base = self._ensure_blob()
        mm = np.memmap(self.blob_path, dtype=np.uint8, mode="r")
        arrays = {}
        for key, spec in header["arrays"].items():
            view = np.ndarray(tuple(spec["shape"]),
                              dtype=np.dtype(spec["dtype"]),
                              buffer=mm, offset=base + int(spec["offset"]))
            arrays[key] = view
        return meta, arrays

    def describe(self) -> dict:
        """The header plus layer names — cheap: reads only the JSON
        manifest, never inflating the stored arrays."""
        with self._open() as npz:
            meta = self._read_meta(npz)
        # Walk the encoded tree directly; model name/seed are plain JSON
        # scalars and the record names are manifest keys.
        payload = meta["payload"]["items"]
        model = payload["model"]["items"]
        return {
            "n_shards": 0,  # overridden by post-shard-plan headers
            **meta["header"],
            "model_name": model["name"],
            "seed": model["seed"],
            "layers": sorted(payload["records"]["items"]),
        }

    def load_shard_plan(self):
        """The persisted :class:`~repro.shard.plan.ShardPlan`, or ``None``.

        Stores written before shard plans existed (or saved without one)
        return ``None`` — the caller decides whether to re-partition.
        """
        from ..shard.plan import ShardPlan

        meta, arrays = self._read()
        payload = _decode(meta["payload"], arrays)
        state = payload.get("shard")
        if state is None:
            return None
        try:
            return ShardPlan.from_state(state)
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanStoreError(
                f"{self.path} has a malformed shard plan: {exc}") from exc

    def load(self, model=None, *, count_ops: bool = True,
             keep_masks: bool = False, max_records: int | None = None,
             auto_calibrate: bool = False,
             mmap: bool = False) -> PanaceaSession:
        """Rehydrate a ready-to-execute session.

        ``model`` is the float architecture the store was calibrated on;
        omitted, it is rebuilt from the saved proxy-zoo reference.  No
        calibration and no engine ``prepare`` runs — the session serves its
        first request straight from the restored plans.

        ``mmap=True`` rehydrates the plan arrays as read-only views over
        one extracted array blob on disk (built next to the store on first
        use, reused while the store is unchanged), so N processes loading
        the same store share one physical copy of the weights through the
        page cache instead of N private inflations.  Outputs are bit-exact
        either way.
        """
        meta, arrays = self._read(mmap=mmap)
        payload = _decode(meta["payload"], arrays)
        if model is None:
            model_name = payload["model"]["name"]
            if model_name is None:
                raise ValueError(
                    f"{self.path} was saved without a proxy-zoo model "
                    "reference; pass the float model to load()")
            from ..models.zoo import build_proxy

            model, _ = build_proxy(model_name,
                                   seed=int(payload["model"]["seed"] or 0))
        config = PtqConfig(**payload["config"])
        # fp32 conversion is the identity — it has records but no plans.
        if config.scheme != "fp32":
            missing = sorted(set(payload["records"]) - set(payload["plans"]))
            if missing:
                raise PlanStoreError(
                    f"{self.path} is missing layer plans for {missing}; the "
                    "store does not cover its own calibration records and "
                    "cannot rehydrate a complete session")
        records = {name: _record_from_state(state)
                   for name, state in payload["records"].items()}
        plans = {name: plan_from_state(state)
                 for name, state in payload["plans"].items()}
        return PanaceaSession.restore(
            model, config, records, plans, count_ops=count_ops,
            keep_masks=keep_masks, max_records=max_records,
            auto_calibrate=auto_calibrate)
