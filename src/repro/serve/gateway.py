"""Async network front end: HTTP serving with admission control.

The millions-of-users story needs more than an in-process ``submit()``:
traffic arrives over the network, open-loop — clients do not stop sending
because the server slowed down — and an overloaded server must *shed*
excess load with typed backpressure instead of queueing without bound
until every request misses its SLO.  :class:`Gateway` is that front end:

* an :mod:`asyncio` HTTP/1.1 server (stdlib ``asyncio.start_server``, no
  third-party dependencies) exposing every :class:`ModelServer` deployment
  at ``POST /v1/infer/<deployment>`` and ``POST /v1/decode/<deployment>``
  (plus ``/healthz`` and ``/metrics``);
* :class:`AdmissionControl` in front of the schedulers: bounded
  per-deployment admission counts, per-tenant token-bucket quotas and
  priority classes, every refusal a typed :class:`AdmissionError` mapped
  to HTTP 429/503 with a ``Retry-After`` hint;
* strict accounting: ``offered == accepted + shed + rejected`` and
  ``accepted == completed + failed + cancelled + in_flight`` hold at all
  times (property-tested under random interleavings), so the operator
  dashboard can always answer "where did my requests go?";
* deadline-aware scheduling: deployments registered with a
  :class:`~repro.serve.batching.DeadlinePolicy` release micro-batches when
  SLO slack runs out rather than after a fixed delay — the gateway's pump
  thread guarantees releases happen even when no serving thread is
  waiting.

Execution stays bit-exact: the gateway encodes arrays losslessly (raw
little-endian bytes in base64, or JSON numbers whose ``repr`` round-trips
exactly) and forwards them untouched to the same
:class:`~repro.serve.batching.MicroBatcher` path in-process callers use,
so a response served over the network equals ``session.run`` to the bit
(the conformance suite's ``TestGatewayFuzz`` locks this down for all four
engines).

The event loop never blocks on engine work: request service runs on a
private thread pool (``entry.batcher.serve`` honors the deployment's
release policy there), decode streams are driven by a pool thread feeding
an ``asyncio.Queue``, and a dropped client connection cancels only its own
request — mid-stream decode cancellation compacts the request's KV slot
out of the running batch and the other sequences continue bit-exactly.
"""

from __future__ import annotations

import asyncio
import base64
import json
import math
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass, field
from urllib.parse import parse_qs

import numpy as np

from ..obs import (MetricsRegistry, format_trace_id, parse_trace_id,
                   render_prometheus)
from .metrics import LatencyStats
from .server import ModelServer

__all__ = [
    "AdmissionError", "QueueFullError", "QuotaExceededError",
    "GatewayClosedError", "TokenBucket", "TenantQuota", "AdmissionControl",
    "Gateway", "GatewayHandle",
]


class AdmissionError(RuntimeError):
    """Base of the gateway's typed backpressure refusals.

    Every admission failure is one of these, never a silent drop or an
    unbounded queue: the HTTP layer maps :attr:`status` onto the response
    code (429 for per-tenant quota exhaustion, 503 for shed load and
    shutdown) and :attr:`retry_after_s`, when known, onto a ``Retry-After``
    header so a well-behaved client can back off precisely.  Catching
    :class:`AdmissionError` is therefore the one handler an embedding
    application needs for "the server said no, not the model".
    """

    #: HTTP status the refusal maps to (subclasses override).
    status = 503
    #: Machine-readable refusal class for clients and dashboards.
    code = "admission"

    def __init__(self, message: str, *, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFullError(AdmissionError):
    """Load shed: the deployment's bounded admission queue is full (503).

    Raised *before* the request touches a scheduler queue, so shed traffic
    costs the serving path nothing — the open-loop defense.  Priority
    class 0 tenants may still be admitted into the reserved headroom when
    best-effort traffic is already being shed.
    """

    status = 503
    code = "queue_full"


class QuotaExceededError(AdmissionError):
    """Per-tenant token-bucket quota exhausted (429).

    ``retry_after_s`` reports when the bucket will next hold a full token
    at its refill rate — the precise back-off hint.
    """

    status = 429
    code = "quota"


class GatewayClosedError(AdmissionError):
    """The gateway is shutting down; nothing new is admitted (503)."""

    status = 503
    code = "closed"


class TokenBucket:
    """Classic token-bucket rate limiter (``rate_rps`` refill, ``burst``
    cap), the per-tenant quota primitive.

    ``clock`` is injectable so quota behaviour is testable without
    sleeping; an infinite rate never refuses (the default tenant class).
    """

    def __init__(self, rate_rps: float, burst: float, *,
                 clock=time.monotonic) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_rps = float(rate_rps)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._t = clock()

    def _refill(self) -> None:
        now = self.clock()
        if math.isinf(self.rate_rps):
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._t) * self.rate_rps)
        self._t = now

    def try_take(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; False (nothing consumed)
        otherwise."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have refilled (0 if available
        now)."""
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_rps

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission contract: rate quota and priority class.

    ``priority`` 0 is the interactive/"gold" class: it may fill the
    admission queue's reserved headroom that best-effort classes
    (``priority >= 1``) are shed from, so an overload of batch traffic
    cannot starve interactive traffic.  ``rate_rps=inf`` (the default)
    disables the token bucket for tenants that are only bounded by the
    shared queue.
    """

    rate_rps: float = math.inf
    burst: float = 64.0
    priority: int = 1

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")


@dataclass
class AdmissionTicket:
    """One admitted request's claim; hand it back via
    :meth:`AdmissionControl.release` exactly once."""

    deployment: str
    tenant: str
    priority: int
    admitted_t: float
    released: bool = field(default=False, repr=False)


class AdmissionControl:
    """Bounded admission with per-tenant quotas and conserved accounting.

    Thread-safe (admissions arrive from the event loop, releases from
    executor threads).  The two invariants every caller may rely on — and
    the property tests hammer —

    * ``offered == accepted + shed + rejected``
    * ``accepted == completed + failed + cancelled + in_flight``

    hold under any interleaving of :meth:`admit`/:meth:`release`, because
    both transitions happen under one lock and a ticket releases exactly
    once (double releases raise).

    ``max_pending`` bounds each deployment's in-flight admissions; the top
    ``reserve_frac`` of that budget is reserved for priority-0 tenants, so
    best-effort load sheds *before* interactive load does.
    """

    def __init__(self, *, max_pending: int = 64, reserve_frac: float = 0.25,
                 quotas: dict[str, TenantQuota] | None = None,
                 default_quota: TenantQuota | None = None,
                 clock=time.monotonic) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if not 0.0 <= reserve_frac < 1.0:
            raise ValueError(
                f"reserve_frac must be in [0, 1), got {reserve_frac}")
        self.max_pending = max_pending
        self.reserve_frac = reserve_frac
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.clock = clock
        self.closed = False
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._pending: dict[str, int] = {}
        self._peak_pending: dict[str, int] = {}
        self._tenants: dict[str, dict] = {}
        self.offered = 0
        self.accepted = 0
        self.shed = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _tenant(self, tenant: str) -> dict:
        return self._tenants.setdefault(tenant, {
            "offered": 0, "accepted": 0, "shed": 0, "rejected": 0,
            "completed": 0, "failed": 0, "cancelled": 0, "in_flight": 0,
        })

    @property
    def in_flight(self) -> int:
        return sum(self._pending.values())

    def admit(self, deployment: str, tenant: str = "anon") -> AdmissionTicket:
        """Admit one request or raise the matching typed refusal.

        Order of checks: shutdown (503), bounded queue (503 shed; the
        priority class picks the effective bound), then the tenant's token
        bucket (429) — so a shed request never burns quota tokens and a
        quota refusal reports an exact ``Retry-After``.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            t = self._tenant(tenant)
            self.offered += 1
            t["offered"] += 1
            if self.closed:
                self.shed += 1
                t["shed"] += 1
                raise GatewayClosedError("gateway is shutting down")
            limit = (self.max_pending if quota.priority <= 0 else
                     max(1, int(self.max_pending
                                * (1.0 - self.reserve_frac))))
            pending = self._pending.get(deployment, 0)
            if pending >= limit:
                self.shed += 1
                t["shed"] += 1
                raise QueueFullError(
                    f"deployment {deployment!r} has {pending} requests in "
                    f"flight (limit {limit} for priority {quota.priority})",
                    retry_after_s=0.05)
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    quota.rate_rps, quota.burst, clock=self.clock)
            if not bucket.try_take():
                self.rejected += 1
                t["rejected"] += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded {quota.rate_rps:g} rps "
                    f"(burst {quota.burst:g})",
                    retry_after_s=bucket.retry_after_s())
            self._pending[deployment] = pending + 1
            self._peak_pending[deployment] = max(
                self._peak_pending.get(deployment, 0), pending + 1)
            self.accepted += 1
            t["accepted"] += 1
            t["in_flight"] += 1
            return AdmissionTicket(deployment=deployment, tenant=tenant,
                                   priority=quota.priority,
                                   admitted_t=self.clock())

    def release(self, ticket: AdmissionTicket, outcome: str) -> None:
        """Retire one admitted ticket as ``completed``/``failed``/
        ``cancelled`` (exactly once; anything else is a programming
        error)."""
        if outcome not in ("completed", "failed", "cancelled"):
            raise ValueError(f"unknown admission outcome {outcome!r}")
        with self._lock:
            if ticket.released:
                raise RuntimeError(
                    f"admission ticket for {ticket.deployment!r} released "
                    "twice")
            ticket.released = True
            self._pending[ticket.deployment] -= 1
            t = self._tenant(ticket.tenant)
            t["in_flight"] -= 1
            t[outcome] += 1
            setattr(self, outcome, getattr(self, outcome) + 1)

    def close(self) -> None:
        """Stop admitting; everything already admitted may still finish."""
        with self._lock:
            self.closed = True

    def stats(self) -> dict:
        """Counters snapshot; ``conserved`` is the two invariants checked
        live."""
        with self._lock:
            in_flight = sum(self._pending.values())
            return {
                "offered": self.offered,
                "accepted": self.accepted,
                "shed": self.shed,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "in_flight": in_flight,
                "max_pending": self.max_pending,
                "reserve_frac": self.reserve_frac,
                "conserved": (
                    self.offered == self.accepted + self.shed + self.rejected
                    and self.accepted == (self.completed + self.failed
                                          + self.cancelled + in_flight)),
                "tenants": {name: dict(c)
                            for name, c in self._tenants.items()},
                "pending": dict(self._pending),
                "peak_pending": dict(self._peak_pending),
            }


# -- HTTP plumbing ------------------------------------------------------------

_MAX_HEADER_BYTES = 32 * 1024

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: a malformed/oversized request, answered then closed."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


def _encode_array(out: np.ndarray, *, b64: bool) -> dict:
    """Lossless response encoding, mirroring how the input arrived."""
    if b64:
        return {"output_b64": base64.b64encode(
                    np.ascontiguousarray(out).tobytes()).decode("ascii"),
                "dtype": str(out.dtype), "shape": list(out.shape)}
    # json floats round-trip exactly (repr is shortest-exact), so the list
    # path is bit-exact too — just larger on the wire.
    return {"output": out.tolist(), "dtype": str(out.dtype),
            "shape": list(out.shape)}


def _decode_array(body: dict) -> tuple[np.ndarray, bool]:
    """Parse a request payload array; returns ``(array, was_b64)``."""
    if "input_b64" in body:
        try:
            dtype = np.dtype(body.get("dtype", "float64"))
            shape = tuple(int(d) for d in body["shape"])
            raw = base64.b64decode(body["input_b64"], validate=True)
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy(), True
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError(400, f"bad b64 payload: {exc}") from exc
    if "input" not in body:
        raise _HttpError(400, "payload needs 'input' or 'input_b64'")
    try:
        dtype = np.dtype(body["dtype"]) if "dtype" in body else None
        return np.asarray(body["input"], dtype=dtype), False
    except (ValueError, TypeError) as exc:
        raise _HttpError(400, f"bad input array: {exc}") from exc


def _query_format(query: str) -> str | None:
    """The ``format=`` query parameter (last occurrence wins), or None."""
    values = parse_qs(query).get("format")
    return values[-1] if values else None


class Gateway:
    """Asyncio HTTP/1.1 front end over one :class:`ModelServer`.

    Construct, then :meth:`start` inside a running event loop — or use
    :meth:`launch` to run the whole gateway on a background thread with a
    blocking :class:`GatewayHandle` (the CLI, tests and benchmarks do).

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    ``executor_threads`` sizes the private pool that serves requests and
    drives decode streams; admission's ``max_pending`` should not exceed a
    small multiple of it, or accepted requests will queue for a thread.
    ``pump_interval_s`` is the scheduler heartbeat that guarantees
    deadline/delay releases even when no serving thread is waiting on a
    rider window (0 disables it).

    Routes::

        GET  /healthz                     -> {"ok": true, ...}
        GET  /metrics                     -> gateway + server metrics JSON
        GET  /metrics?format=prometheus   -> Prometheus text exposition
        GET  /v1/trace/<id>               -> one request's span tree
                                             (?format=jsonl for JSON-lines)
        POST /v1/infer/<deployment>       -> one forward; JSON in/out
        POST /v1/decode/<deployment>      -> autoregressive decode; JSON,
                                             or chunked token stream with
                                             {"stream": true}

    Infer payloads carry ``input`` (nested JSON lists) or ``input_b64`` +
    ``dtype`` + ``shape`` (raw array bytes), plus optional ``tenant``.
    Responses mirror the input encoding and include scheduler metadata
    (queue wait, batch size).  Decode payloads carry ``prompt`` (token
    ids), optional ``max_new_tokens``/``tenant``/``stream``.
    """

    def __init__(self, server: ModelServer, *, host: str = "127.0.0.1",
                 port: int = 0,
                 admission: AdmissionControl | None = None,
                 quotas: dict[str, TenantQuota] | None = None,
                 max_pending: int = 64,
                 executor_threads: int = 16,
                 pump_interval_s: float = 0.005,
                 max_body_bytes: int = 8 << 20) -> None:
        if executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {executor_threads}")
        if pump_interval_s < 0:
            raise ValueError(
                f"pump_interval_s must be >= 0, got {pump_interval_s}")
        self.server = server
        self.host = host
        self._requested_port = port
        self.admission = admission or AdmissionControl(
            max_pending=max_pending, quotas=quotas)
        self.pump_interval_s = pump_interval_s
        self.max_body_bytes = max_body_bytes
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="gateway-serve")
        self._aio_server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._pump_stop = threading.Event()
        self._pump_thread: threading.Thread | None = None
        self._closed = False
        # HTTP-level counters + end-to-end request latency (admission to
        # last response byte), all guarded by one lock: handler coroutines
        # run on the loop but decode drivers observe from pool threads.
        self._http_lock = threading.Lock()
        self.n_connections = 0
        self.n_http_requests = 0
        self.responses_by_status: dict[int, int] = {}
        self.request_latency = LatencyStats()
        # Restart detection for scrapers: uptime plus a sequence that
        # increments per snapshot — a scrape seeing either go backwards
        # knows it is talking to a new gateway process.
        self._started_t = time.perf_counter()
        self._snapshot_seq = 0
        self._registry: MetricsRegistry | None = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._aio_server is None:
            return self._requested_port
        return self._aio_server.sockets[0].getsockname()[1]

    async def start(self) -> "Gateway":
        """Bind and start accepting connections (idempotent)."""
        if self._aio_server is not None:
            return self
        self._aio_server = await asyncio.start_server(
            self._handle_conn, self.host, self._requested_port,
            limit=_MAX_HEADER_BYTES)
        if self.pump_interval_s > 0:
            self._pump_thread = threading.Thread(
                target=self._pump_loop, name="gateway-pump", daemon=True)
            self._pump_thread.start()
        return self

    def _pump_loop(self) -> None:
        """Scheduler heartbeat: fire due micro-batches on a wall cadence.

        Serving threads waiting out rider windows fire their own batches;
        this thread covers the complement — queued tickets whose serve
        task has not been scheduled yet (executor saturation) still
        release when their delay/deadline policy says so, never later.
        """
        while not self._pump_stop.wait(self.pump_interval_s):
            try:
                self.server.pump()
            except Exception:  # noqa: BLE001 — heartbeat must survive
                # A poison batch fails its own tickets (and is counted by
                # the batcher); the heartbeat keeps beating for the rest.
                pass

    async def aclose(self) -> None:
        """Stop admitting, close the listener, cancel open connections."""
        if self._closed:
            return
        self._closed = True
        self.admission.close()
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._pump_stop.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5)
        self._executor.shutdown(wait=False)

    @classmethod
    def launch(cls, server: ModelServer, **kwargs) -> "GatewayHandle":
        """Run a gateway on a dedicated event-loop thread; returns the
        blocking handle synchronous callers (CLI/tests/benches) drive."""
        gateway = cls(server, **kwargs)
        return GatewayHandle._start(gateway)

    # -- connection handling --------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        with self._http_lock:
            self.n_connections += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, reader, writer)
                if not keep_alive:
                    break
        except _HttpError as exc:
            # Unparseable request: best-effort error response, then close.
            try:
                await self._respond_json(
                    writer, exc.status,
                    {"error": "HttpError", "detail": exc.detail},
                    keep_alive=False)
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader) -> dict | None:
        """Parse one HTTP/1.1 request; None on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request head too large") from exc
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"bad request line {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"bad header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError as exc:
                raise _HttpError(400, f"bad content-length {length!r}") \
                    from exc
            if n < 0 or n > self.max_body_bytes:
                raise _HttpError(
                    413, f"body of {n} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit")
            body = await reader.readexactly(n)
        # The query string survives into dispatch (``/metrics?format=...``);
        # routes match on the path component only.
        return {"method": method, "target": target,
                "headers": headers, "body": body}

    # -- responses ------------------------------------------------------------
    def _observe_response(self, status: int,
                          started_t: float | None = None) -> None:
        with self._http_lock:
            self.responses_by_status[status] = \
                self.responses_by_status.get(status, 0) + 1
            if started_t is not None:
                self.request_latency.observe(
                    max(0.0, time.perf_counter() - started_t))

    async def _respond_json(self, writer, status: int, payload: dict, *,
                            keep_alive: bool = True,
                            extra_headers: dict | None = None,
                            started_t: float | None = None) -> None:
        body = json.dumps(payload, default=str).encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()
        self._observe_response(status, started_t)

    async def _respond_text(self, writer, status: int, text: str, *,
                            content_type: str = ("text/plain; version=0.0.4"
                                                 "; charset=utf-8"),
                            keep_alive: bool = True,
                            started_t: float | None = None) -> None:
        """Plain-text response (Prometheus exposition, JSONL exports)."""
        body = text.encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()
        self._observe_response(status, started_t)

    def _snapshot_meta(self) -> dict:
        """Advance and report the scrape sequence (plus uptime)."""
        with self._http_lock:
            self._snapshot_seq += 1
            seq = self._snapshot_seq
        return {"uptime_s": time.perf_counter() - self._started_t,
                "snapshot_seq": seq}

    def _error_payload(self, exc: Exception) -> tuple[int, dict, dict]:
        """Map an exception to ``(status, json payload, extra headers)``.

        Admission refusals keep their own status (429/503) and advertise
        ``Retry-After``; scheduler/engine failures surface as typed 500s
        (the error class name crosses the wire, so a client can tell a
        crashed worker from a bad payload); unknown deployments are 404.
        """
        if isinstance(exc, AdmissionError):
            headers = {}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = f"{exc.retry_after_s:.3f}"
            return exc.status, {"error": type(exc).__name__,
                                "code": exc.code, "detail": str(exc)}, headers
        if isinstance(exc, KeyError):
            return 404, {"error": "UnknownDeployment",
                         "detail": str(exc.args[0]) if exc.args else ""}, {}
        if isinstance(exc, (ValueError, TypeError)):
            return 400, {"error": type(exc).__name__, "detail": str(exc)}, {}
        return 500, {"error": type(exc).__name__, "detail": str(exc)}, {}

    # -- dispatch -------------------------------------------------------------
    async def _dispatch(self, request: dict, reader, writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        started_t = time.perf_counter()
        with self._http_lock:
            self.n_http_requests += 1
        method, full_target = request["method"], request["target"]
        target, _, query = full_target.partition("?")
        keep_alive = request["headers"].get("connection", "").lower() \
            != "close"
        if target == "/healthz" and method == "GET":
            payload = {"ok": True, "deployments": self.server.models()}
            payload.update(self._snapshot_meta())
            await self._respond_json(writer, 200, payload,
                                     keep_alive=keep_alive,
                                     started_t=started_t)
            return keep_alive
        if target == "/metrics" and method == "GET":
            if _query_format(query) == "prometheus":
                self._snapshot_meta()  # a scrape advances the sequence too
                text = render_prometheus(
                    [self.metrics_registry(),
                     self.server.metrics_registry()])
                await self._respond_text(writer, 200, text,
                                         keep_alive=keep_alive,
                                         started_t=started_t)
                return keep_alive
            payload = self.stats()
            payload.update(self._snapshot_meta())
            await self._respond_json(writer, 200, payload,
                                     keep_alive=keep_alive,
                                     started_t=started_t)
            return keep_alive
        if target.startswith("/v1/trace/") and method == "GET":
            return await self._handle_trace(
                target[len("/v1/trace/"):], query, writer,
                keep_alive=keep_alive, started_t=started_t)
        if target.startswith("/v1/infer/"):
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "MethodNotAllowed"},
                    keep_alive=False, started_t=started_t)
                return False
            return await self._handle_infer(
                target[len("/v1/infer/"):], request, writer,
                keep_alive=keep_alive, started_t=started_t)
        if target.startswith("/v1/decode/"):
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "MethodNotAllowed"},
                    keep_alive=False, started_t=started_t)
                return False
            return await self._handle_decode(
                target[len("/v1/decode/"):], request, reader, writer,
                keep_alive=keep_alive, started_t=started_t)
        await self._respond_json(
            writer, 404, {"error": "NoSuchRoute", "detail": target},
            keep_alive=keep_alive, started_t=started_t)
        return keep_alive

    @staticmethod
    def _parse_body(request: dict) -> dict:
        try:
            body = json.loads(request["body"] or b"{}")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad json body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HttpError(400, "json body must be an object")
        return body

    async def _handle_trace(self, raw_id: str, query: str, writer, *,
                            keep_alive: bool, started_t: float) -> bool:
        """``GET /v1/trace/<id>``: one request's span tree, JSON by default,
        JSON-lines (one span per line) with ``?format=jsonl``.  Unknown,
        evicted and unparseable ids are all 404 — the buffer is bounded, so
        "never existed" and "aged out" are indistinguishable by design."""
        try:
            trace = self.server.get_trace(parse_trace_id(raw_id))
        except ValueError:
            trace = None
        if trace is None:
            await self._respond_json(
                writer, 404, {"error": "UnknownTrace", "detail": raw_id},
                keep_alive=keep_alive, started_t=started_t)
            return keep_alive
        if _query_format(query) == "jsonl":
            await self._respond_text(writer, 200, trace.to_jsonl() + "\n",
                                     content_type="application/jsonl",
                                     keep_alive=keep_alive,
                                     started_t=started_t)
            return keep_alive
        await self._respond_json(writer, 200, trace.to_dict(),
                                 keep_alive=keep_alive, started_t=started_t)
        return keep_alive

    async def _handle_infer(self, name: str, request: dict, writer, *,
                            keep_alive: bool, started_t: float) -> bool:
        try:
            body = self._parse_body(request)
        except _HttpError as exc:
            await self._respond_json(
                writer, exc.status,
                {"error": "HttpError", "detail": exc.detail},
                keep_alive=keep_alive, started_t=started_t)
            return keep_alive
        tenant = str(body.get("tenant", "anon"))
        try:
            x, was_b64 = _decode_array(body)
            entry = self.server.entry(name)        # KeyError -> 404
            admission = self.admission.admit(name, tenant)
        except Exception as exc:  # noqa: BLE001 — mapped to typed responses
            status, payload, headers = (
                (exc.status, {"error": "HttpError", "detail": exc.detail},
                 {}) if isinstance(exc, _HttpError)
                else self._error_payload(exc))
            await self._respond_json(writer, status, payload,
                                     keep_alive=keep_alive,
                                     extra_headers=headers,
                                     started_t=started_t)
            return keep_alive
        loop = asyncio.get_running_loop()
        # Ingress owns the trace: the root span opens here and closes only
        # after the response drained, so the tree covers the request's full
        # gateway residency (root_autoclose off keeps the ticket's
        # completion from closing it early).
        trace = self.server.start_trace(name)
        if trace is not None:
            trace.root_autoclose = False
            trace.root.attrs["tenant"] = tenant
            trace.root.attrs["ingress"] = "http"
        try:
            # Enqueue without firing, then serve on a pool thread: the
            # serving thread honors the deployment's release policy
            # (DeadlinePolicy slack or fixed delay) exactly like
            # ModelServer.submit_async, and the event loop never blocks.
            ticket = entry.batcher.submit(x, fire=False, trace=trace)
            out = await loop.run_in_executor(
                self._executor, entry.batcher.serve, ticket)
        except Exception as exc:  # noqa: BLE001 — typed 500 to the client
            self.admission.release(admission, "failed")
            if trace is not None:
                trace.root.attrs["error"] = type(exc).__name__
                trace.root.end(status="error")
            status, payload, headers = self._error_payload(exc)
            await self._respond_json(writer, status, payload,
                                     keep_alive=keep_alive,
                                     extra_headers=headers,
                                     started_t=started_t)
            return keep_alive
        self.admission.release(admission, "completed")
        respond_span = trace.span("respond") if trace is not None else None
        payload = _encode_array(out, b64=was_b64)
        payload.update({
            "deployment": name,
            "tenant": tenant,
            "queue_wait_ms": ticket.queue_wait_s * 1e3,
            "batch_size": ticket.batch_size,
            "cached": ticket.cached,
        })
        if trace is not None:
            payload["trace_id"] = format_trace_id(trace.trace_id)
        await self._respond_json(writer, 200, payload,
                                 keep_alive=keep_alive, started_t=started_t)
        if respond_span is not None:
            respond_span.attrs["http_status"] = 200
            respond_span.end()
            trace.root.end()
        return keep_alive

    async def _handle_decode(self, name: str, request: dict, reader,
                             writer, *, keep_alive: bool,
                             started_t: float) -> bool:
        try:
            body = self._parse_body(request)
            prompt = body.get("prompt")
            if not isinstance(prompt, list) or not prompt:
                raise _HttpError(400, "decode needs a non-empty 'prompt' "
                                      "list of token ids")
            prompt = np.asarray(prompt, dtype=np.int64)
            max_new = body.get("max_new_tokens")
            stream = bool(body.get("stream", False))
            tenant = str(body.get("tenant", "anon"))
        except _HttpError as exc:
            await self._respond_json(
                writer, exc.status,
                {"error": "HttpError", "detail": exc.detail},
                keep_alive=keep_alive, started_t=started_t)
            return keep_alive
        try:
            self.server.entry(name)                # KeyError -> 404
            admission = self.admission.admit(name, tenant)
            ticket = self.server.submit_decode(name, prompt,
                                               max_new_tokens=max_new)
        except Exception as exc:  # noqa: BLE001 — mapped to typed responses
            if isinstance(exc, (KeyError, AdmissionError)):
                status, payload, headers = self._error_payload(exc)
            else:
                # submit_decode refusals (capability, bad prompt) after a
                # successful admission must release what they admitted.
                try:
                    self.admission.release(admission, "failed")
                except UnboundLocalError:
                    pass
                status, payload, headers = self._error_payload(exc)
            await self._respond_json(writer, status, payload,
                                     keep_alive=keep_alive,
                                     extra_headers=headers,
                                     started_t=started_t)
            return keep_alive
        if stream:
            return await self._stream_decode(name, ticket, admission,
                                             reader, writer,
                                             started_t=started_t)
        loop = asyncio.get_running_loop()
        try:
            tokens = await loop.run_in_executor(self._executor,
                                                ticket.result)
        except Exception as exc:  # noqa: BLE001 — typed 500 to the client
            self.admission.release(admission, "failed")
            status, payload, headers = self._error_payload(exc)
            await self._respond_json(writer, status, payload,
                                     keep_alive=keep_alive,
                                     extra_headers=headers,
                                     started_t=started_t)
            return keep_alive
        self.admission.release(admission, "completed")
        await self._respond_json(
            writer, 200,
            {"tokens": [int(t) for t in tokens], "deployment": name,
             "seeded_tokens": ticket.seeded_tokens,
             "n_steps": ticket.n_steps,
             "queue_wait_ms": ticket.queue_wait_s * 1e3},
            keep_alive=keep_alive, started_t=started_t)
        return keep_alive

    async def _stream_decode(self, name: str, ticket, admission, reader,
                             writer, *, started_t: float) -> bool:
        """Chunked token stream; a dropped client cancels only this
        request.

        A pool thread drives the continuous batch (``iter_tokens``) and
        feeds an ``asyncio.Queue``; the coroutine multiplexes that queue
        against connection EOF, so the moment the client goes away the
        ticket is cancelled — its KV slot compacts out of the running
        batch — and every other stream keeps its exact tokens.  Streaming
        responses always close the connection (the EOF watcher consumes
        the socket).
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def drive() -> None:
            try:
                for tok in ticket.iter_tokens():
                    loop.call_soon_threadsafe(queue.put_nowait,
                                              ("token", tok))
            except Exception as exc:  # noqa: BLE001 — surfaced as a chunk
                loop.call_soon_threadsafe(queue.put_nowait, ("error", exc))
            else:
                loop.call_soon_threadsafe(queue.put_nowait, ("end", None))

        driver = loop.run_in_executor(self._executor, drive)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/jsonl\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        eof_task = asyncio.create_task(reader.read(1))
        outcome = "completed"
        status = 200
        try:
            while True:
                get_task = asyncio.create_task(queue.get())
                done, _ = await asyncio.wait(
                    {get_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED)
                if eof_task in done and get_task not in done:
                    get_task.cancel()
                    outcome = "cancelled"
                    break
                kind, value = get_task.result()
                if kind == "token":
                    line = json.dumps({"token": int(value)}).encode() + b"\n"
                    writer.write(f"{len(line):x}\r\n".encode() + line
                                 + b"\r\n")
                    await writer.drain()
                elif kind == "end":
                    line = json.dumps(
                        {"done": True,
                         "n_tokens": len(ticket.tokens),
                         "seeded_tokens": ticket.seeded_tokens}
                    ).encode() + b"\n"
                    writer.write(f"{len(line):x}\r\n".encode() + line
                                 + b"\r\n" + b"0\r\n\r\n")
                    await writer.drain()
                    break
                else:
                    outcome = "failed"
                    status = 500
                    line = json.dumps(
                        {"error": type(value).__name__,
                         "detail": str(value)}).encode() + b"\n"
                    writer.write(f"{len(line):x}\r\n".encode() + line
                                 + b"\r\n" + b"0\r\n\r\n")
                    await writer.drain()
                    break
        except (ConnectionError, asyncio.CancelledError):
            outcome = "cancelled"
        finally:
            if not eof_task.done():
                eof_task.cancel()
            if outcome == "cancelled":
                # Compact the request out of the running batch; the driver
                # thread unblocks with CancelledError and exits.
                await loop.run_in_executor(
                    self._executor, self.server.cancel_decode, name, ticket)
                status = 499  # client closed request (nginx convention)
            await asyncio.wrap_future(driver)
            self.admission.release(admission, outcome)
            self._observe_response(status, started_t)
        return False

    # -- observability --------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """The gateway's own instrument registry (HTTP + admission).

        Rendered together with the wrapped server's registry by the
        Prometheus endpoint; the admission ledger's conservation laws ride
        along as checked invariants.
        """
        if self._registry is None:
            self._registry = self._build_registry()
        return self._registry

    def _build_registry(self) -> MetricsRegistry:
        # Prefixed so the synthetic invariant gauge (repro_gateway_invariant)
        # never collides with the server registry's repro_invariant when one
        # scrape renders both.
        reg = MetricsRegistry(prefix="repro_gateway")

        def admission_stat(key):
            return lambda: self.admission.stats()[key]

        def by_status():
            with self._http_lock:
                items = sorted(self.responses_by_status.items())
            return [({"status": str(status)}, n) for status, n in items]

        def latency_view():
            with self._http_lock:
                return LatencyStats(
                    max_samples=self.request_latency.max_samples) \
                    .merge(self.request_latency)

        reg.counter("repro_gateway_connections_total",
                    "TCP connections accepted.",
                    lambda: self.n_connections)
        reg.counter("repro_gateway_http_requests_total",
                    "HTTP requests received.",
                    lambda: self.n_http_requests)
        reg.counter("repro_gateway_responses_total",
                    "HTTP responses sent, by status code.", by_status)
        reg.histogram("repro_gateway_request_seconds",
                      "End-to-end request latency (admission to last "
                      "response byte).", latency_view)
        reg.gauge("repro_gateway_uptime_seconds",
                  "Seconds since the gateway started.",
                  lambda: time.perf_counter() - self._started_t)
        reg.gauge("repro_gateway_snapshot_seq",
                  "Monotonic snapshot sequence (resets on restart).",
                  lambda: self._snapshot_seq)
        reg.counter("repro_admission_offered_total",
                    "Requests that reached admission control.",
                    admission_stat("offered"))
        reg.counter("repro_admission_accepted_total",
                    "Requests admitted to a scheduler.",
                    admission_stat("accepted"))
        reg.counter("repro_admission_shed_total",
                    "Requests shed by the bounded admission queue.",
                    admission_stat("shed"))
        reg.counter("repro_admission_rejected_total",
                    "Requests rejected by tenant quota.",
                    admission_stat("rejected"))
        reg.counter("repro_admission_completed_total",
                    "Admitted requests that completed.",
                    admission_stat("completed"))
        reg.counter("repro_admission_failed_total",
                    "Admitted requests that failed.",
                    admission_stat("failed"))
        reg.counter("repro_admission_cancelled_total",
                    "Admitted requests cancelled by their client.",
                    admission_stat("cancelled"))
        reg.gauge("repro_admission_in_flight",
                  "Admitted requests currently in flight.",
                  admission_stat("in_flight"))
        reg.invariant("admission_conserved", admission_stat("conserved"))
        return reg

    def stats(self) -> dict:
        """Gateway-level snapshot: admission, HTTP counters, server rollup."""
        with self._http_lock:
            http = {
                "n_connections": self.n_connections,
                "n_http_requests": self.n_http_requests,
                "responses_by_status": dict(self.responses_by_status),
                "request_latency": self.request_latency.summary(),
            }
            http["request_latency"]["p99_ms"] = \
                self.request_latency.percentile(99.0) * 1e3
        return {
            "admission": self.admission.stats(),
            "http": http,
            "server": self.server.metrics().summary(),
        }


class GatewayHandle:
    """A gateway running on its own event-loop thread (see
    :meth:`Gateway.launch`): synchronous ``host``/``port``/``stats``/
    ``close`` for CLI, tests and benchmarks.  Context-manager friendly;
    ``close`` is idempotent and leaves the wrapped :class:`ModelServer`
    untouched (the caller owns it)."""

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    @classmethod
    def _start(cls, gateway: Gateway) -> "GatewayHandle":
        handle = cls(gateway)
        started = threading.Event()
        boot_error: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            handle._loop = loop
            try:
                loop.run_until_complete(gateway.start())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                boot_error.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        handle._thread = threading.Thread(target=runner,
                                          name="gateway-loop", daemon=True)
        handle._thread.start()
        started.wait()
        if boot_error:
            raise boot_error[0]
        return handle

    @property
    def host(self) -> str:
        return self.gateway.host

    @property
    def port(self) -> int:
        return self.gateway.port

    def stats(self) -> dict:
        return self.gateway.stats()

    def close(self, timeout: float = 10.0) -> None:
        """Shut the gateway down and join its loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(self.gateway.aclose(),
                                                  self._loop)
        try:
            future.result(timeout=timeout)
        except CancelledError:
            pass
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
