"""Process-backed worker pool: serving parallelism on real cores.

:class:`ProcessWorkerPool` mirrors the :class:`~repro.serve.pool.WorkerPool`
API (``submit``/``run_all``/``wait``/``stats``/context-manager shutdown)
but executes on **spawned worker processes**, so deployments run outside
the GIL — the refactor that turns the thread tier's 0.98x "concurrency"
into real multi-core throughput.

Architecture (one slot per worker):

* a spawned process running :func:`~repro.serve.procworker.worker_main`,
  its BLAS pools pinned to ``blas_threads`` via the parent's environment
  window around ``Process.start()`` (children inherit the capped
  environment; OpenBLAS/MKL/OMP read it at library load);
* a duplex control pipe carrying small tagged tuples — never ndarrays;
* a :class:`~repro.serve.shm.ShmRing` pair for request/response arrays
  (frame offsets cross the pipe, payload bytes never do), with automatic
  pipe fallback for frames bigger than a ring;
* a parent-side dispatcher thread that owns the slot's protocol: it pulls
  tasks (shared FIFO queue, or the slot's direct deque for targeted work
  like deployment loads), performs the round trip, and resolves the
  future.  One round trip in flight per worker is the ring's safety
  contract.

Deployments are **rehydrated, not pickled**: :meth:`load_deployment`
broadcasts a :class:`~repro.serve.store.PlanStore` path (plus the stored
proxy-zoo reference or a picklable ``model_factory``) and every worker
rebuilds the session locally, so any worker can serve any deployment.

Crash semantics: a worker dying mid-task (segfault, OOM-kill, ``os._exit``)
fails **only the in-flight task** — its future raises
:class:`WorkerCrashError` — then the slot respawns a fresh process, replays
the deployment loads, and keeps draining the queue.  A worker found dead
*before* a task was delivered is respawned and the task retried once
(nothing was executing, so the retry is safe even for non-idempotent work).
"""

from __future__ import annotations

import collections
import os
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import wait as futures_wait
from contextlib import contextmanager

import numpy as np

from .pool import PoolShutdownError, WorkerStats
from .procworker import BLAS_ENV_VARS, worker_main
from .shm import DEFAULT_RING_BYTES, ShmRing

__all__ = ["DEFAULT_STAGE_RING_BYTES", "ProcessWorkerPool",
           "ProcessSessionProxy", "WorkerCrashError"]

#: Per-direction capacity of one stage edge's ring.  Smaller than the
#: serve rings: an edge carries one stage's activation per frame (not a
#: whole coalesced group), and a pipeline allocates two rings per stage.
DEFAULT_STAGE_RING_BYTES = 8 << 20


class WorkerCrashError(RuntimeError):
    """A worker process died while a task was in flight.

    Only that task fails; the pool respawns the worker and later tasks
    proceed.  Riders of a crashed serving batch see this error through
    their tickets exactly like a poison-batch failure.
    """


class _SendCrash(Exception):
    """Internal: the child was dead before the task message was delivered."""


_SPAWN_ENV_LOCK = threading.Lock()


@contextmanager
def _spawn_blas_env(threads: int):
    """Cap BLAS env vars for the duration of a child spawn, then restore.

    The spawned interpreter inherits the capped environment, so its BLAS
    libraries come up pinned no matter what the child imports first — the
    only mechanism that also covers ``__main__`` re-imports pulling numpy
    during spawn bootstrap.
    """
    with _SPAWN_ENV_LOCK:
        saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
        os.environ.update({var: str(int(threads))
                           for var in BLAS_ENV_VARS})
        try:
            yield
        finally:
            for var, old in saved.items():
                if old is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = old


class _Slot:
    """One worker's parent-side state; owned by its dispatcher thread."""

    __slots__ = ("worker_id", "process", "conn", "req_ring", "resp_ring",
                 "stats", "direct", "n_pipe_fallback")

    def __init__(self, worker_id: int, started_t: float) -> None:
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.req_ring = None
        self.resp_ring = None
        self.stats = WorkerStats(worker_id=worker_id, started_t=started_t)
        self.direct: collections.deque = collections.deque()
        self.n_pipe_fallback = 0


class _StageEdge:
    """One pipeline stage's transport: a dedicated ring pair to its slot.

    The edge's rings are depth-slotted (see :class:`~repro.serve.shm
    .ShmRing` ``slots``), so up to ``depth`` activations can be outstanding
    on this edge — the generalization of the serve path's one-in-flight
    protocol that pipelining needs.  Edges survive a worker respawn: the
    replacement child re-attaches the same segments by name.
    """

    __slots__ = ("name", "stage", "slot_id", "req_ring", "resp_ring",
                 "n_pipe_fallback")

    def __init__(self, name: str, stage: int, slot_id: int,
                 req_ring: ShmRing, resp_ring: ShmRing) -> None:
        self.name = name
        self.stage = stage
        self.slot_id = slot_id
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.n_pipe_fallback = 0

    def close(self) -> None:
        self.req_ring.close()
        self.resp_ring.close()

    def stats(self) -> dict:
        return {
            "stage": self.stage,
            "worker": self.slot_id,
            "n_frames": self.req_ring.n_frames,
            "n_wraps": self.req_ring.n_wraps,
            "n_pipe_fallback": self.n_pipe_fallback,
            "capacity": self.req_ring.capacity,
            "slots": self.req_ring.slots,
        }


class ProcessWorkerPool:
    """Fixed pool of spawned worker processes behind the WorkerPool API.

    ``submit`` accepts **picklable** callables (module-level functions and
    their picklable arguments) — the cross-process analogue of the thread
    pool's task path; serving traffic uses :meth:`load_deployment` /
    :meth:`serve`, which move model state by plan store and activations by
    shared memory; sharded pipelines use :meth:`load_stages` /
    :meth:`run_stage`, which resolve serializable stage specs against each
    worker's rehydration cache and hand activations over per-stage-edge
    rings.  ``blas_threads`` defaults to an even split of the machine's
    cores across the workers, the no-oversubscription point.
    """

    #: ExecutorBackend capability: tasks execute in spawned processes —
    #: payloads must pickle, model state travels by plan store, and
    #: sharded stages use the stage transport instead of closures.
    crosses_process = True

    def __init__(self, workers: int, *, blas_threads: int | None = None,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 name: str = "repro-procserve") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        # spawn, never fork: a forked child would clone the parent's
        # thread locks mid-state, and fork defeats the BLAS environment
        # window (the child inherits already-initialized thread pools).
        self._ctx = multiprocessing.get_context("spawn")
        if blas_threads is None:
            blas_threads = max(1, (os.cpu_count() or 1) // workers)
        self.blas_threads = int(blas_threads)
        self.ring_bytes = int(ring_bytes)
        self._name = name
        self._tasks: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._shutdown = False
        self._n_crashes = 0
        self._n_retried = 0
        self._deployments: dict[str, tuple] = {}
        # Sharded-pipeline state: per-deployment stage specs (for respawn
        # replay) and per-stage transport edges.
        self._stage_specs: dict[str, tuple] = {}
        self._stage_edges: dict[str, dict[int, _StageEdge]] = {}
        now = time.perf_counter()
        self._slots = [_Slot(i, now) for i in range(workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._threads = [
            threading.Thread(target=self._dispatch_loop, args=(slot,),
                             name=f"{name}-dispatch-{slot.worker_id}",
                             daemon=True)
            for slot in self._slots
        ]
        for thread in self._threads:
            thread.start()

    # -- child lifecycle ------------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        """Stand up one worker: rings, pipe, pinned spawned process."""
        slot.req_ring = ShmRing(self.ring_bytes)
        slot.resp_ring = ShmRing(self.ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, slot.req_ring.name, slot.resp_ring.name,
                  slot.worker_id, self.blas_threads),
            name=f"{self._name}-{slot.worker_id}", daemon=True)
        with _spawn_blas_env(self.blas_threads):
            process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn

    def _teardown(self, slot: _Slot, *, timeout: float = 5.0) -> None:
        """Tear one worker down hard; safe on an already-dead child."""
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        if slot.process is not None:
            slot.process.join(timeout=timeout)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=timeout)
        for ring in (slot.req_ring, slot.resp_ring):
            if ring is not None:
                ring.close()
        slot.conn = slot.req_ring = slot.resp_ring = None

    def _respawn(self, slot: _Slot) -> None:
        """Replace a dead worker and replay its deployment/stage loads."""
        with self._lock:
            self._n_crashes += 1
            specs = list(self._deployments.items())
            stage_specs = list(self._stage_specs.items())
        self._teardown(slot, timeout=1.0)
        self._spawn(slot)
        for deployment_name, (store_path, model_factory,
                              load_kwargs) in specs:
            try:
                self._round_trip(slot, ("load", deployment_name, store_path,
                                        model_factory, load_kwargs))
            except Exception:  # noqa: BLE001 — a serve will resurface it
                # The replacement worker serves what it could reload; a
                # deployment whose store went bad fails per-request with
                # the child's error instead of wedging the whole slot.
                continue
        for name, (store_path, model_factory, load_kwargs, plan_state,
                   depth) in stage_specs:
            # Stage edges survive the respawn — the replacement child
            # re-attaches the same segments by name — so only the stages
            # this slot hosts are replayed.
            rings = [(edge.stage, edge.req_ring.name, edge.resp_ring.name)
                     for edge in self._stage_edges.get(name, {}).values()
                     if edge.slot_id == slot.worker_id]
            if not rings:
                continue
            try:
                self._round_trip(slot, ("load_stages", name, store_path,
                                        model_factory, load_kwargs,
                                        plan_state, rings, depth))
            except Exception:  # noqa: BLE001 — a run_stage resurfaces it
                continue

    # -- protocol -------------------------------------------------------------
    def _round_trip(self, slot: _Slot, message):
        """One send/recv exchange; crashes are typed for the caller."""
        try:
            slot.conn.send(message)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise _SendCrash(str(exc)) from exc
        try:
            reply = slot.conn.recv()
        except (EOFError, ConnectionError, OSError) as exc:
            raise WorkerCrashError(
                f"worker {slot.worker_id} (pid "
                f"{getattr(slot.process, 'pid', '?')}) died mid-task; "
                "only this task fails — the worker is respawned") from exc
        if reply[0] == "error":
            raise reply[1]
        return reply

    def _execute_once(self, slot: _Slot, kind: str, payload):
        """Build the wire message (fresh per attempt) and exchange it."""
        if kind == "serve":
            deployment_name, batches, pad_axis, pad_value, trace_id = payload
            arrays = [np.ascontiguousarray(np.asarray(b)) for b in batches]
            offset = slot.req_ring.write(slot.req_ring.n_frames, arrays,
                                         trace_id=trace_id)
            fallback = None
            if offset is None:
                slot.n_pipe_fallback += 1
                fallback = arrays
            # The trace id rides the pipe envelope too, so the pipe
            # fallback path propagates it even when no frame was written.
            reply = self._round_trip(
                slot, ("serve", deployment_name, pad_axis, pad_value,
                       offset, fallback, trace_id))
            _, out_offset, fb_outputs, metas = reply
            if out_offset is not None:
                # Copy out: the child reuses the response slot on its
                # next reply, so parent-held outputs must not alias it.
                _, _, outputs = slot.resp_ring.read(out_offset, copy=True)
            else:
                slot.n_pipe_fallback += 1
                outputs = fb_outputs
            return outputs, metas
        if kind == "stage":
            name, stage, x, trace_id = payload
            edge = self._stage_edges[name][stage]
            arr = np.ascontiguousarray(np.asarray(x))
            offset = edge.req_ring.write(edge.req_ring.n_frames, [arr],
                                         trace_id=trace_id)
            fallback = None
            if offset is None:
                edge.n_pipe_fallback += 1
                fallback = arr
            reply = self._round_trip(
                slot, ("stage", name, stage, offset, fallback, trace_id))
            _, out_offset, fb_output, layer_states, exec_s = reply
            if out_offset is not None:
                _, _, outputs = edge.resp_ring.read(out_offset, copy=True)
                y = outputs[0]
            else:
                edge.n_pipe_fallback += 1
                y = fb_output
            return y, layer_states, exec_s
        return self._round_trip(slot, (kind, *payload))[1]

    def _execute(self, slot: _Slot, kind: str, payload):
        """Run one task on the slot, absorbing a pre-delivery crash.

        A send that finds the pipe already broken means the child died
        *between* tasks — nothing was executing, so after a respawn the
        task retries once.  A crash after delivery (recv fails) is the
        real mid-task case: it propagates as :class:`WorkerCrashError`
        after the respawn, failing only this task.
        """
        try:
            return self._execute_once(slot, kind, payload)
        except _SendCrash:
            with self._lock:
                self._n_retried += 1
            self._respawn(slot)
            return self._execute_once(slot, kind, payload)
        except WorkerCrashError:
            self._respawn(slot)
            raise

    # -- dispatcher side ------------------------------------------------------
    def _dispatch_loop(self, slot: _Slot) -> None:
        while True:
            if slot.direct:
                task = slot.direct.popleft()
            else:
                try:
                    # Short poll: direct work (pipeline stage hops land in
                    # the slot's deque) must not wait out a long shared-
                    # queue timeout — per-hop latency is pipeline latency.
                    task = self._tasks.get(timeout=0.002)
                except queue.Empty:
                    # Idle liveness: a worker killed *between* tasks would
                    # otherwise go undetected until a send to it fails —
                    # and a busy sibling can drain the whole queue first,
                    # leaving the corpse listed in pids indefinitely.
                    if (slot.process is not None
                            and not slot.process.is_alive()
                            and not self._shutdown):
                        self._respawn(slot)
                    continue
                if task is None:          # shutdown sentinel
                    break
            self._run_task(slot, task)
        while slot.direct:                # targeted work queued pre-shutdown
            self._run_task(slot, slot.direct.popleft())
        try:
            self._round_trip(slot, None)  # polite goodbye
        except (_SendCrash, WorkerCrashError, Exception):  # noqa: BLE001
            pass
        self._teardown(slot)
        # Final shutdown (never a respawn): this slot's stage edges are
        # dead with it — destroy their segments.
        with self._lock:
            for edges in self._stage_edges.values():
                for edge in list(edges.values()):
                    if edge.slot_id == slot.worker_id:
                        edge.close()
                        edges.pop(edge.stage, None)

    def _run_task(self, slot: _Slot, task) -> None:
        future, kind, payload = task
        if not future.set_running_or_notify_cancel():
            return
        t0 = time.perf_counter()
        with self._lock:
            slot.stats.busy_since = t0
        try:
            result = self._execute(slot, kind, payload)
        except BaseException as exc:  # noqa: BLE001 — future carries it
            if isinstance(exc, _SendCrash):
                exc = WorkerCrashError(
                    f"worker {slot.worker_id} died before task delivery "
                    f"(twice): {exc}")
            future.set_exception(exc)
        else:
            future.set_result(result)
        finally:
            with self._lock:
                slot.stats.n_tasks += 1
                slot.stats.busy_s += time.perf_counter() - t0
                slot.stats.busy_since = None

    # -- task intake (WorkerPool API) -----------------------------------------
    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on some worker process.

        Everything crosses a process boundary, so ``fn`` and its arguments
        must pickle (module-level functions; no lambdas or closures) and
        the result travels back by value.
        """
        return self._enqueue("call", (fn, args, kwargs))

    def _enqueue(self, kind: str, payload) -> Future:
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot submit to a shut-down ProcessWorkerPool")
            future: Future = Future()
            self._tasks.put((future, kind, payload))
        return future

    def run_all(self, thunks) -> list:
        """Run callables across the workers; results in order (barrier).

        Matches :meth:`WorkerPool.run_all`: every thunk is queued before
        any result is awaited and the first exception re-raises only after
        all thunks finished or failed.  (No helping is needed here — the
        waiters are real processes, not pool threads.)
        """
        futures = [self.submit(thunk) for thunk in thunks]
        self.wait(futures)
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def wait(self, futures, *, help_group=None) -> None:
        """Block until every future resolved (API parity with WorkerPool).

        ``help_group`` is accepted for signature compatibility and
        ignored: inline helping exists to unwedge nested submission on a
        fixed *thread* pool, and no parent thread can execute a child
        process's work.
        """
        del help_group
        futures_wait(list(futures))

    # -- serving surface ------------------------------------------------------
    @staticmethod
    def _prepare_store(store_path, load_kwargs: dict) -> None:
        """Pre-build the store's mmap blob once, parent-side.

        Workers load with ``mmap=True`` by default; extracting the array
        blob here means N workers map one ready sidecar instead of racing
        to build N.  Failures are left for the worker's load to surface —
        the typed store errors must keep coming from the child path.
        """
        if load_kwargs.get("mmap", True) is False:
            return
        from .store import PlanStore

        try:
            PlanStore(store_path).ensure_blob()
        except Exception:  # noqa: BLE001 — the worker load reports it
            pass

    def load_deployment(self, name: str, store_path, *,
                        model_factory=None, max_records: int | None = None,
                        load_kwargs: dict | None = None) -> None:
        """Rehydrate one deployment's session **in every worker**.

        ``store_path`` must point at a saved plan store; the float model
        comes from the store's proxy-zoo reference or ``model_factory``
        (a picklable zero-arg callable).  The spec is registered for
        crash-respawn replay, so a replacement worker comes back serving
        the same deployments.  Blocks until every worker loaded (or
        raises the first load failure — e.g. a
        :class:`~repro.serve.store.PlanStoreError` from a truncated file,
        re-raised here from the child).
        """
        kwargs = dict(load_kwargs or {})
        if max_records is not None:
            kwargs["max_records"] = max_records
        self._prepare_store(store_path, kwargs)
        spec = (os.fspath(store_path), model_factory, kwargs)
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot submit to a shut-down ProcessWorkerPool")
            self._deployments[name] = spec
            futures = []
            for slot in self._slots:
                future: Future = Future()
                slot.direct.append((future, "load", (name, *spec)))
                futures.append(future)
        self.wait(futures)
        for future in futures:
            future.result()

    def unload_deployment(self, name: str) -> None:
        """Drop a deployment from every worker (and from respawn replay)."""
        with self._lock:
            self._deployments.pop(name, None)
            if self._shutdown:
                return
            futures = []
            for slot in self._slots:
                future: Future = Future()
                slot.direct.append((future, "unload", (name,)))
                futures.append(future)
        self.wait(futures)

    def serve_async(self, name: str, batches, *, pad_axis=None,
                    pad_value=0, trace_id: int = 0) -> Future:
        """Dispatch one coalesced group; future of ``(outputs, metas)``.

        ``trace_id`` (0 = untraced) stamps the request frame header and
        the control envelope so the group stays attributable to its trace
        on the worker side of the boundary.
        """
        return self._enqueue("serve", (name, list(batches), pad_axis,
                                       pad_value, trace_id))

    def serve(self, name: str, batches, *, pad_axis=None, pad_value=0,
              trace_id: int = 0):
        """Blocking :meth:`serve_async`; the session-proxy entry point."""
        return self.serve_async(name, batches, pad_axis=pad_axis,
                                pad_value=pad_value,
                                trace_id=trace_id).result()

    # -- stage transport (process-per-stage sharded pipelines) ---------------
    def load_stages(self, name: str, store_path, plan_state: dict, *,
                    model_factory=None, load_kwargs: dict | None = None,
                    depth: int = 2,
                    stage_ring_bytes: int = DEFAULT_STAGE_RING_BYTES) -> dict:
        """Host a sharded deployment's stages across the workers.

        The stage spec is fully serializable — a plan-store path, the
        :class:`~repro.shard.plan.ShardPlan` state and the load config —
        so nothing closure-shaped crosses the boundary; each owning worker
        rehydrates the session from its per-process cache (one session per
        store, however many stages it hosts) and attaches the stage's
        dedicated ring pair.  Stage *k* lands on worker ``k % workers``,
        so distinct stages execute on distinct processes whenever the pool
        is at least as wide as the pipeline.  Returns the stage->worker
        assignment.  Registered for crash-respawn replay.
        """
        n_stages = len(plan_state.get("stages", ()))
        if n_stages < 1:
            raise ValueError(f"stage plan for {name!r} names no stages")
        kwargs = dict(load_kwargs or {})
        self._prepare_store(store_path, kwargs)
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot submit to a shut-down ProcessWorkerPool")
            old_edges = self._stage_edges.pop(name, None)
            edges: dict[int, _StageEdge] = {}
            for k in range(n_stages):
                slot_id = k % len(self._slots)
                edges[k] = _StageEdge(
                    name, k, slot_id,
                    ShmRing(stage_ring_bytes, slots=depth),
                    ShmRing(stage_ring_bytes, slots=depth))
            self._stage_edges[name] = edges
            self._stage_specs[name] = (os.fspath(store_path), model_factory,
                                       kwargs, plan_state, depth)
            by_slot: dict[int, list] = {}
            for edge in edges.values():
                by_slot.setdefault(edge.slot_id, []).append(
                    (edge.stage, edge.req_ring.name, edge.resp_ring.name))
            futures = []
            for slot_id, rings in by_slot.items():
                future: Future = Future()
                self._slots[slot_id].direct.append(
                    (future, "load_stages",
                     (name, os.fspath(store_path), model_factory, kwargs,
                      plan_state, rings, depth)))
                futures.append(future)
        if old_edges is not None:
            for edge in old_edges.values():
                edge.close()
        self.wait(futures)
        for future in futures:
            future.result()
        return {k: edge.slot_id for k, edge in edges.items()}

    def unload_stages(self, name: str) -> None:
        """Drop a sharded deployment's stages and destroy their edges."""
        with self._lock:
            self._stage_specs.pop(name, None)
            edges = self._stage_edges.pop(name, None)
            futures = []
            if not self._shutdown and edges:
                for slot_id in {e.slot_id for e in edges.values()}:
                    future: Future = Future()
                    self._slots[slot_id].direct.append(
                        (future, "unload_stages", (name,)))
                    futures.append(future)
        if futures:
            self.wait(futures)
        # The workers detached their side above (or are shutting down);
        # now the parent-owned segments can unlink.
        if edges:
            for edge in edges.values():
                edge.close()

    def run_stage_async(self, name: str, stage: int, x, *,
                        trace_id: int = 0) -> Future:
        """One stage hop, targeted at the owning worker; future of
        ``(output, layer_states, worker_exec_s)``.

        ``layer_states`` are the stage's captured trace records as
        :meth:`~repro.core.pipeline.LayerExecution.to_state` dicts — the
        caller folds them back through
        :meth:`~repro.engine.session.PanaceaSession.record_external` —
        and ``worker_exec_s`` is the stage's compute time on the worker's
        own clock (a span attribute, never a span endpoint: worker clocks
        have their own epoch).  ``trace_id`` rides the stage-edge frame
        header and the control envelope.
        """
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot submit to a shut-down ProcessWorkerPool")
            edges = self._stage_edges.get(name)
            if edges is None or stage not in edges:
                raise KeyError(
                    f"no stage {stage} of {name!r} loaded "
                    f"(loaded: {sorted(self._stage_edges)})")
            future: Future = Future()
            self._slots[edges[stage].slot_id].direct.append(
                (future, "stage", (name, stage, x, trace_id)))
        return future

    def run_stage(self, name: str, stage: int, x, *, trace_id: int = 0):
        """Blocking :meth:`run_stage_async`."""
        return self.run_stage_async(name, stage, x,
                                    trace_id=trace_id).result()

    def stage_edge_stats(self, name: str | None = None) -> dict:
        """Per-edge transport counters (frames, wraps, pipe fallbacks)."""
        with self._lock:
            items = (self._stage_edges.items() if name is None
                     else [(name, self._stage_edges.get(name, {}))])
            return {n: [edge.stats() for _, edge in sorted(edges.items())]
                    for n, edges in items}

    def deployment_stats(self, name: str) -> dict:
        """The deployment's session stats merged across all workers.

        Counters sum (requests, layer calls, engine batches, op ledgers);
        sparsity means re-weight by each worker's layer calls; shape-like
        fields (scheme, plan count) come from the first worker.
        """
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot query a shut-down ProcessWorkerPool")
            futures = []
            for slot in self._slots:
                future: Future = Future()
                slot.direct.append((future, "stats", (name,)))
                futures.append(future)
        self.wait(futures)
        parts = [f.result() for f in futures]
        merged = dict(parts[0])
        summed = ("n_requests", "n_retained", "n_layer_calls",
                  "n_engine_batches", "exec_s", "mul4", "add",
                  "ema_nibbles")
        for key in summed:
            if key in merged:
                merged[key] = sum(p.get(key, 0) for p in parts)
        weights = [p.get("n_layer_calls", 0) for p in parts]
        total = sum(weights)
        for key in ("mean_rho_w", "mean_rho_x"):
            if key in merged and total:
                merged[key] = sum(p.get(key, 0.0) * w
                                  for p, w in zip(parts, weights)) / total
        merged["n_workers"] = len(parts)
        return merged

    def ping(self) -> list[dict]:
        """Each worker's pid and effective BLAS pinning (tests/benches)."""
        with self._lock:
            if self._shutdown:
                raise PoolShutdownError(
                    "cannot query a shut-down ProcessWorkerPool")
            futures = []
            for slot in self._slots:
                future: Future = Future()
                slot.direct.append((future, "ping", ()))
                futures.append(future)
        self.wait(futures)
        return [f.result() for f in futures]

    # -- lifecycle ------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._slots)

    @property
    def pids(self) -> list[int | None]:
        """Live worker pids (a respawn changes the slot's entry)."""
        return [slot.process.pid if slot.process is not None else None
                for slot in self._slots]

    def shutdown(self, wait: bool = True) -> None:
        """Stop workers and destroy the shared segments; idempotent.

        Queued tasks run to completion first (sentinels queue behind
        them), exactly like the thread pool's drain-then-join contract.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._tasks.put(None)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # -- observability --------------------------------------------------------
    def stats(self) -> dict:
        """WorkerPool-shaped summary plus process-tier counters."""
        now = time.perf_counter()
        with self._lock:
            per_worker = [slot.stats.summary(now) for slot in self._slots]
            n_crashes = self._n_crashes
            n_retried = self._n_retried
            n_pipe_fallback = sum(s.n_pipe_fallback for s in self._slots)
            stage_edges = {name: [e.stats() for _, e in sorted(edges.items())]
                           for name, edges in self._stage_edges.items()}
            n_pipe_fallback += sum(e["n_pipe_fallback"]
                                   for edges in stage_edges.values()
                                   for e in edges)
        return {
            "backend": "process",
            "workers": self.workers,
            "n_tasks": sum(w["n_tasks"] for w in per_worker),
            "n_helped": 0,
            "busy_s": sum(w["busy_s"] for w in per_worker),
            "mean_utilization": (sum(w["utilization"] for w in per_worker)
                                 / len(per_worker)),
            "queue_depth": self._tasks.qsize(),
            "per_worker": per_worker,
            "blas_threads": self.blas_threads,
            "n_crashes": n_crashes,
            "n_respawns": n_crashes,
            "n_retried_after_crash": n_retried,
            "n_pipe_fallback": n_pipe_fallback,
            "ring_bytes": self.ring_bytes,
            "stage_edges": stage_edges,
        }


class ProcessSessionProxy:
    """Parent-side stand-in for a deployment executing in worker processes.

    Duck-compatible with the slice of :class:`PanaceaSession` the serving
    scheduler consumes (``prepared``/``auto_calibrate``/``serve_coalesced``
    /``stats``), so :class:`~repro.serve.batching.MicroBatcher`,
    :class:`~repro.serve.cache.ResultCache` and the server metrics run
    unchanged in the parent while the forward passes happen on real cores.
    Output arrays and per-request accounting come back through the shared
    rings; the records carry no layer traces (those live in the workers'
    sessions, merged on demand by :meth:`stats`).
    """

    prepared = True
    auto_calibrate = False
    accepts_traces = True

    def __init__(self, pool: ProcessWorkerPool, name: str) -> None:
        self._pool = pool
        self.name = name

    def serve_coalesced(self, batches, *, pad_axis=None, pad_value=0,
                        traces=None):
        from ..engine.session import RequestRecord

        # One fused group travels as one frame, so one representative
        # trace id stamps the envelope (the first traced rider's); every
        # rider's own span still gets the worker-measured attributes.
        trace_id = 0
        if traces:
            for span in traces:
                if span is not None:
                    trace_id = span.trace_id
                    break
        outputs, metas = self._pool.serve(self.name, batches,
                                          pad_axis=pad_axis,
                                          pad_value=pad_value,
                                          trace_id=trace_id)
        records = [RequestRecord(request_id=rid, batch_shape=tuple(shape),
                                 layers=[], latency_s=latency,
                                 coalesced=coalesced)
                   for rid, shape, latency, coalesced in metas]
        if traces:
            for span, record in zip(traces, records):
                if span is None:
                    continue
                span.attrs["backend"] = "process"
                span.attrs["worker_exec_s"] = record.latency_s
                span.attrs["coalesced"] = record.coalesced
        return outputs, records

    def run(self, x):
        """One request, no coalescing — convenience parity with sessions."""
        return self.serve_coalesced([x])[0][0]

    def stats(self) -> dict:
        return self._pool.deployment_stats(self.name)
