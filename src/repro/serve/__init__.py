"""Serving subsystem: persistent plans, micro-batching, multi-model hosting.

The online half of Panacea's offline/online split, grown to process scale:

* :mod:`repro.serve.store` — :class:`PlanStore`, persisting a converted
  model's layer plans + calibration records so a process restart serves
  with zero re-prepare work;
* :mod:`repro.serve.batching` — :class:`MicroBatcher`/:class:`BatchPolicy`,
  the dynamic micro-batching scheduler coalescing single requests into
  engine batches (bit-exact vs solo execution);
* :mod:`repro.serve.server` — :class:`ModelServer`, many named deployments
  behind one submit API;
* :mod:`repro.serve.metrics` — :class:`LatencyStats`, the shared latency
  accumulator.
"""

from .batching import BatchPolicy, MicroBatcher, Ticket
from .metrics import LatencyStats
from .server import ModelEntry, ModelServer
from .store import PlanStore, STORE_FORMAT, STORE_VERSION

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "Ticket",
    "LatencyStats",
    "ModelEntry",
    "ModelServer",
    "PlanStore",
    "STORE_FORMAT",
    "STORE_VERSION",
]
