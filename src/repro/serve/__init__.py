"""Serving subsystem: persistent plans, micro-batching, concurrent hosting.

The online half of Panacea's offline/online split, grown to process scale:

* :mod:`repro.serve.store` — :class:`PlanStore`, persisting a converted
  model's layer plans + calibration records so a process restart serves
  with zero re-prepare work (load failures raise :class:`PlanStoreError`);
* :mod:`repro.serve.batching` — :class:`MicroBatcher`/:class:`BatchPolicy`,
  the dynamic micro-batching scheduler coalescing single requests into
  engine batches (bit-exact vs solo execution), and
  :class:`DecodeBatcher`/:class:`DecodePolicy`, the continuous-batching
  autoregressive decoder where requests join/leave the running batch per
  step over KV-cached incremental forwards;
* :mod:`repro.serve.server` — :class:`ModelServer`, many named deployments
  behind one submit API, with blocking (``submit``) and future-returning
  (``submit_async``) entry points;
* :mod:`repro.serve.pool` — :class:`WorkerPool`, the thread pool that
  drains all deployments' micro-batches in parallel;
* :mod:`repro.serve.procpool` / :mod:`repro.serve.shm` —
  :class:`ProcessWorkerPool` and the shared-memory array rings behind
  ``ModelServer(backend="process")``: deployments rehydrated from plan
  stores in spawned, BLAS-pinned worker processes (``mmap=True`` loads
  share one physical copy of the plan arrays through the page cache),
  activations framed through :class:`ShmRing` segments instead of
  pickles, crashes failing only the in-flight batch
  (:class:`WorkerCrashError`) before a respawn.  Sharded deployments run
  process-per-stage over depth-slotted stage-edge rings.  Pools expose
  the :class:`ExecutorBackend` protocol; capability refusals raise
  :class:`BackendCapabilityError`;
* :mod:`repro.serve.cache` — :class:`ResultCache`, the content-addressed
  per-deployment LRU result cache short-circuiting duplicate requests, and
  :class:`PrefixKVCache`, its autoregressive sibling seeding decode KV
  caches from the longest cached token prefix;
* :mod:`repro.serve.metrics` — :class:`LatencyStats` (the shared latency
  accumulator) and :class:`ServerMetrics` (the server-wide rollup);
  :mod:`repro.obs` adds request tracing (:class:`~repro.obs.Trace` span
  trees following one request through every layer, including across
  process boundaries), the unified callback-instrument
  :class:`~repro.obs.MetricsRegistry` and the Prometheus text exposition
  behind ``GET /metrics?format=prometheus``;
* :mod:`repro.serve.gateway` — :class:`Gateway`, the asyncio HTTP/1.1
  network front end over a :class:`ModelServer`, with
  :class:`AdmissionControl` (bounded per-deployment admission, per-tenant
  :class:`TokenBucket` quotas and priority classes, typed 429/503
  :class:`AdmissionError` backpressure) and deadline-aware micro-batch
  release via :class:`~repro.serve.batching.DeadlinePolicy`;
* :mod:`repro.serve.loadgen` — the seeded open-loop load generator
  (Poisson and bursty MMPP arrivals, heavy-tail request mixes,
  per-tenant traffic) that drives the gateway without ever slowing down
  when the server does, plus the latency/goodput summarizer.
"""

from .batching import (BatchPolicy, DeadlinePolicy, DecodeBatcher,
                       DecodePolicy, DecodeTicket, MicroBatcher, Ticket)
from .gateway import (AdmissionControl, AdmissionError, Gateway,
                      GatewayClosedError, GatewayHandle, QueueFullError,
                      QuotaExceededError, TenantQuota, TokenBucket)
from .loadgen import (MMPPArrivals, PlannedRequest, PoissonArrivals,
                      RequestOutcome, TenantSpec, build_schedule,
                      run_schedule, summarize)
from .cache import PrefixKVCache, ResultCache, request_key
from .metrics import LatencyStats, ServerMetrics
from .pool import (BackendCapabilityError, ExecutorBackend,
                   PoolShutdownError, WorkerPool, WorkerStats)
from .procpool import (DEFAULT_STAGE_RING_BYTES, ProcessSessionProxy,
                       ProcessWorkerPool, WorkerCrashError)
from .server import ModelEntry, ModelServer
from .shm import ShmRing
from .store import PlanStore, PlanStoreError, STORE_FORMAT, STORE_VERSION

__all__ = [
    "BatchPolicy",
    "DeadlinePolicy",
    "MicroBatcher",
    "Ticket",
    "AdmissionControl",
    "AdmissionError",
    "Gateway",
    "GatewayClosedError",
    "GatewayHandle",
    "QueueFullError",
    "QuotaExceededError",
    "TenantQuota",
    "TokenBucket",
    "MMPPArrivals",
    "PlannedRequest",
    "PoissonArrivals",
    "RequestOutcome",
    "TenantSpec",
    "build_schedule",
    "run_schedule",
    "summarize",
    "DecodePolicy",
    "DecodeBatcher",
    "DecodeTicket",
    "PrefixKVCache",
    "ResultCache",
    "request_key",
    "LatencyStats",
    "ServerMetrics",
    "BackendCapabilityError",
    "ExecutorBackend",
    "PoolShutdownError",
    "WorkerPool",
    "WorkerStats",
    "DEFAULT_STAGE_RING_BYTES",
    "ProcessWorkerPool",
    "ProcessSessionProxy",
    "WorkerCrashError",
    "ShmRing",
    "ModelEntry",
    "ModelServer",
    "PlanStore",
    "PlanStoreError",
    "STORE_FORMAT",
    "STORE_VERSION",
]
