"""Worker-process entry point for :class:`ProcessWorkerPool`.

One worker process hosts rehydrated serving sessions and executes whatever
the parent dispatches over its control pipe.  The contract mirrors the
thread pool's task model but crosses a process boundary, so everything is
built around two rules:

* **No pickled model state.**  Deployments arrive as a
  :class:`~repro.serve.store.PlanStore` path plus either the stored
  proxy-zoo reference or a picklable ``model_factory``; the worker
  rehydrates the session locally (plans are already pickle-free ``.npz``).
  Request/response activations travel through the
  :class:`~repro.serve.shm.ShmRing` pair — only frame offsets cross the
  pipe — with an automatic pipe fallback for frames bigger than the ring.
* **BLAS threads are capped before numpy exists.**  ``P processes × T``
  BLAS threads oversubscribe the machine unless each worker is pinned to
  its share.  The authoritative cap is the parent's environment window
  around ``Process.start()`` (spawned children inherit the capped
  environment, and OpenBLAS/MKL/OMP read it at library load); this module
  re-applies the cap at entry for any BLAS library loaded later, and
  :func:`blas_env` reports the effective values for benchmarks/tests.

The message protocol is a tagged tuple per request, one reply per message
(``("ok", payload)`` / ``("served", ...)`` / ``("error", exc)``), with
``None`` as the shutdown sentinel.  Any exception — including
:class:`~repro.serve.store.PlanStoreError` from a truncated store — is
replied, not raised, so it propagates to the parent future instead of
killing the worker; only an actual process death (signal, ``os._exit``)
surfaces as a crash, which the pool detects on the broken pipe.
"""

from __future__ import annotations

import os

__all__ = ["worker_main", "pin_blas_env", "blas_env", "BLAS_ENV_VARS"]

#: The env caps every mainstream BLAS/threading backend honors at load.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_env(threads: int) -> dict[str, str]:
    """Cap every known BLAS thread knob to ``threads``; returns the caps.

    Only effective for libraries not yet loaded — call it before numpy's
    first import (the parent's spawn-time environment window guarantees
    that for worker processes).
    """
    caps = {var: str(int(threads)) for var in BLAS_ENV_VARS}
    os.environ.update(caps)
    return caps


def blas_env() -> dict:
    """The worker's effective BLAS pinning, for tests and benchmarks."""
    return {
        "pid": os.getpid(),
        "env": {var: os.environ.get(var) for var in BLAS_ENV_VARS},
    }


def _reply(conn, message) -> None:
    """Send a reply, degrading unpicklable error payloads to their repr."""
    try:
        conn.send(message)
    except Exception:  # noqa: BLE001 — the reply itself failed to pickle
        tag = message[0] if isinstance(message, tuple) and message else "?"
        detail = message[1] if tag == "error" and len(message) > 1 else None
        conn.send(("error", RuntimeError(
            f"worker reply unpicklable (tag {tag!r}): "
            f"{type(detail).__name__}: {detail}")))


def _load_session(store_path, model_factory, load_kwargs):
    """Rehydrate one deployment's session from its plan store."""
    from .store import PlanStore

    model = model_factory() if model_factory is not None else None
    return PlanStore(store_path).load(model=model, **(load_kwargs or {}))


def worker_main(conn, req_ring_name: str, resp_ring_name: str,
                worker_id: int, blas_threads: int) -> None:
    """Serve the parent's control pipe until the shutdown sentinel.

    ``conn`` is the child end of the worker's duplex pipe;
    ``req_ring_name``/``resp_ring_name`` identify the shared-memory
    segments for inbound batches and outbound outputs.
    """
    pin_blas_env(blas_threads)
    # numpy (and the whole engine stack) loads *after* the caps above and
    # after the parent's spawn-time environment window — either way the
    # BLAS pools come up pinned.
    import numpy as np

    from .shm import ShmRing

    req_ring = ShmRing.attach(req_ring_name)
    resp_ring = ShmRing.attach(resp_ring_name)
    sessions: dict[str, object] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break                      # parent died: nothing to reply to
            if message is None:
                _reply(conn, ("ok", "bye"))
                break
            tag, payload = message[0], message[1:]
            try:
                if tag == "load":
                    name, store_path, model_factory, load_kwargs = payload
                    sessions[name] = _load_session(
                        store_path, model_factory, load_kwargs)
                    _reply(conn, ("ok", sessions[name].stats()["n_plans"]))
                elif tag == "unload":
                    sessions.pop(payload[0], None)
                    _reply(conn, ("ok", None))
                elif tag == "serve":
                    name, pad_axis, pad_value, offset, fallback = payload
                    session = sessions.get(name)
                    if session is None:
                        raise KeyError(
                            f"worker {worker_id} has no deployment "
                            f"{name!r} (loaded: {sorted(sessions)})")
                    if offset is not None:
                        # Zero-copy: the views stay valid through the
                        # forward because the parent never writes the next
                        # request frame before this reply arrives.
                        _, batches = req_ring.read(offset)
                    else:
                        batches = fallback
                    outputs, records = session.serve_coalesced(
                        batches, pad_axis=pad_axis, pad_value=pad_value)
                    outputs = [np.ascontiguousarray(o) for o in outputs]
                    metas = [(r.request_id, tuple(r.batch_shape),
                              r.latency_s, r.coalesced) for r in records]
                    out_offset = resp_ring.write(0, outputs)
                    if out_offset is None:    # bigger than the ring
                        _reply(conn, ("served", None, outputs, metas))
                    else:
                        _reply(conn, ("served", out_offset, None, metas))
                elif tag == "call":
                    fn, args, kwargs = payload
                    _reply(conn, ("ok", fn(*args, **(kwargs or {}))))
                elif tag == "stats":
                    name = payload[0]
                    if name is not None:
                        stats = sessions[name].stats()
                    else:
                        stats = {n: s.stats() for n, s in sessions.items()}
                    _reply(conn, ("ok", stats))
                elif tag == "ping":
                    _reply(conn, ("ok", blas_env()))
                else:
                    raise ValueError(f"unknown worker message tag {tag!r}")
            except BaseException as exc:  # noqa: BLE001 — reply, don't die
                _reply(conn, ("error", exc))
    finally:
        req_ring.close()
        resp_ring.close()
        conn.close()
