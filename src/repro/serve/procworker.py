"""Worker-process entry point for :class:`ProcessWorkerPool`.

One worker process hosts rehydrated serving sessions — whole deployments
*and* individual pipeline stages of sharded deployments — and executes
whatever the parent dispatches over its control pipe.  Stage specs arrive
serializable (store path, shard-plan state, load config) and resolve
against a per-process rehydration cache; stage activations travel over
dedicated per-stage-edge rings, and captured layer traces return as
:meth:`~repro.core.pipeline.LayerExecution.to_state` dicts for the
parent-side fold-back.  The contract mirrors the thread pool's task model
but crosses a process boundary, so everything is built around two rules:

* **No pickled model state.**  Deployments arrive as a
  :class:`~repro.serve.store.PlanStore` path plus either the stored
  proxy-zoo reference or a picklable ``model_factory``; the worker
  rehydrates the session locally (plans are already pickle-free ``.npz``).
  Request/response activations travel through the
  :class:`~repro.serve.shm.ShmRing` pair — only frame offsets cross the
  pipe — with an automatic pipe fallback for frames bigger than the ring.
* **BLAS threads are capped before numpy exists.**  ``P processes × T``
  BLAS threads oversubscribe the machine unless each worker is pinned to
  its share.  The authoritative cap is the parent's environment window
  around ``Process.start()`` (spawned children inherit the capped
  environment, and OpenBLAS/MKL/OMP read it at library load); this module
  re-applies the cap at entry for any BLAS library loaded later, and
  :func:`blas_env` reports the effective values for benchmarks/tests.

The message protocol is a tagged tuple per request, one reply per message
(``("ok", payload)`` / ``("served", ...)`` / ``("error", exc)``), with
``None`` as the shutdown sentinel.  Any exception — including
:class:`~repro.serve.store.PlanStoreError` from a truncated store — is
replied, not raised, so it propagates to the parent future instead of
killing the worker; only an actual process death (signal, ``os._exit``)
surfaces as a crash, which the pool detects on the broken pipe.
"""

from __future__ import annotations

import os
import time

__all__ = ["worker_main", "pin_blas_env", "blas_env", "BLAS_ENV_VARS"]

#: The env caps every mainstream BLAS/threading backend honors at load.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_env(threads: int) -> dict[str, str]:
    """Cap every known BLAS thread knob to ``threads``; returns the caps.

    Only effective for libraries not yet loaded — call it before numpy's
    first import (the parent's spawn-time environment window guarantees
    that for worker processes).
    """
    caps = {var: str(int(threads)) for var in BLAS_ENV_VARS}
    os.environ.update(caps)
    return caps


def _memory_kib() -> dict:
    """This process's resident/proportional memory, in KiB (Linux).

    ``rss_kib`` counts every resident page, including pages *shared* with
    other processes (an mmap'd plan blob shows up once per worker).
    ``pss_kib`` (from ``smaps_rollup``) divides shared pages by their
    sharer count, so summing PSS across workers is the honest total — the
    number the mmap-vs-eager memory bench compares.  ``None`` where /proc
    is unavailable (non-Linux).
    """
    info: dict = {"rss_kib": None, "pss_kib": None}
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    info["rss_kib"] = int(line.split()[1])
                    break
    except OSError:
        pass
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    info["pss_kib"] = int(line.split()[1])
                    break
    except OSError:
        pass
    return info


def blas_env() -> dict:
    """The worker's effective BLAS pinning + memory, for tests/benchmarks."""
    return {
        "pid": os.getpid(),
        "env": {var: os.environ.get(var) for var in BLAS_ENV_VARS},
        "memory": _memory_kib(),
    }


def _reply(conn, message) -> None:
    """Send a reply, degrading unpicklable error payloads to their repr."""
    try:
        conn.send(message)
    except Exception:  # noqa: BLE001 — the reply itself failed to pickle
        tag = message[0] if isinstance(message, tuple) and message else "?"
        detail = message[1] if tag == "error" and len(message) > 1 else None
        conn.send(("error", RuntimeError(
            f"worker reply unpicklable (tag {tag!r}): "
            f"{type(detail).__name__}: {detail}")))


def _load_session(store_path, model_factory, load_kwargs):
    """Rehydrate one deployment's session from its plan store.

    ``mmap=True`` unless the caller opted out: plan arrays come up as
    read-only views over the store's extracted blob, so every worker
    loading the same deployment shares one physical copy of the weights
    through the page cache (``load_kwargs={"mmap": False}`` restores the
    private eager inflation).
    """
    from .store import PlanStore

    kwargs = dict(load_kwargs or {})
    kwargs.setdefault("mmap", True)
    model = model_factory() if model_factory is not None else None
    return PlanStore(store_path).load(model=model, **kwargs)


def _session_cache_key(store_path, model_factory, load_kwargs) -> tuple:
    import json

    return (os.path.realpath(store_path), repr(model_factory),
            json.dumps(load_kwargs or {}, sort_keys=True, default=str))


def worker_main(conn, req_ring_name: str, resp_ring_name: str,
                worker_id: int, blas_threads: int) -> None:
    """Serve the parent's control pipe until the shutdown sentinel.

    ``conn`` is the child end of the worker's duplex pipe;
    ``req_ring_name``/``resp_ring_name`` identify the shared-memory
    segments for inbound batches and outbound outputs.
    """
    pin_blas_env(blas_threads)
    # numpy (and the whole engine stack) loads *after* the caps above and
    # after the parent's spawn-time environment window — either way the
    # BLAS pools come up pinned.
    import numpy as np

    from .shm import ShmRing

    req_ring = ShmRing.attach(req_ring_name)
    resp_ring = ShmRing.attach(resp_ring_name)
    sessions: dict[str, object] = {}
    # Per-process rehydration cache for pipeline stages: stages are
    # resolved by (store, factory, load kwargs), so every stage of one
    # sharded deployment hosted on this worker — and stages of *different*
    # deployments sharing one store — reuse a single rehydrated session.
    session_cache: dict[tuple, object] = {}
    # name -> (session, stage segment slices, {stage: (req, resp) rings})
    stage_hosts: dict[str, tuple] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break                      # parent died: nothing to reply to
            if message is None:
                _reply(conn, ("ok", "bye"))
                break
            tag, payload = message[0], message[1:]
            try:
                if tag == "load":
                    name, store_path, model_factory, load_kwargs = payload
                    sessions[name] = _load_session(
                        store_path, model_factory, load_kwargs)
                    _reply(conn, ("ok", sessions[name].stats()["n_plans"]))
                elif tag == "unload":
                    sessions.pop(payload[0], None)
                    _reply(conn, ("ok", None))
                elif tag == "load_stages":
                    (name, store_path, model_factory, load_kwargs,
                     plan_state, stage_rings, depth) = payload
                    from ..shard.graph import model_segments
                    from ..shard.plan import ShardPlan

                    key = _session_cache_key(store_path, model_factory,
                                             load_kwargs)
                    if key not in session_cache:
                        session_cache[key] = _load_session(
                            store_path, model_factory, load_kwargs)
                    session = session_cache[key]
                    plan = ShardPlan.from_state(plan_state)
                    slices = plan.stage_slices(model_segments(session.model))
                    rings = {}
                    for k, req_name, resp_name in stage_rings:
                        rings[k] = (ShmRing.attach(req_name),
                                    ShmRing.attach(resp_name, slots=depth))
                    old = stage_hosts.pop(name, None)
                    if old is not None:
                        for pair in old[2].values():
                            for ring in pair:
                                ring.close()
                    stage_hosts[name] = (session, slices, rings)
                    _reply(conn, ("ok", sorted(rings)))
                elif tag == "stage":
                    name, k, offset, fallback, trace_id = payload
                    host = stage_hosts.get(name)
                    if host is None:
                        raise KeyError(
                            f"worker {worker_id} hosts no stages of "
                            f"{name!r} (hosting: {sorted(stage_hosts)})")
                    session, slices, rings = host
                    stage_req, stage_resp = rings[k]
                    if offset is not None:
                        # Zero-copy is safe: the edge's slotted ring keeps
                        # up to ``depth`` frames live and the parent never
                        # reuses this frame's slot before the reply.
                        _, frame_tid, arrays = stage_req.read(offset)
                        trace_id = trace_id or frame_tid
                        x = arrays[0]
                    else:
                        x = fallback
                    t0 = time.perf_counter()
                    with session.trace.capture() as records:
                        for segment in slices[k]:
                            x = segment.fn(x)
                    exec_s = time.perf_counter() - t0
                    x = np.ascontiguousarray(x)
                    states = [rec.to_state() for rec in records]
                    # Echo the trace id into the response frame: driver-side
                    # spans stay on the driver's clock, but the id closes
                    # the propagation loop and worker exec time rides back
                    # as a span attribute.
                    out_offset = stage_resp.write(k, [x], trace_id=trace_id)
                    if out_offset is None:   # bigger than one slot region
                        _reply(conn, ("staged", None, x, states, exec_s))
                    else:
                        _reply(conn,
                               ("staged", out_offset, None, states, exec_s))
                elif tag == "unload_stages":
                    host = stage_hosts.pop(payload[0], None)
                    if host is not None:
                        for pair in host[2].values():
                            for ring in pair:
                                ring.close()
                    _reply(conn, ("ok", None))
                elif tag == "serve":
                    (name, pad_axis, pad_value, offset, fallback,
                     trace_id) = payload
                    session = sessions.get(name)
                    if session is None:
                        raise KeyError(
                            f"worker {worker_id} has no deployment "
                            f"{name!r} (loaded: {sorted(sessions)})")
                    if offset is not None:
                        # Zero-copy: the views stay valid through the
                        # forward because the parent never writes the next
                        # request frame before this reply arrives.
                        _, frame_tid, batches = req_ring.read(offset)
                        trace_id = trace_id or frame_tid
                    else:
                        batches = fallback
                    outputs, records = session.serve_coalesced(
                        batches, pad_axis=pad_axis, pad_value=pad_value)
                    outputs = [np.ascontiguousarray(o) for o in outputs]
                    metas = [(r.request_id, tuple(r.batch_shape),
                              r.latency_s, r.coalesced) for r in records]
                    out_offset = resp_ring.write(0, outputs,
                                                 trace_id=trace_id)
                    if out_offset is None:    # bigger than the ring
                        _reply(conn, ("served", None, outputs, metas))
                    else:
                        _reply(conn, ("served", out_offset, None, metas))
                elif tag == "call":
                    fn, args, kwargs = payload
                    _reply(conn, ("ok", fn(*args, **(kwargs or {}))))
                elif tag == "stats":
                    name = payload[0]
                    if name is not None:
                        stats = sessions[name].stats()
                    else:
                        stats = {n: s.stats() for n, s in sessions.items()}
                    _reply(conn, ("ok", stats))
                elif tag == "ping":
                    _reply(conn, ("ok", blas_env()))
                else:
                    raise ValueError(f"unknown worker message tag {tag!r}")
            except BaseException as exc:  # noqa: BLE001 — reply, don't die
                _reply(conn, ("error", exc))
    finally:
        for host in stage_hosts.values():
            for pair in host[2].values():
                for ring in pair:
                    ring.close()
        req_ring.close()
        resp_ring.close()
        conn.close()
