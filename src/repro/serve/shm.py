"""Shared-memory array transport for the process-backed serving tier.

:class:`ShmRing` moves request/response ndarrays between the parent server
and a worker process without pickling the payload: one
:class:`multiprocessing.shared_memory.SharedMemory` block per direction
holds framed array groups, and only the *frame offset* (one integer)
travels over the control pipe.  A frame is a small binary header —
magic/version, request id, trace id, then per array the dtype string,
shape and byte
length — followed by the 64-byte-aligned array payloads, so the reader can
map every array as a zero-copy ``np.ndarray`` view straight into the
segment.

The ring is deliberately minimal: it is **not** a lock-free MPMC queue.
The process pool's control protocol is strictly request/response per
worker (the parent never writes a second request frame before the reply
to the first arrived, and each direction has one writer), so a frame is
never overwritten while the other side may still read it.  The write
cursor wraps to the segment start whenever a frame does not fit in the
tail — bump allocation with wrap-around, which under the one-in-flight
protocol is always safe.  Frames larger than the whole segment do not fit
by construction; :meth:`write` returns ``None`` and the pool falls back to
pickled transport over the pipe (counted, so the benchmark can report how
often the fast path was missed).

``slots=k`` generalizes the protocol from one-in-flight to
*depth-bounded*: the segment is partitioned into ``k`` equal regions and
successive frames rotate through them, so up to ``k`` frames are
outstanding before a slot is reused.  This is the per-stage-edge transport
of the process-sharded pipeline — a pipeline of depth ``d`` may have ``d``
activations in flight on one edge, and slot rotation guarantees none is
overwritten while a reader still holds it.  A frame bigger than one region
returns ``None`` (same pipe fallback contract).

Lifetime: the parent creates both directions' segments and is the only
side that ever unlinks them; workers attach by name.  On Python < 3.13
attaching registers the segment with the *child's* resource tracker too
(CPython issue 82300), which would unlink it behind the parent's back when
the child exits — :meth:`attach` undoes that registration.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmRing", "DEFAULT_RING_BYTES"]

#: Per-direction default capacity.  Sized for whole coalesced activation
#: groups of the proxy zoo (a max_batch=8 bert_base batch is ~6 MiB of
#: float64); anything bigger falls back to pipe transport rather than
#: failing.
DEFAULT_RING_BYTES = 32 << 20

_MAGIC = 0x52_50_52_47  # "RPRG" — repro ring
_ALIGN = 64
# Frame header: magic u32, n_arrays u32, req_id u64, trace_id u64.
# The trace id rides the frame itself so request identity survives the
# process hop even on the shared-memory fast path (0 = untraced).
_HEAD = struct.Struct("<IIQQ")
# Per-array header: dtype-string length u32, ndim u32, nbytes u64,
# then ndim * i64 dims after the dtype string.
_ARR = struct.Struct("<IIQ")


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmRing:
    """Single-writer framed array buffer over one shared-memory segment.

    Create the segment with ``ShmRing(capacity)`` (parent side) and attach
    from the worker with :meth:`attach`.  ``write`` returns the frame's
    byte offset (to send over the control pipe) or ``None`` when the frame
    cannot fit; ``read`` maps the frame back into arrays — zero-copy views
    by default on the consuming side, deep copies with ``copy=True`` when
    the arrays must outlive the frame slot.
    """

    def __init__(self, capacity: int = DEFAULT_RING_BYTES, *,
                 name: str | None = None, slots: int | None = None) -> None:
        if slots is not None and slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if name is None:
            if capacity < _ALIGN:
                raise ValueError(
                    f"ring capacity must be >= {_ALIGN} bytes, "
                    f"got {capacity}")
            if slots is not None and capacity // slots < _ALIGN:
                raise ValueError(
                    f"ring capacity {capacity} cannot hold {slots} slots of "
                    f">= {_ALIGN} bytes each")
            self._shm = shared_memory.SharedMemory(create=True,
                                                   size=capacity)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self.slots = slots
        self._seq = 0
        self._head = 0
        self.n_frames = 0
        self.n_wraps = 0

    @classmethod
    def attach(cls, name: str, *, slots: int | None = None) -> "ShmRing":
        """Map an existing segment (worker side); never unlinks it.

        ``slots`` must match the creator's value when the attaching side
        will *write* (the stage-response direction) — slot geometry is a
        writer-side discipline, not stored in the segment.

        Attaching registers the segment with the resource tracker again
        (CPython issue 82300), which would normally risk a foreign-process
        unlink — but pool workers are *spawned children* and share the
        parent's tracker process, where the re-register is an idempotent
        set-add.  Unregistering here would instead erase the parent's
        registration (and make the final unlink double-unregister), so the
        attach side deliberately leaves the tracker alone.
        """
        return cls(name=name, slots=slots)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._shm.size

    # -- framing --------------------------------------------------------------
    @staticmethod
    def frame_size(arrays) -> int:
        """Bytes one frame of ``arrays`` occupies (headers + padding)."""
        size = _HEAD.size
        for arr in arrays:
            dtype_s = arr.dtype.str.encode("ascii")
            size += _ARR.size + len(dtype_s) + 8 * arr.ndim
        size = _aligned(size)
        for arr in arrays:
            size += _aligned(arr.nbytes)
        return size

    def write(self, req_id: int, arrays, *,
              trace_id: int = 0) -> int | None:
        """Frame ``arrays`` into the ring; returns the frame offset.

        ``None`` means the frame exceeds the whole segment (one slot
        region, in slotted mode) — the caller must transport the arrays
        another way.  Object dtypes are refused: they have no flat byte
        representation (and pickling them is exactly what this ring exists
        to avoid).  ``trace_id`` stamps the frame header for request
        tracing across the process boundary; 0 means untraced.
        """
        arrays = [np.ascontiguousarray(a) for a in arrays]
        for arr in arrays:
            if arr.dtype.hasobject:
                raise TypeError(
                    "ShmRing cannot frame object-dtype arrays")
        size = self.frame_size(arrays)
        if self.slots is not None:
            # Depth-bounded mode: rotate through fixed equal regions so up
            # to ``slots`` frames stay live at once (one per in-flight
            # pipeline activation on this edge).
            region = self.capacity // self.slots
            if size > region:
                return None
            slot = self._seq % self.slots
            self._seq += 1
            if slot == 0 and self._seq > 1:
                self.n_wraps += 1
            offset = slot * region
            self._write_frame(offset, req_id, trace_id, arrays)
            self.n_frames += 1
            return offset
        if size > self.capacity:
            return None
        if self._head + size > self.capacity:
            self._head = 0
            self.n_wraps += 1
        offset = self._head
        self._write_frame(offset, req_id, trace_id, arrays)
        self._head = offset + size
        self.n_frames += 1
        return offset

    def _write_frame(self, offset: int, req_id: int, trace_id: int,
                     arrays) -> None:
        """Pack one header + payload frame at ``offset`` (pre-sized)."""
        buf = self._shm.buf
        _HEAD.pack_into(buf, offset, _MAGIC, len(arrays), req_id, trace_id)
        cursor = offset + _HEAD.size
        for arr in arrays:
            dtype_s = arr.dtype.str.encode("ascii")
            _ARR.pack_into(buf, cursor, len(dtype_s), arr.ndim, arr.nbytes)
            cursor += _ARR.size
            buf[cursor:cursor + len(dtype_s)] = dtype_s
            cursor += len(dtype_s)
            struct.pack_into(f"<{arr.ndim}q", buf, cursor, *arr.shape)
            cursor += 8 * arr.ndim
        cursor = offset + _aligned(cursor - offset)
        for arr in arrays:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf,
                             offset=cursor)
            dst[...] = arr
            cursor += _aligned(arr.nbytes)

    def read(self, offset: int, *,
             copy: bool = False) -> tuple[int, int, list[np.ndarray]]:
        """Decode the frame at ``offset`` to ``(req_id, trace_id, arrays)``.

        ``copy=False`` returns views into the segment — valid only until
        the writer reuses the slot, which under the one-in-flight protocol
        means "until this side sends its reply".  ``copy=True`` detaches
        the arrays from the segment entirely.
        """
        buf = self._shm.buf
        magic, n_arrays, req_id, trace_id = _HEAD.unpack_from(buf, offset)
        if magic != _MAGIC:
            raise ValueError(
                f"no frame at ring offset {offset} "
                f"(magic {magic:#x} != {_MAGIC:#x})")
        cursor = offset + _HEAD.size
        specs = []
        for _ in range(n_arrays):
            dtype_len, ndim, nbytes = _ARR.unpack_from(buf, cursor)
            cursor += _ARR.size
            dtype = np.dtype(bytes(buf[cursor:cursor + dtype_len])
                             .decode("ascii"))
            cursor += dtype_len
            shape = struct.unpack_from(f"<{ndim}q", buf, cursor)
            cursor += 8 * ndim
            specs.append((dtype, shape, nbytes))
        cursor = offset + _aligned(cursor - offset)
        arrays = []
        for dtype, shape, nbytes in specs:
            view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=cursor)
            arrays.append(view.copy() if copy else view)
            cursor += _aligned(nbytes)
        return req_id, trace_id, arrays

    # -- lifecycle ------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "slots": self.slots,
            "n_frames": self.n_frames,
            "n_wraps": self.n_wraps,
        }

    def close(self) -> None:
        """Unmap this side's view; the owner also destroys the segment."""
        try:
            self._shm.close()
        except BufferError:
            # A zero-copy view is still alive (a reader holding arrays
            # past its reply).  Leak the mapping rather than crash — the
            # owner's unlink still reclaims the segment at process exit.
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
