"""Dynamic micro-batching: coalesce single requests into engine batches.

The engines amortize weight-side work across a batch, but serving traffic
arrives one request at a time.  :class:`MicroBatcher` sits between the two:
``submit`` enqueues a request and returns a :class:`Ticket`; queued requests
are coalesced — FIFO, oldest first — into one
:meth:`~repro.engine.session.PanaceaSession.serve_coalesced` call when
either batching knob fires:

* ``max_batch`` — enough requests are waiting to fill a batch;
* ``max_delay_s`` — the oldest ticket has waited long enough (checked by
  :meth:`pump`, the caller's service loop hook).

``Ticket.result()`` forces service of everything up to and including that
ticket, so a synchronous caller can always block for its answer; coalesced
outputs are **bit-exact** against running each request alone (see
``run_coalesced``).  Every ticket carries its queue wait, the batch it rode
in and its :class:`RequestRecord`, so the scheduler, the session and the
benchmarks share one latency measurement path.

The batcher is thread-safe: the queue and metrics sit behind a short-lived
state lock, while a service lock serializes batch execution so FIFO order
and bit-exactness survive concurrent submitters and pool workers (the
session additionally serializes itself — see
:class:`~repro.engine.session.PanaceaSession`).  Single-threaded callers
keep the exact historical behaviour, and the ``clock`` injection point
keeps the delay policy testable.

A :class:`~repro.serve.cache.ResultCache` can sit in front of the queue
(enable with ``BatchPolicy.cache_bytes``): a byte-identical repeat of an
already-served request returns a completed ticket immediately, without
touching the engine — bit-exact because cached outputs *are* recorded
engine outputs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError
from dataclasses import dataclass, field

import numpy as np

from ..engine.session import PanaceaSession, RequestRecord
from .cache import ResultCache, request_key
from .metrics import LatencyStats

__all__ = ["BatchPolicy", "Ticket", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic micro-batching scheduler.

    ``max_batch=1`` degenerates to per-request execution (the baseline the
    serving bench compares against).  ``max_delay_s`` bounds the latency a
    request can pay waiting for riders; ``0`` means a request never waits
    for the *clock* (it still coalesces with whatever is already queued when
    service happens).  ``pad_axis``/``pad_value`` enable the padded split
    path for ragged trailing axes (token-id sequence lengths on causal
    models); ``None`` requires equal trailing dims.  ``cache_bytes`` > 0
    puts a content-addressed result cache of that byte budget in front of
    the deployment's queue (``0`` disables caching).
    """

    max_batch: int = 8
    max_delay_s: float = 0.002
    pad_axis: int | None = None
    pad_value: int = 0
    cache_bytes: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if self.cache_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}")


@dataclass
class Ticket:
    """One submitted request: a claim on a future coalesced execution."""

    ticket_id: int
    submitted_t: float
    _batcher: "MicroBatcher" = field(repr=False)
    done: bool = False
    #: Whether the result came straight from the deployment's result cache
    #: (the request then never entered the queue; ``batch_size`` stays 0).
    cached: bool = False
    #: Filled at service time.
    queue_wait_s: float = 0.0
    batch_size: int = 0
    queue_depth_at_submit: int = 0
    record: RequestRecord | None = field(default=None, repr=False)
    #: The exception that killed this ticket's batch, if service failed.
    error: Exception | None = field(default=None, repr=False)
    _output: np.ndarray | None = field(default=None, repr=False)
    _done_event: threading.Event = field(default_factory=threading.Event,
                                         repr=False)

    def _finish(self, *, output=None, error=None) -> None:
        """Resolve the ticket (exactly once) and wake any waiter."""
        self._output = output
        self.error = error
        self.done = True
        self._done_event.set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The request's output; forces service if still queued (FIFO).

        Safe to call from any thread: if another thread's batch already
        claimed this ticket, the call waits for that execution instead of
        double-serving.  Re-raises the service failure if the ticket's batch
        raised — every rider of a failed batch carries the exception, so no
        caller blocks on a ticket that can never complete.

        ``timeout`` bounds only that wait on a batch *another* thread is
        executing — it is not a latency SLO: when this ticket is still
        queued, the call first drains its predecessors synchronously
        (FIFO), and work this thread performs itself is never abandoned
        mid-batch.
        """
        if not self.done:
            self._batcher.flush(upto=self.ticket_id)
            if not self._done_event.wait(timeout):
                raise TimeoutError(
                    f"ticket {self.ticket_id} not served within {timeout} s")
        if self.error is not None:
            raise self.error
        return self._output


class MicroBatcher:
    """Coalesces queued requests into engine batches over one session."""

    def __init__(self, session: PanaceaSession,
                 policy: BatchPolicy | None = None, *,
                 clock=time.perf_counter,
                 cache: ResultCache | None = None) -> None:
        self.session = session
        self.policy = policy or BatchPolicy()
        self.clock = clock
        if cache is None and self.policy.cache_bytes > 0:
            cache = ResultCache(self.policy.cache_bytes)
        self.cache = cache
        # Queue entries carry the request's content hash (None when caching
        # is off) so the insert after service never re-hashes the payload.
        self._queue: deque[tuple[Ticket, np.ndarray, str | None]] = deque()
        self._next_id = 0
        # Queue + metric state (short critical sections) vs batch service
        # (one coalesced execution at a time, FIFO preserved).
        self._lock = threading.Lock()
        self._service_lock = threading.Lock()
        # Scheduler-side lifetime metrics.
        self.queue_wait = LatencyStats()
        self.batch_exec = LatencyStats()
        self.n_batches = 0
        self.n_requests = 0
        self.n_failed = 0
        self.n_cache_hits = 0
        self.n_cancelled = 0
        self._batch_size_sum = 0
        self.peak_depth = 0

    # -- intake ---------------------------------------------------------------
    def submit(self, x: np.ndarray, *, fire: bool = True) -> Ticket:
        """Enqueue one request; serves immediately once a batch fills.

        ``fire=False`` only enqueues — the async path uses it so the
        *submitting* thread never executes a batch; a pool worker (or the
        eventual ``result()`` call) serves it instead.  A result-cache hit
        returns a completed ticket without queueing at all.
        """
        x = np.asarray(x)
        key = None
        hit = None
        if self.cache is not None:
            key = request_key(x)      # hashed once, reused at insert time
            hit = self.cache.get(x, key=key)
        with self._lock:
            ticket = Ticket(ticket_id=self._next_id, submitted_t=self.clock(),
                            _batcher=self,
                            queue_depth_at_submit=len(self._queue))
            self._next_id += 1
            if hit is not None:
                ticket.cached = True
                self.n_cache_hits += 1
            else:
                self._queue.append((ticket, x, key))
                self.peak_depth = max(self.peak_depth, len(self._queue))
            depth = len(self._queue)
        if hit is not None:
            ticket._finish(output=hit)
            return ticket
        if fire and depth >= self.policy.max_batch:
            # Re-checked at pop time: if a concurrent fire already drained
            # the queue below a full batch, don't serve the stragglers
            # prematurely — their delay window still stands.
            self._fire(self.policy.max_batch,
                       eligible=lambda _, depth_now:
                       depth_now >= self.policy.max_batch)
        return ticket

    def pump(self, now: float | None = None) -> int:
        """Service-loop hook: fire if the oldest ticket exceeded max_delay.

        Returns the number of requests served (possibly across several
        batches when the queue ran deep).  Call this regularly from the
        serving loop; ``Ticket.result()`` and :meth:`flush` do not need it.
        """
        served = 0
        now = self.clock() if now is None else now

        def due(head: Ticket, _depth: int) -> bool:
            return now - head.submitted_t >= self.policy.max_delay_s

        while True:
            with self._lock:
                ready = bool(self._queue) and due(self._queue[0][0], 0)
            if not ready:
                return served
            # The predicate re-runs on whatever is at the head at pop time,
            # so a fresh not-yet-due ticket that slid forward while we
            # waited for the service lock is never fired prematurely.
            fired = self._fire(self.policy.max_batch, eligible=due)
            if not fired:
                return served
            served += fired

    def flush(self, upto: int | None = None) -> int:
        """Serve the queue now (up to and including ticket ``upto``).

        FIFO fairness: a ticket can only be served after everything
        submitted before it, so forcing one ticket drains its predecessors.
        """
        served = 0

        def wanted(head: Ticket, _depth: int) -> bool:
            return upto is None or head.ticket_id <= upto

        while True:
            with self._lock:
                ready = bool(self._queue) and wanted(self._queue[0][0], 0)
            if not ready:
                return served
            fired = self._fire(self.policy.max_batch, eligible=wanted)
            if not fired:
                return served
            served += fired

    def serve(self, ticket: Ticket) -> np.ndarray:
        """Delay-aware service of one ticket — the async path's entry point.

        Honors ``max_delay_s`` exactly like the inline path: while the
        ticket's deadline has not passed and the queue has not filled a
        batch, the serving thread waits for riders instead of firing a
        batch of one (the whole point of the scheduler).  The wait is
        additionally bounded by *real* wall time so an injected test clock
        can never wedge a pool worker.
        """
        if not ticket.done and self.policy.max_delay_s > 0:
            deadline = ticket.submitted_t + self.policy.max_delay_s
            real_deadline = time.perf_counter() + self.policy.max_delay_s
            while not ticket.done:
                with self._lock:
                    depth = len(self._queue)
                    is_head = bool(self._queue) \
                        and self._queue[0][0] is ticket
                remaining = min(deadline - self.clock(),
                                real_deadline - time.perf_counter())
                if remaining <= 0 or depth >= self.policy.max_batch:
                    break
                # Only the queue-head's serving thread polls (riders
                # arriving do not signal the event, so it must notice a
                # filling batch); every other thread sleeps on its done
                # event until served or its own deadline — poll work
                # scales with deployments, not requests.
                ticket._done_event.wait(min(remaining, 1e-3)
                                        if is_head else remaining)
        return ticket.result()

    def cancel(self, ticket: Ticket) -> bool:
        """Drop a still-queued ticket; returns whether it was dequeued.

        The async path's cancellation hook: a cancelled future must not
        leave its payload riding someone else's batch later.  A ticket
        already served (or already claimed by an in-flight batch) is not
        cancellable — the engine work is spent either way.
        """
        with self._lock:
            for i, (queued, _, _) in enumerate(self._queue):
                if queued is ticket:
                    del self._queue[i]
                    self.n_cancelled += 1
                    break
            else:
                return False
        ticket._finish(error=CancelledError())
        return True

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return len(self._queue)

    # -- service --------------------------------------------------------------
    def _fire(self, max_batch: int, eligible=None) -> int:
        """Serve one coalesced batch from the queue head (FIFO).

        ``eligible(head_ticket, depth)`` re-validates the caller's firing
        condition *at pop time*, under the locks: between a caller's check
        and this pop, concurrent fires may have replaced the queue head
        with a ticket that should still wait (not due, beyond ``upto``, or
        short of a full batch) — firing it anyway would silently void the
        delay policy.
        """
        with self._service_lock:
            with self._lock:
                if not self._queue:
                    return 0
                if eligible is not None and not eligible(
                        self._queue[0][0], len(self._queue)):
                    return 0
                group = [self._queue.popleft()
                         for _ in range(min(max_batch, len(self._queue)))]
            tickets = [t for t, _, _ in group]
            payloads = [x for _, x, _ in group]
            t0 = self.clock()
            try:
                outputs, records = self.session.serve_coalesced(
                    payloads, pad_axis=self.policy.pad_axis,
                    pad_value=self.policy.pad_value)
            except Exception as exc:
                # The group is already off the queue; fail every rider
                # rather than strand valid tickets (or retry a poison batch
                # forever).  The triggering caller sees the raise; the other
                # riders see it from Ticket.result().
                for ticket in tickets:
                    ticket._finish(error=exc)
                with self._lock:
                    self.n_failed += len(group)
                raise
            exec_s = self.clock() - t0
            now = self.clock()
            waits = []
            for ticket, out, record in zip(tickets, outputs, records):
                ticket.record = record
                ticket.batch_size = len(group)
                ticket.queue_wait_s = max(
                    0.0, now - ticket.submitted_t - exec_s)
                waits.append(ticket.queue_wait_s)
                ticket._finish(output=out)
            with self._lock:
                for wait in waits:
                    self.queue_wait.observe(wait)
                self.batch_exec.observe(exec_s)
                self.n_batches += 1
                self.n_requests += len(group)
                self._batch_size_sum += len(group)
        # Cache inserts run outside the service lock (the cache has its
        # own) with the keys hashed at intake, so recording outputs never
        # extends the window in which no other batch can fire.
        if self.cache is not None:
            for (_, payload, key), out in zip(group, outputs):
                self.cache.put(payload, out, key=key)
        return len(group)

    # -- observability --------------------------------------------------------
    def queue_wait_view(self) -> LatencyStats:
        """A consistent copy of the queue-wait accumulator.

        Taken under the batcher lock so server-wide rollups never read a
        count whose total has not landed yet (a concurrent ``_fire`` is
        observing waits while rollups run).
        """
        with self._lock:
            return LatencyStats(max_samples=self.queue_wait.max_samples) \
                .merge(self.queue_wait)

    def stats(self) -> dict:
        """Scheduler summary: batch shapes, queue waits, execution times."""
        with self._lock:
            stats = {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "n_failed": self.n_failed,
                "n_cache_hits": self.n_cache_hits,
                "n_cancelled": self.n_cancelled,
                "mean_batch_size": (self._batch_size_sum / self.n_batches
                                    if self.n_batches else 0.0),
                "depth": len(self._queue),
                "peak_depth": self.peak_depth,
                "queue_wait": self.queue_wait.summary(),
                "batch_exec": self.batch_exec.summary(),
                "policy": {
                    "max_batch": self.policy.max_batch,
                    "max_delay_s": self.policy.max_delay_s,
                    "pad_axis": self.policy.pad_axis,
                    "cache_bytes": self.policy.cache_bytes,
                },
            }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats
