"""Dynamic micro-batching: coalesce single requests into engine batches.

The engines amortize weight-side work across a batch, but serving traffic
arrives one request at a time.  :class:`MicroBatcher` sits between the two:
``submit`` enqueues a request and returns a :class:`Ticket`; queued requests
are coalesced — FIFO, oldest first — into one
:meth:`~repro.engine.session.PanaceaSession.run_coalesced` call when either
batching knob fires:

* ``max_batch`` — enough requests are waiting to fill a batch;
* ``max_delay_s`` — the oldest ticket has waited long enough (checked by
  :meth:`pump`, the caller's service loop hook).

``Ticket.result()`` forces service of everything up to and including that
ticket, so a synchronous caller can always block for its answer; coalesced
outputs are **bit-exact** against running each request alone (see
``run_coalesced``).  Every ticket carries its queue wait, the batch it rode
in and its :class:`RequestRecord`, so the scheduler, the session and the
benchmarks share one latency measurement path.

The batcher is deliberately synchronous and single-threaded — determinism
is what makes the bit-exactness and fairness properties testable — but the
``clock`` injection point keeps the delay policy testable and leaves the
door open for an async driver.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..engine.session import PanaceaSession, RequestRecord
from .metrics import LatencyStats

__all__ = ["BatchPolicy", "Ticket", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic micro-batching scheduler.

    ``max_batch=1`` degenerates to per-request execution (the baseline the
    serving bench compares against).  ``max_delay_s`` bounds the latency a
    request can pay waiting for riders; ``0`` means a request never waits
    for the *clock* (it still coalesces with whatever is already queued when
    service happens).  ``pad_axis``/``pad_value`` enable the padded split
    path for ragged trailing axes (token-id sequence lengths on causal
    models); ``None`` requires equal trailing dims.
    """

    max_batch: int = 8
    max_delay_s: float = 0.002
    pad_axis: int | None = None
    pad_value: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}")


@dataclass
class Ticket:
    """One submitted request: a claim on a future coalesced execution."""

    ticket_id: int
    submitted_t: float
    _batcher: "MicroBatcher" = field(repr=False)
    done: bool = False
    #: Filled at service time.
    queue_wait_s: float = 0.0
    batch_size: int = 0
    queue_depth_at_submit: int = 0
    record: RequestRecord | None = field(default=None, repr=False)
    #: The exception that killed this ticket's batch, if service failed.
    error: Exception | None = field(default=None, repr=False)
    _output: np.ndarray | None = field(default=None, repr=False)

    def result(self) -> np.ndarray:
        """The request's output; forces service if still queued (FIFO).

        Re-raises the service failure if the ticket's batch raised — every
        rider of a failed batch carries the exception, so no caller blocks
        on a ticket that can never complete.
        """
        if not self.done:
            self._batcher.flush(upto=self.ticket_id)
        assert self.done, "flush must have served this ticket"
        if self.error is not None:
            raise self.error
        return self._output


class MicroBatcher:
    """Coalesces queued requests into engine batches over one session."""

    def __init__(self, session: PanaceaSession,
                 policy: BatchPolicy | None = None, *,
                 clock=time.perf_counter) -> None:
        self.session = session
        self.policy = policy or BatchPolicy()
        self.clock = clock
        self._queue: deque[tuple[Ticket, np.ndarray]] = deque()
        self._next_id = 0
        # Scheduler-side lifetime metrics.
        self.queue_wait = LatencyStats()
        self.batch_exec = LatencyStats()
        self.n_batches = 0
        self.n_requests = 0
        self.n_failed = 0
        self._batch_size_sum = 0
        self.peak_depth = 0

    # -- intake ---------------------------------------------------------------
    def submit(self, x: np.ndarray) -> Ticket:
        """Enqueue one request; serves immediately once a batch fills."""
        ticket = Ticket(ticket_id=self._next_id, submitted_t=self.clock(),
                        _batcher=self,
                        queue_depth_at_submit=len(self._queue))
        self._next_id += 1
        self._queue.append((ticket, np.asarray(x)))
        self.peak_depth = max(self.peak_depth, len(self._queue))
        if len(self._queue) >= self.policy.max_batch:
            self._fire(self.policy.max_batch)
        return ticket

    def pump(self, now: float | None = None) -> int:
        """Service-loop hook: fire if the oldest ticket exceeded max_delay.

        Returns the number of requests served (possibly across several
        batches when the queue ran deep).  Call this regularly from the
        serving loop; ``Ticket.result()`` and :meth:`flush` do not need it.
        """
        served = 0
        now = self.clock() if now is None else now
        while self._queue and (
                now - self._queue[0][0].submitted_t >= self.policy.max_delay_s):
            served += self._fire(self.policy.max_batch)
        return served

    def flush(self, upto: int | None = None) -> int:
        """Serve the queue now (up to and including ticket ``upto``).

        FIFO fairness: a ticket can only be served after everything
        submitted before it, so forcing one ticket drains its predecessors.
        """
        served = 0
        while self._queue:
            if upto is not None and self._queue[0][0].ticket_id > upto:
                break
            served += self._fire(self.policy.max_batch)
        return served

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return len(self._queue)

    # -- service --------------------------------------------------------------
    def _fire(self, max_batch: int) -> int:
        """Serve one coalesced batch from the queue head (FIFO)."""
        if not self._queue:
            return 0
        group = [self._queue.popleft()
                 for _ in range(min(max_batch, len(self._queue)))]
        tickets = [t for t, _ in group]
        payloads = [x for _, x in group]
        first_id = self.session.lifetime_requests
        t0 = self.clock()
        try:
            outputs = self.session.run_coalesced(
                payloads, pad_axis=self.policy.pad_axis,
                pad_value=self.policy.pad_value)
        except Exception as exc:
            # The group is already off the queue; fail every rider rather
            # than strand valid tickets (or retry a poison batch forever).
            # The triggering caller sees the raise; the other riders see it
            # from Ticket.result().
            for ticket in tickets:
                ticket.done = True
                ticket.error = exc
            self.n_failed += len(group)
            raise
        exec_s = self.clock() - t0
        # Records are matched by lifetime id, not list position: a session
        # with tight ``max_records`` retention may already have trimmed some
        # of this batch's records.  Only the newest len(group) retained
        # records can belong to this batch, so the lookup is O(batch), not
        # O(lifetime retention).
        by_id = {r.request_id: r
                 for r in self.session.requests[-len(group):]}
        now = self.clock()
        for i, (ticket, out) in enumerate(zip(tickets, outputs)):
            ticket._output = out
            ticket.record = by_id.get(first_id + i)
            ticket.batch_size = len(group)
            ticket.queue_wait_s = max(0.0, now - ticket.submitted_t - exec_s)
            ticket.done = True
            self.queue_wait.observe(ticket.queue_wait_s)
        self.batch_exec.observe(exec_s)
        self.n_batches += 1
        self.n_requests += len(group)
        self._batch_size_sum += len(group)
        return len(group)

    # -- observability --------------------------------------------------------
    def stats(self) -> dict:
        """Scheduler summary: batch shapes, queue waits, execution times."""
        return {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "n_failed": self.n_failed,
            "mean_batch_size": (self._batch_size_sum / self.n_batches
                                if self.n_batches else 0.0),
            "depth": len(self._queue),
            "peak_depth": self.peak_depth,
            "queue_wait": self.queue_wait.summary(),
            "batch_exec": self.batch_exec.summary(),
            "policy": {
                "max_batch": self.policy.max_batch,
                "max_delay_s": self.policy.max_delay_s,
                "pad_axis": self.policy.pad_axis,
            },
        }
